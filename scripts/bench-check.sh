#!/usr/bin/env bash
# Perf gate: build, test, quick-bench, and refresh BENCH_pipeline.json.
#
# Usage: scripts/bench-check.sh [--run-all]
#   --run-all   also time the full `run_all quick` roster serial vs parallel
#               (slower; produces the run_all_quick entry in the JSON)
#
# Fails on any build error, test failure, bench panic, or throughput
# regression: the freshly measured `ingest_batch` and `incremental_framing`
# reports_per_s must stay within BENCH_TOLERANCE (default 0.6) of the
# committed BENCH_pipeline.json. Parallel-speedup checks are skipped (not
# gated) on single-core machines, where "parallel" has nothing to win.
# Criterion sample time is kept short via CRITERION_SAMPLE_MS so the pass
# stays quick.

set -euo pipefail
cd "$(dirname "$0")/.."

# Baselines must be read before the benches rewrite BENCH_pipeline.json.
# Prefer the committed copy; fall back to the working tree for trees
# without git history.
baseline=$(git show HEAD:BENCH_pipeline.json 2>/dev/null || cat BENCH_pipeline.json 2>/dev/null || true)

# baseline_rps <key>: the committed reports_per_s for one top-level entry
# (the file is one entry per line), empty if the entry does not exist yet.
baseline_rps() {
  sed -n "s/^ *\"$1\":.*\"reports_per_s\": \([0-9]*\).*/\1/p" <<<"$baseline" | head -n 1
}
base_ingest=$(baseline_rps ingest_batch)
base_framing=$(baseline_rps incremental_framing)
base_serve=$(baseline_rps serve_loopback)

echo "== format =="
cargo fmt --check

echo "== lints =="
cargo clippy --all-targets -- -D warnings

echo "== docs (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q

echo "== quick criterion pass (observe cache + pipeline) =="
CRITERION_SAMPLE_MS=${CRITERION_SAMPLE_MS:-150} cargo bench -p bench --bench observe_cache
CRITERION_SAMPLE_MS=${CRITERION_SAMPLE_MS:-150} cargo bench -p bench --bench pipeline

echo "== perf trajectory -> BENCH_pipeline.json =="
cargo run --release -p experiments --bin bench_pipeline -- "${1:-}"

echo "== multi-session engine smoke (8 golden-trace replays) =="
cargo run --release -p experiments --bin engine_bench -- --sessions 8

echo "== kernel microbench + hot-path allocation gate =="
# Runs the sigproc kernel suite against the naive references and feeds a
# quiet synthetic session through the pipeline under a counting global
# allocator. Merges the kernel_bench and hot_path_allocs entries; the
# alloc count is gated to exactly zero below.
cargo run --release -p bench --features count-allocs --bin kernel_bench

echo "== health/debug endpoint smoke (live engine) =="
# A tiny load_gen run serves the engine's endpoint and holds the process
# alive after the drain; the probes must see 200s and valid JSON. Runs
# before the full serve smoke so the 4×2 run's serve_loopback and
# serve_e2e_latency entries are the ones left in BENCH_pipeline.json.
probe_port=${PROBE_PORT:-7939}
cargo run --release -p experiments --bin load_gen -- --connections 1 --sessions 1 \
  --metrics-addr "127.0.0.1:${probe_port}" --hold 10 &
probe_pid=$!
if ! python3 - "$probe_port" <<'PY'
import json, sys, time, urllib.error, urllib.request

base = "http://127.0.0.1:" + sys.argv[1]
deadline = time.time() + 60
while True:
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=2) as r:
            if r.status != 200:
                sys.exit(f"bench-check: /healthz answered {r.status}")
        break
    except (urllib.error.URLError, ConnectionError, OSError):
        if time.time() > deadline:
            sys.exit("bench-check: /healthz never came up")
        time.sleep(0.2)
with urllib.request.urlopen(base + "/readyz", timeout=2) as r:
    if r.status != 200:
        sys.exit(f"bench-check: /readyz answered {r.status}")
with urllib.request.urlopen(base + "/debug/journal", timeout=2) as r:
    if r.status != 200:
        sys.exit(f"bench-check: /debug/journal answered {r.status}")
    try:
        json.loads(r.read().decode())
    except ValueError as e:
        sys.exit(f"bench-check: /debug/journal is not valid JSON: {e}")
print("healthz/readyz/debug-journal probes: OK")
PY
then
  kill "$probe_pid" 2>/dev/null || true
  wait "$probe_pid" 2>/dev/null || true
  exit 1
fi
wait "$probe_pid"

echo "== serve smoke (golden trace over loopback TCP, bit-identical) =="
# load_gen starts an in-process ingest server, replays the golden trace
# over 4 concurrent connections × 2 multiplexed sessions each, verifies
# every served session against the single-stream replay, and merges the
# serve_loopback entry. A divergence is a hard failure.
cargo run --release -p experiments --bin load_gen -- --connections 4 --sessions 2

echo "== telemetry exposition smoke + overhead -> BENCH_pipeline.json =="
# `stats` self-validates the exposition (names/labels well-formed, no
# duplicate series) and exits nonzero on a malformed render; --bench merges
# the telemetry_overhead entry (instrumented vs RFIPAD_LOG=off replay).
expo=$(cargo run --release -p experiments --bin trace_tool -- \
  stats tests/data/golden_session.rftrace --bench)
for family in rfid_reader_reads_total rfipad_stage_push_seconds_bucket \
  rfipad_pipeline_reports_total; do
  grep -q "^$family" <<<"$expo" || {
    echo "bench-check: exposition is missing $family" >&2
    exit 1
  }
done
grep -q '"telemetry_overhead"' BENCH_pipeline.json || {
  echo "bench-check: telemetry_overhead entry missing from BENCH_pipeline.json" >&2
  exit 1
}
# Hard budget: instrumented replay may cost at most 3% over telemetry-off.
overhead=$(sed -n 's/^ *"telemetry_overhead":.*"overhead_pct": \(-\{0,1\}[0-9.]*\).*/\1/p' \
  BENCH_pipeline.json | head -n 1)
awk -v o="${overhead:-100}" 'BEGIN { exit !(o <= 3.0) }' || {
  echo "bench-check: telemetry overhead ${overhead}% exceeds the 3% budget" >&2
  exit 1
}
echo "telemetry overhead ${overhead}% (budget 3%): OK"

echo "== checkpoint/restore smoke (mid-trace migration) =="
cargo run --release -p experiments --bin trace_tool -- \
  checkpoint tests/data/golden_session.rftrace

echo "== throughput regression gates =="
# Fresh values from the file the benches just rewrote.
fresh_rps() {
  sed -n "s/^ *\"$1\":.*\"reports_per_s\": \([0-9]*\).*/\1/p" BENCH_pipeline.json | head -n 1
}
tolerance=${BENCH_TOLERANCE:-0.6}
gate_rps() { # name fresh baseline
  local name=$1 fresh=$2 base=$3
  if [ -z "$fresh" ]; then
    echo "bench-check: $name entry missing from BENCH_pipeline.json" >&2
    exit 1
  fi
  if [ -z "$base" ]; then
    echo "$name: ${fresh} reports/s (no committed baseline; gate skipped)"
    return
  fi
  local floor
  floor=$(awk -v b="$base" -v t="$tolerance" 'BEGIN { printf "%d", b * t }')
  if [ "$fresh" -lt "$floor" ]; then
    echo "bench-check: $name regressed to ${fresh} reports/s" \
      "(committed ${base}, floor ${floor} at tolerance ${tolerance})" >&2
    exit 1
  fi
  echo "$name: ${fresh} reports/s (committed ${base}, floor ${floor}): OK"
}
gate_rps ingest_batch "$(fresh_rps ingest_batch)" "$base_ingest"
gate_rps incremental_framing "$(fresh_rps incremental_framing)" "$base_framing"

# Batched ingest must report real push latencies: close_with_stats captures
# the session counters after the worker drains, so a zero p50 means the
# recorder (or its final read) regressed.
ingest_p50=$(sed -n 's/^ *"ingest_batch":.*"push_p50_ns": \([0-9]*\).*/\1/p' \
  BENCH_pipeline.json | head -n 1)
if [ "${ingest_p50:-0}" -le 0 ]; then
  echo "bench-check: ingest_batch push_p50_ns is ${ingest_p50:-missing};" \
    "batched replays must record per-batch push latency" >&2
  exit 1
fi
echo "ingest_batch push_p50_ns ${ingest_p50}: OK"

# Kernel-layer speedup floor: the scratch-buffer rework must keep
# incremental_framing at >= 1.2x its pre-kernel throughput (the constant
# is the committed value from before the kernel layer landed).
kernel_base=4105290
kernel_floor=$(awk -v b="$kernel_base" 'BEGIN { printf "%d", b * 1.2 }')
fresh_framing=$(fresh_rps incremental_framing)
if [ "${fresh_framing:-0}" -lt "$kernel_floor" ]; then
  echo "bench-check: incremental_framing ${fresh_framing:-0} reports/s is below" \
    "the kernel-layer floor ${kernel_floor} (1.2x pre-kernel ${kernel_base})" >&2
  exit 1
fi
echo "incremental_framing kernel-layer floor ${kernel_floor} (1.2x ${kernel_base}): OK"

# Zero-allocation gate: steady-state per-tick processing must not touch
# the heap. Any nonzero count means a recycled buffer or scratch arena
# stopped being reused.
grep -q '"kernel_bench"' BENCH_pipeline.json || {
  echo "bench-check: kernel_bench entry missing from BENCH_pipeline.json" >&2
  exit 1
}
hot_allocs=$(sed -n 's/^ *"hot_path_allocs": { "allocs": \([0-9]*\).*/\1/p' \
  BENCH_pipeline.json | head -n 1)
if [ -z "$hot_allocs" ]; then
  echo "bench-check: hot_path_allocs entry missing from BENCH_pipeline.json" >&2
  exit 1
fi
if [ "$hot_allocs" -ne 0 ]; then
  echo "bench-check: hot path performed ${hot_allocs} allocations in the" \
    "steady-state window; the per-tick path must be allocation-free" >&2
  exit 1
fi
echo "hot_path_allocs ${hot_allocs}: OK"

# Stage-graph overhead gate: the graph-composed streaming replay must stay
# within STAGE_TOLERANCE (3%) of the committed trace_replay throughput
# (reports / json_ms — the full decode+recognize replay cost).
stage_tolerance=${STAGE_TOLERANCE:-0.97}
fresh_stage=$(fresh_rps stage_overhead)
if [ -z "$fresh_stage" ]; then
  echo "bench-check: stage_overhead entry missing from BENCH_pipeline.json" >&2
  exit 1
fi
base_trace_reports=$(sed -n 's/^ *"trace_replay": { "reports": \([0-9]*\),.*/\1/p' <<<"$baseline" | head -n 1)
base_trace_json_ms=$(sed -n 's/^ *"trace_replay":.*"json_ms": \([0-9.]*\),.*/\1/p' <<<"$baseline" | head -n 1)
if [ -z "$base_trace_reports" ] || [ -z "$base_trace_json_ms" ]; then
  echo "stage_overhead: ${fresh_stage} reports/s (no committed trace_replay baseline; gate skipped)"
else
  stage_floor=$(awk -v r="$base_trace_reports" -v ms="$base_trace_json_ms" \
    -v t="$stage_tolerance" 'BEGIN { printf "%d", r / ms * 1000 * t }')
  if [ "$fresh_stage" -lt "$stage_floor" ]; then
    echo "bench-check: stage-graph replay fell to ${fresh_stage} reports/s" \
      "(committed trace_replay ${base_trace_reports} reports / ${base_trace_json_ms} ms," \
      "floor ${stage_floor} at tolerance ${stage_tolerance})" >&2
    exit 1
  fi
  echo "stage_overhead: ${fresh_stage} reports/s (trace_replay floor ${stage_floor}): OK"
fi

# Parallel-speedup sanity: only meaningful with more than one core.
cores=$(sed -n 's/^ *"cores": \([0-9]*\),*/\1/p' BENCH_pipeline.json | head -n 1)
if [ "${cores:-1}" -le 1 ]; then
  echo "parallel-speedup checks skipped: cores=${cores:-1}"
else
  speedup=$(sed -n 's/^ *"stroke_batch_13":.*"speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json | head -n 1)
  awk -v s="${speedup:-0}" 'BEGIN { exit !(s >= 1.0) }' || {
    echo "bench-check: stroke_batch_13 parallel speedup ${speedup} < 1.0 on ${cores} cores" >&2
    exit 1
  }
  echo "stroke_batch_13 parallel speedup ${speedup} on ${cores} cores: OK"
fi

# Serve throughput gate: the loopback replay must hold its committed
# reports_per_s. Skipped on one core, where client threads, connection
# threads, and engine workers all contend for the same CPU and the
# number measures the scheduler, not the server.
if [ "${cores:-1}" -le 1 ]; then
  echo "serve_loopback throughput gate skipped: cores=${cores:-1}"
else
  gate_rps serve_loopback "$(fresh_rps serve_loopback)" "$base_serve"
fi

echo "bench-check: OK"
