#!/usr/bin/env bash
# Perf gate: build, test, quick-bench, and refresh BENCH_pipeline.json.
#
# Usage: scripts/bench-check.sh [--run-all]
#   --run-all   also time the full `run_all quick` roster serial vs parallel
#               (slower; produces the run_all_quick entry in the JSON)
#
# Fails on any build error, test failure, or bench panic. Criterion sample
# time is kept short via CRITERION_SAMPLE_MS so the pass stays quick.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --check

echo "== lints =="
cargo clippy --all-targets -- -D warnings

echo "== docs (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q

echo "== quick criterion pass (observe cache + pipeline) =="
CRITERION_SAMPLE_MS=${CRITERION_SAMPLE_MS:-150} cargo bench -p bench --bench observe_cache
CRITERION_SAMPLE_MS=${CRITERION_SAMPLE_MS:-150} cargo bench -p bench --bench pipeline

echo "== perf trajectory -> BENCH_pipeline.json =="
cargo run --release -p experiments --bin bench_pipeline -- "${1:-}"

echo "== multi-session engine smoke (8 golden-trace replays) =="
cargo run --release -p experiments --bin engine_bench -- --sessions 8

echo "== telemetry exposition smoke + overhead -> BENCH_pipeline.json =="
# `stats` self-validates the exposition (names/labels well-formed, no
# duplicate series) and exits nonzero on a malformed render; --bench merges
# the telemetry_overhead entry (instrumented vs RFIPAD_LOG=off replay).
expo=$(cargo run --release -p experiments --bin trace_tool -- \
  stats tests/data/golden_session.rftrace --bench)
for family in rfid_reader_reads_total rfipad_stage_duration_us_bucket \
  rfipad_pipeline_reports_total; do
  grep -q "^$family" <<<"$expo" || {
    echo "bench-check: exposition is missing $family" >&2
    exit 1
  }
done
grep -q '"telemetry_overhead"' BENCH_pipeline.json || {
  echo "bench-check: telemetry_overhead entry missing from BENCH_pipeline.json" >&2
  exit 1
}

echo "bench-check: OK"
