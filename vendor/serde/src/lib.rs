//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` in both the trait and derive-macro
//! namespaces so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. The derives expand
//! to nothing (see the sibling `serde_derive` shim) because nothing in this
//! workspace performs actual serialization — the annotations only document
//! intent until a real registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (lifetime elided; nothing
/// here borrows from a deserializer).
pub trait Deserialize {}
