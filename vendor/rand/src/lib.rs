//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the workspace carries the small subset of the
//! `rand` 0.9 API it actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! [`Rng::random`] / [`Rng::random_range`].
//!
//! The generator is xoshiro256** seeded through SplitMix64 — not the same
//! stream as upstream `StdRng` (which is explicitly *not* a stability
//! promise upstream either), but a high-quality deterministic PRNG, which
//! is all the simulator requires: every experiment seeds its own rng and
//! results only need to be reproducible within this workspace.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanding it with
    /// SplitMix64 exactly like upstream `rand`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type: uniform over the
    /// full integer range, uniform in `[0, 1)` for floats, fair coin for
    /// `bool`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable by [`Rng::random_range`].
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Rejection sampling over the widest power-of-two window
                // that covers `span`, to stay unbiased.
                let mask = span.next_power_of_two() - 1;
                loop {
                    let draw = u128::from_rng(rng) & mask;
                    if draw < span {
                        return (low as i128 + draw as i128) as $t;
                    }
                }
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        let v = low + (high - low) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v >= high {
            low
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            // SplitMix64 expansion (the same scheme upstream uses).
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            let mut seed = [0u8; 32];
            for (i, word) in s.iter().enumerate() {
                seed[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
            }
            Self::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let n = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn integer_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }
}
