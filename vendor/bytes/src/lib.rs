//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the LLRP codec uses: `BytesMut` as a growable
//! big-endian write buffer, `Bytes` as the frozen read-only result, the
//! `BufMut` putters, and `Buf` getters over `&[u8]` that advance the slice.

use std::ops::Deref;

/// Immutable byte buffer (plain `Vec<u8>` underneath; cloning copies, which
/// is fine at LLRP frame sizes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

/// Growable byte buffer used to assemble frames before freezing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Write side of the buffer API; all multi-byte putters are big-endian,
/// matching the network byte order LLRP mandates.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i16`.
    fn put_i16(&mut self, v: i16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side of the buffer API; getters consume from the front and panic on
/// underrun, mirroring the real crate's contract.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Drops `cnt` bytes from the front.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out of the front.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_be_bytes(raw)
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `i16`.
    fn get_i16(&mut self) -> i16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        i16::from_be_bytes(raw)
    }

    /// Reads a big-endian `i32`.
    fn get_i32(&mut self) -> i32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        i32::from_be_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_big_endian_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0x04);
        buf.put_u16(0xBEEF);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_i16(-257);
        buf.put_slice(&[1, 2, 3]);
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2 + 3);

        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0x04);
        assert_eq!(rd.get_u16(), 0xBEEF);
        assert_eq!(rd.get_u32(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(rd.get_i16(), -257);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(tail, [1, 2, 3]);
        assert!(!rd.has_remaining());
    }

    #[test]
    fn wire_order_is_network_order() {
        let mut buf = BytesMut::new();
        buf.put_u16(0x0102);
        assert_eq!(&buf[..], &[0x01, 0x02]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underrun_panics() {
        let mut rd: &[u8] = &[0u8; 1];
        let _ = rd.get_u32();
    }
}
