//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro/API surface the workspace benches use —
//! `criterion_group!` / `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `BenchmarkId`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, `black_box` — but replaces the statistical engine with a
//! simple calibrated wall-clock loop that prints mean time per iteration.
//! Good enough to compare cold vs cached code paths; not a substitute for
//! real criterion's outlier analysis.
//!
//! Tunables (environment):
//! - `CRITERION_SAMPLE_MS`: target measurement time per benchmark in
//!   milliseconds (default 300).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batch sizing hint; the shim treats every variant the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the closure given to `bench_function`; runs and times the body.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    sample_time: Duration,
}

impl Bencher {
    /// Times `routine`, auto-scaling the iteration count to fill the
    /// configured sample window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that takes a
        // meaningful fraction of the sample window.
        let mut n: u64 = 1;
        let calibration_floor = self.sample_time / 20;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= calibration_floor || n >= 1 << 30 {
                break;
            }
            n = n.saturating_mul(2);
        }

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        while total < self.sample_time {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            total += start.elapsed();
            iters += n;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over values produced by `setup`, excluding setup time
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        // Keep batches small so setup output doesn't accumulate.
        let batch: u64 = 16;
        while total < self.sample_time || iters == 0 {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn sample_time() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms.max(1))
}

fn report(name: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<48} time: {value:>10.3} {unit}/iter");
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_time: sample_time(),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut body: F) -> &mut Self {
        let mut bencher = Bencher {
            mean_ns: 0.0,
            sample_time: self.sample_time,
        };
        body(&mut bencher);
        report(name, bencher.mean_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// Group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group; `id` may be a `&str` or a
    /// [`BenchmarkId`].
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        body: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, body);
        self
    }

    /// Ends the group (no-op beyond matching real criterion's API).
    pub fn finish(self) {}
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_nonzero_time() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut criterion = Criterion::default();
        let mut observed = 0.0;
        criterion.bench_function("spin", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            observed = b.mean_ns;
        });
        assert!(observed > 0.0);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut criterion = Criterion::default();
        criterion.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
            assert!(b.mean_ns > 0.0);
        });
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("observe", 4).to_string(), "observe/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
