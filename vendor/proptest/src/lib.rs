//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over `arg in strategy` parameter lists, range strategies for floats
//! and integers, `any::<T>()`, tuple strategies, `prop::collection::vec`,
//! and the `prop_assert*` macros. Instead of shrinking random failures, it
//! runs a fixed number of cases from an RNG seeded by the test-function name,
//! so every run of a given test explores the same inputs (failures are
//! reproducible by rerunning the test, no persistence files needed).

use std::ops::Range;

pub use rand;
use rand::rngs::StdRng;
use rand::Rng;

/// Number of cases each `proptest!` test runs (proptest's default is 256;
/// this harness trades a little coverage for faster suites).
pub const CASES: u32 = 64;

/// Error carried by `prop_assert!` failures inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable failure description, including the offending inputs.
    pub message: String,
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of generated values. Unlike real proptest there is no value
/// tree / shrinking; `sample` draws a fresh value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "empty float strategy range");
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut StdRng) -> $ty {
                assert!(self.start < self.end, "empty integer strategy range");
                rng.random_range(self.start..self.end)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($(ref $name,)+) = *self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Draws an unconstrained value of this type.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut StdRng) -> $ty {
                rng.random::<$ty>()
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric spread; real proptest also generates
        // specials (NaN, infinities) but no test here relies on them.
        (rng.random::<f64>() - 0.5) * 2e6
    }
}

/// Strategy over a type's whole domain; construct via [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the whole-domain strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `len` and elements
    /// drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            assert!(self.len.start < self.len.end, "empty vec length range");
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(...)` resolves.
pub mod prop {
    pub use crate::collection;
}

/// Seeds the per-test RNG from the test's module path + name so each test
/// gets its own deterministic input stream.
pub fn seed_for(test_name: &str) -> u64 {
    // FNV-1a; stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Everything a property test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError { message: format!($($fmt)*) });
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            left_val == right_val,
            "assertion failed: `{:?}` == `{:?}`",
            left_val,
            right_val
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(left_val == right_val, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left_val, right_val) = (&$left, &$right);
        $crate::prop_assert!(
            left_val != right_val,
            "assertion failed: `{:?}` != `{:?}`",
            left_val,
            right_val
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // Treated as a silently passing case; the deterministic input
            // stream means over-filtering shows up as reduced coverage, not
            // flaky rejection errors.
            return Ok(());
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written at the call site and
/// captured via `$(#[$meta])*`) that samples `CASES` deterministic inputs
/// and runs the body against each.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::rand::SeedableRng;
            use $crate::Strategy as _;
            let mut rng = $crate::rand::rngs::StdRng::seed_from_u64(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..$crate::CASES {
                $(let $arg = ($strategy).sample(&mut rng);)*
                let outcome: $crate::TestCaseResult = (|| {
                    $(let $arg = $arg.clone();)*
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(err) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name),
                        case + 1,
                        $crate::CASES,
                        err.message,
                        format!(
                            concat!($(stringify!($arg), " = {:?}  ",)*),
                            $($arg),*
                        ),
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a::one"), crate::seed_for("a::two"));
        assert_eq!(crate::seed_for("a::one"), crate::seed_for("a::one"));
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec(any::<u8>(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
        }

        #[test]
        fn tuple_strategies_compose(pair in (0.0f64..1.0, 0u8..4)) {
            prop_assert!(pair.0 >= 0.0 && pair.0 < 1.0);
            prop_assert!(pair.1 < 4);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let panic = result.expect_err("property must fail");
        let message = panic
            .downcast_ref::<String>()
            .expect("string panic payload");
        assert!(message.contains("always_fails"));
        assert!(message.contains("inputs"));
    }
}
