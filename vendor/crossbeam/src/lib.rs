//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the facilities this workspace uses: `crossbeam::channel`
//! unbounded *and* bounded MPMC channels with cloneable senders and
//! receivers, blocking and non-blocking send/receive, queue-depth
//! inspection, and a blocking iterator, implemented over
//! `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when space frees up in a bounded channel.
        space: Condvar,
        /// `None` for unbounded channels.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]; carries the unsent message
    /// back, like crossbeam's.
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity right now.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }

        /// Whether the failure was a full queue (as opposed to disconnect).
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and disconnected.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever receiver
    /// takes them first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a bounded channel holding at most `cap` messages; a full
    /// channel blocks [`Sender::send`] until a receiver makes room. A
    /// capacity of 0 is promoted to 1 (this stand-in has no rendezvous
    /// mode).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is full;
        /// fails only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.inner.cap {
                while queue.len() >= cap {
                    if self.inner.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self.inner.space.wait(queue).expect("channel poisoned");
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Enqueues a message if the channel has room right now.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.inner.cap {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            queue.push_back(value);
            drop(queue);
            self.inner.ready.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity (`None` when unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.cap
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.inner.space.notify_one();
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Takes a message if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            match queue.pop_front() {
                Some(value) => {
                    drop(queue);
                    self.inner.space.notify_one();
                    Ok(value)
                }
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().expect("channel poisoned").len()
        }

        /// Whether the queue is empty right now.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel's capacity (`None` when unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.inner.cap
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake senders blocked on a full bounded
                // channel so they observe the disconnect.
                self.inner.space.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            let handle = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(handle.join().expect("no panic"), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_try_send_reports_full() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).expect("room");
            tx.try_send(2).expect("room");
            assert_eq!(tx.len(), 2);
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).expect("room after pop");
            let got: Vec<i32> = (0..2).map(|_| rx.try_recv().expect("queued")).collect();
            assert_eq!(got, vec![2, 3]);
        }

        #[test]
        fn bounded_send_blocks_until_room() {
            let (tx, rx) = bounded(1);
            tx.send(1).expect("room");
            let sender = std::thread::spawn(move || tx.send(2));
            // The blocked send completes once the receiver drains a slot.
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            sender.join().expect("no panic").expect("receiver alive");
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn blocked_send_unblocks_on_receiver_drop() {
            let (tx, rx) = bounded(1);
            tx.send(1).expect("room");
            let sender = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(sender.join().expect("no panic").is_err());
        }

        #[test]
        fn try_send_without_receivers_disconnects() {
            let (tx, rx) = bounded(4);
            drop(rx);
            assert!(matches!(tx.try_send(9), Err(TrySendError::Disconnected(9))));
        }

        #[test]
        fn zero_capacity_promoted_to_one() {
            let (tx, rx) = bounded(0);
            assert_eq!(tx.capacity(), Some(1));
            tx.try_send(7).expect("one slot");
            assert!(tx.try_send(8).is_err());
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn cross_thread_stream() {
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().expect("no panic");
            assert_eq!(got.len(), 1000);
            assert!(got.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
