//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the one facility this workspace uses: `crossbeam::channel`
//! unbounded MPMC channels with cloneable senders *and* receivers and a
//! blocking iterator, implemented over `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message back, like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and disconnected.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half; cloneable (messages go to whichever receiver
    /// takes them first).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing only if all receivers dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.inner.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.inner
                .queue
                .lock()
                .expect("channel poisoned")
                .push_back(value);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.inner.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Takes a message if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.inner.queue.lock().expect("channel poisoned");
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.inner.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;

        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
            drop(tx);
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_unblocks_on_disconnect() {
            let (tx, rx) = unbounded::<i32>();
            let handle = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(handle.join().expect("no panic"), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cross_thread_stream() {
            let (tx, rx) = unbounded();
            let producer = std::thread::spawn(move || {
                for i in 0..1000 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            producer.join().expect("no panic");
            assert_eq!(got.len(), 1000);
            assert!(got.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
