//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset the experiments harness uses — `into_par_iter()` /
//! `par_iter()` followed by `map(...).collect::<Vec<_>>()` — on top of
//! `std::thread::scope`. Work items are handed out through an atomic cursor
//! and results are written back into their original slot, so `collect`
//! always returns results in input order regardless of which worker ran
//! which item. That ordering guarantee is what makes parallel experiment
//! batches bit-identical to serial ones.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like real rayon) or falls
//! back to `std::thread::available_parallelism()`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads the pool-less engine spawns per call.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs `op(i)` for every index, spreading indices across worker threads via
/// an atomic cursor; results land in input order.
fn run_indexed<T, F>(len: usize, op: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = current_num_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(op).collect();
    }

    let out: Vec<Mutex<Option<T>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let op = &op;
    let out_ref = &out;
    let cursor_ref = &cursor;

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let i = cursor_ref.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let value = op(i);
                *out_ref[i].lock().expect("worker panicked") = Some(value);
            });
        }
    });

    out.into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("worker panicked")
                .expect("every index was processed")
        })
        .collect()
}

/// Parallel iterator adapter: holds the items and a chain of mapping steps
/// is represented by eagerly materialising at `collect`.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// Result of `ParIter::map`; evaluation happens at `collect`/`for_each`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    map: F,
}

impl<I: Send> ParIter<I> {
    /// Maps each item in parallel (evaluated on `collect`).
    pub fn map<T, F>(self, map: F) -> ParMap<I, F>
    where
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        ParMap {
            items: self.items,
            map,
        }
    }

    /// Runs `op` on every item in parallel.
    pub fn for_each<F>(self, op: F)
    where
        F: Fn(I) + Sync,
        I: Sync,
    {
        self.map(op).collect::<Vec<()>>();
    }
}

impl<I: Send, T: Send, F: Fn(I) -> T + Sync> ParMap<I, F> {
    /// Evaluates the map over all items and collects results in input order.
    pub fn collect<C: FromParResults<T>>(self) -> C {
        let slots: Vec<Mutex<Option<I>>> = self
            .items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let map = &self.map;
        let slots_ref = &slots;
        let results = run_indexed(slots_ref.len(), move |i| {
            let item = slots_ref[i]
                .lock()
                .expect("worker panicked")
                .take()
                .expect("each slot taken once");
            map(item)
        });
        C::from_par_results(results)
    }
}

/// Collection target for parallel results (mirrors rayon's
/// `FromParallelIterator` for the `Vec` case the workspace needs).
pub trait FromParResults<T> {
    fn from_par_results(results: Vec<T>) -> Self;
}

impl<T> FromParResults<T> for Vec<T> {
    fn from_par_results(results: Vec<T>) -> Self {
        results
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    type Item: Send;

    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

macro_rules! range_into_par_iter {
    ($($ty:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;

            fn into_par_iter(self) -> ParIter<$ty> {
                ParIter {
                    items: self.collect(),
                }
            }
        }
    )*};
}

range_into_par_iter!(u32, u64, usize, i32, i64);

/// Types whose references yield parallel iterators (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;

    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import module mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn vec_and_slice_par_iter_agree() {
        let data: Vec<i32> = (0..100).collect();
        let doubled_ref: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        let doubled_own: Vec<i32> = data.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled_ref, doubled_own);
    }

    #[test]
    fn respects_thread_env_when_single() {
        // With a single worker the engine falls back to the serial path;
        // output must be identical either way.
        let serial: Vec<usize> = (0usize..64).map(|i| i + 1).collect();
        let parallel: Vec<usize> = (0usize..64).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn for_each_visits_every_item() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let sum = AtomicU64::new(0);
        (1u64..101).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }
}
