//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates its data types with
//! `#[derive(Serialize, Deserialize)]` so they are ready for wire/disk
//! serialization, but no code path actually serializes anything (there is no
//! `serde_json` or similar in the dependency tree). These derives therefore
//! accept the annotation and expand to nothing, which keeps the annotations
//! compiling in an environment where the real `serde` cannot be downloaded.

use proc_macro::TokenStream;

/// No-op replacement for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
