//! Property-based tests of the physics substrate's invariants.

use proptest::prelude::*;
use rf_sim::channel;
use rf_sim::coupling;
use rf_sim::geometry::{Complex, Vec3};
use rf_sim::noise::{quantize_phase, quantize_rss, PHASE_STEP, RSS_STEP_DB};
use rf_sim::tags::{Facing, Tag, TagId, TagModel};
use rf_sim::units::{Db, Dbi, Dbm, Meters};

proptest! {
    /// dBm ↔ watts round-trips.
    #[test]
    fn dbm_watts_round_trip(dbm in -100.0f64..50.0) {
        let w = Dbm(dbm).to_watts();
        prop_assert!(w > 0.0);
        prop_assert!((Dbm::from_watts(w).value() - dbm).abs() < 1e-9);
    }

    /// Gain ↔ linear round-trips.
    #[test]
    fn dbi_linear_round_trip(g in -30.0f64..30.0) {
        prop_assert!((Dbi::from_linear(Dbi(g).linear()).value() - g).abs() < 1e-9);
    }

    /// Vector norms satisfy the triangle inequality.
    #[test]
    fn triangle_inequality(
        ax in -10.0f64..10.0, ay in -10.0f64..10.0, az in -10.0f64..10.0,
        bx in -10.0f64..10.0, by in -10.0f64..10.0, bz in -10.0f64..10.0,
    ) {
        let a = Vec3::new(ax, ay, az);
        let b = Vec3::new(bx, by, bz);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-9);
    }

    /// Complex polar construction round-trips amplitude and phase.
    #[test]
    fn complex_polar_round_trip(amp in 0.001f64..1e3, phase in -3.0f64..3.0) {
        let z = Complex::from_polar(amp, phase);
        prop_assert!((z.abs() - amp).abs() / amp < 1e-9);
        prop_assert!((z.arg() - phase).abs() < 1e-9);
    }

    /// Phase quantization stays within half a step and lands in [0, 2π).
    #[test]
    fn phase_quantization_error_bounded(p in -100.0f64..100.0) {
        let q = quantize_phase(p);
        prop_assert!((0.0..std::f64::consts::TAU).contains(&q));
        // Error on the circle:
        let mut err = (q - p).rem_euclid(std::f64::consts::TAU);
        if err > std::f64::consts::PI {
            err -= std::f64::consts::TAU;
        }
        prop_assert!(err.abs() <= PHASE_STEP / 2.0 + 1e-12);
    }

    /// RSS quantization error is at most half a step.
    #[test]
    fn rss_quantization_error_bounded(r in -120.0f64..0.0) {
        prop_assert!((quantize_rss(r) - r).abs() <= RSS_STEP_DB / 2.0 + 1e-12);
    }

    /// Free-space path loss is monotone in distance.
    #[test]
    fn path_loss_monotone(d1 in 0.05f64..5.0, extra in 0.01f64..5.0) {
        let lambda = Meters(0.325);
        let l1 = channel::free_space_path_loss(Meters(d1), lambda).value();
        let l2 = channel::free_space_path_loss(Meters(d1 + extra), lambda).value();
        prop_assert!(l2 > l1);
    }

    /// Backscatter power decreases with distance and increases with RCS.
    #[test]
    fn backscatter_monotonicities(
        d in 0.1f64..3.0,
        rcs in 0.0005f64..0.02,
    ) {
        let lambda = Meters(0.325);
        let p = channel::backscatter_power(Dbm(30.0), Dbi(8.0), rcs, Meters(d), lambda, Db(0.0));
        let farther = channel::backscatter_power(Dbm(30.0), Dbi(8.0), rcs, Meters(d * 1.5), lambda, Db(0.0));
        let bigger = channel::backscatter_power(Dbm(30.0), Dbi(8.0), rcs * 2.0, Meters(d), lambda, Db(0.0));
        prop_assert!(farther.value() < p.value());
        prop_assert!(bigger.value() > p.value());
    }

    /// Pair shadowing never goes negative and decays with distance.
    #[test]
    fn pair_shadow_positive_and_decaying(d_cm in 2.0f64..30.0) {
        let lambda = Meters(0.325);
        let victim = Tag::new(TagId(0), Vec3::ZERO, Facing::Front, TagModel::TypeA, 0.0);
        let near = Tag::new(TagId(1), Vec3::new(d_cm / 100.0, 0.0, 0.0), Facing::Front, TagModel::TypeA, 0.0);
        let far = Tag::new(TagId(1), Vec3::new(d_cm / 100.0 + 0.05, 0.0, 0.0), Facing::Front, TagModel::TypeA, 0.0);
        let s_near = coupling::pair_shadow_db(&near, &victim, lambda).value();
        let s_far = coupling::pair_shadow_db(&far, &victim, lambda).value();
        prop_assert!(s_near >= 0.0 && s_far >= 0.0);
        prop_assert!(s_far <= s_near + 1e-12);
    }

    /// Reflection amplitude is capped and non-negative.
    #[test]
    fn reflection_amplitude_bounded(
        d_rt in 0.05f64..3.0,
        d_rh in 0.05f64..3.0,
        d_ht in 0.001f64..3.0,
        rcs in 0.001f64..0.1,
    ) {
        let rho = channel::reflection_amplitude(d_rt, d_rh, d_ht, rcs, 2.0);
        prop_assert!((0.0..=2.0).contains(&rho));
    }

    /// Obstruction attenuation is bounded by its maximum and zero for
    /// obstacles far off the path.
    #[test]
    fn obstruction_bounded(
        ox in -1.0f64..1.0, oy in -1.0f64..1.0, oz in -1.0f64..1.0,
        max_db in 0.1f64..30.0,
    ) {
        let from = Vec3::new(0.0, 0.0, 1.0);
        let to = Vec3::ZERO;
        let a = coupling::obstruction_db(Vec3::new(ox, oy, oz), 0.05, from, to, max_db).value();
        prop_assert!((0.0..=max_db + 1e-12).contains(&a));
        let far = coupling::obstruction_db(Vec3::new(ox + 10.0, oy, oz), 0.05, from, to, max_db).value();
        prop_assert!(far < 1e-6);
    }
}
