//! Passive UHF tag models and instances.
//!
//! The paper's deployment study (§IV-B2, Fig. 12) tests four commercial tag
//! designs with different antenna sizes and hence different radar
//! scattering cross-sections (RCS). RCS determines both the backscattered
//! power and how strongly a tag shadows its neighbours; the paper finds the
//! small-antenna Impinj AZ-E53 ("Tag B") interferes least and recommends it
//! for the array.

use crate::geometry::Vec3;
use crate::units::Dbm;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for a simulated tag. Maps 1:1 to an EPC in the
/// `rfid-gen2` crate.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TagId(pub u64);

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tag-{:04}", self.0)
    }
}

/// The four commercial tag designs evaluated in the paper's Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagModel {
    /// Large dipole design (e.g. Alien "Squiggle"-class): big antenna, large
    /// RCS, strong neighbour shadowing.
    TypeA,
    /// Impinj AZ-E53: small antenna, smallest RCS — the paper's recommended
    /// choice for dense arrays.
    TypeB,
    /// Mid-size inlay.
    TypeC,
    /// Largest antenna of the four; worst-case shadowing (−20 dB at three
    /// columns in the paper's measurement).
    TypeD,
}

impl TagModel {
    /// Unmodulated radar scattering cross-section in m², the quantity the
    /// paper (citing Dobkin) identifies as controlling inter-tag
    /// interference. Values are representative of UHF inlays (10⁻³–10⁻² m²),
    /// ordered so TypeD ≫ TypeA > TypeC ≫ TypeB as in Fig. 12.
    pub fn rcs_m2(self) -> f64 {
        match self {
            TagModel::TypeA => 0.0065,
            TagModel::TypeB => 0.0009,
            TagModel::TypeC => 0.0040,
            TagModel::TypeD => 0.0110,
        }
    }

    /// Physical antenna length in metres (the paper quotes 4.4 cm tag size
    /// for its array tags).
    pub fn antenna_len_m(self) -> f64 {
        match self {
            TagModel::TypeA => 0.095,
            TagModel::TypeB => 0.044,
            TagModel::TypeC => 0.070,
            TagModel::TypeD => 0.120,
        }
    }

    /// Tag antenna boresight gain in dBi (short dipoles ≈ 2 dBi).
    pub fn gain_dbi(self) -> f64 {
        2.0
    }

    /// Tag antenna gain toward a direction whose angle from the plate
    /// normal is `theta_inc`: label-type inlays radiate strongest along the
    /// normal and fall off roughly as cos(θ) in field (−20·log10 cos in
    /// power, floored at −14 dB).
    pub fn gain_toward_dbi(self, theta_inc: f64) -> f64 {
        let rolloff = 20.0 * theta_inc.cos().abs().max(0.2).log10();
        self.gain_dbi() + rolloff.max(-14.0)
    }

    /// Minimum incident power for the IC to operate (forward-link limit).
    /// Typical Monza-class sensitivity.
    pub fn sensitivity(self) -> Dbm {
        Dbm(-11.5)
    }

    /// All four models, in Fig. 12's order.
    pub fn all() -> [TagModel; 4] {
        [
            TagModel::TypeA,
            TagModel::TypeB,
            TagModel::TypeC,
            TagModel::TypeD,
        ]
    }
}

impl fmt::Display for TagModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TagModel::TypeA => "Tag A",
            TagModel::TypeB => "Tag B (Impinj AZ-E53)",
            TagModel::TypeC => "Tag C",
            TagModel::TypeD => "Tag D",
        };
        f.write_str(name)
    }
}

/// Which way a tag's antenna faces. The paper's pair study (Fig. 11) shows
/// two close tags facing the *same* way shadow each other strongly, while
/// *opposite* facing nearly removes the interference — hence the deployment
/// guideline to alternate facings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Facing {
    /// Antenna faces +z (toward the hand / reader in LOS).
    Front,
    /// Antenna faces −z.
    Back,
}

impl Facing {
    /// The opposite facing.
    pub fn flipped(self) -> Facing {
        match self {
            Facing::Front => Facing::Back,
            Facing::Back => Facing::Front,
        }
    }
}

/// One physical tag placed in the scene.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tag {
    /// Stable identifier.
    pub id: TagId,
    /// Position of the tag centre in metres.
    pub position: Vec3,
    /// Antenna facing.
    pub facing: Facing,
    /// Commercial design (sets RCS, size, sensitivity).
    pub model: TagModel,
    /// Per-tag hardware phase offset θ_tag in radians — the *tag diversity*
    /// the paper's Eq. 6–8 suppress. Drawn uniformly from [0, 2π) at
    /// manufacture.
    pub theta_tag: f64,
}

impl Tag {
    /// Creates a tag with the given parameters.
    pub fn new(id: TagId, position: Vec3, facing: Facing, model: TagModel, theta_tag: f64) -> Self {
        Self {
            id,
            position,
            facing,
            model,
            theta_tag,
        }
    }
}

/// A rectangular tag array (the paper's 5×5 "RFIPad" plate).
///
/// Tags are laid out in the `z = 0` plane, row-major: tag `(r, c)` sits at
/// `(c·spacing, -r·spacing, 0)` relative to the top-left tag, so row 0 is the
/// top of the pad and rows grow downward like image coordinates. Facings
/// alternate in a checkerboard, per the paper's deployment guideline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagArray {
    rows: usize,
    cols: usize,
    spacing: f64,
    origin: Vec3,
    tags: Vec<Tag>,
}

impl TagArray {
    /// Builds an array of `rows × cols` tags with `spacing` metres between
    /// adjacent tags (paper default: 5×5 at 6 cm), top-left tag at `origin`.
    /// θ_tag values are produced by `theta_for(id)` so callers control the
    /// diversity realization (e.g. seeded randomness).
    ///
    /// # Panics
    ///
    /// Panics if `rows`, `cols`, or `spacing` is zero/non-positive.
    pub fn grid(
        rows: usize,
        cols: usize,
        spacing: f64,
        origin: Vec3,
        model: TagModel,
        mut theta_for: impl FnMut(TagId) -> f64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be nonzero");
        assert!(spacing > 0.0, "tag spacing must be positive");
        let mut tags = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let id = TagId((r * cols + c) as u64);
                let position = origin + Vec3::new(c as f64 * spacing, -(r as f64) * spacing, 0.0);
                let facing = if (r + c) % 2 == 0 {
                    Facing::Front
                } else {
                    Facing::Back
                };
                tags.push(Tag::new(id, position, facing, model, theta_for(id)));
            }
        }
        Self {
            rows,
            cols,
            spacing,
            origin,
            tags,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Spacing between adjacent tags in metres.
    pub fn spacing(&self) -> f64 {
        self.spacing
    }

    /// Position of the top-left tag.
    pub fn origin(&self) -> Vec3 {
        self.origin
    }

    /// All tags, row-major.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// The tag at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> &Tag {
        assert!(
            row < self.rows && col < self.cols,
            "tag index out of bounds"
        );
        &self.tags[row * self.cols + col]
    }

    /// Looks up a tag by id.
    pub fn get(&self, id: TagId) -> Option<&Tag> {
        self.tags.iter().find(|t| t.id == id)
    }

    /// Converts a tag id back to `(row, col)`.
    pub fn grid_index(&self, id: TagId) -> Option<(usize, usize)> {
        let i = id.0 as usize;
        (i < self.tags.len()).then(|| (i / self.cols, i % self.cols))
    }

    /// Geometric centre of the array.
    pub fn center(&self) -> Vec3 {
        self.origin
            + Vec3::new(
                (self.cols - 1) as f64 * self.spacing / 2.0,
                -((self.rows - 1) as f64) * self.spacing / 2.0,
                0.0,
            )
    }

    /// Side length of the populated plate, including one tag size margin
    /// (the paper computes 46 cm for 5 tags at 6 cm spacing with 4.4 cm
    /// tags).
    pub fn plate_len(&self) -> f64 {
        let model_len = self
            .tags
            .first()
            .map(|t| t.model.antenna_len_m())
            .unwrap_or(0.0);
        (self.cols - 1) as f64 * self.spacing + model_len * (self.cols as f64 / 5.0).max(1.0)
    }

    /// World position of the point above grid coordinates `(row, col)`
    /// (fractional allowed) at height `z` over the plane. This is the
    /// natural coordinate system for hand trajectories.
    pub fn point_over(&self, row: f64, col: f64, z: f64) -> Vec3 {
        self.origin + Vec3::new(col * self.spacing, -row * self.spacing, z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> TagArray {
        TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
            id.0 as f64 * 0.1
        })
    }

    #[test]
    fn grid_has_rows_times_cols_tags() {
        let a = array();
        assert_eq!(a.tags().len(), 25);
        assert_eq!(a.rows(), 5);
        assert_eq!(a.cols(), 5);
    }

    #[test]
    fn positions_follow_row_major_layout() {
        let a = array();
        let t = a.at(2, 3);
        assert!((t.position.x - 0.18).abs() < 1e-12);
        assert!((t.position.y + 0.12).abs() < 1e-12);
        assert_eq!(t.position.z, 0.0);
    }

    #[test]
    fn ids_are_row_major_and_invertible() {
        let a = array();
        for r in 0..5 {
            for c in 0..5 {
                let t = a.at(r, c);
                assert_eq!(a.grid_index(t.id), Some((r, c)));
                assert_eq!(a.get(t.id).map(|x| x.position), Some(t.position));
            }
        }
        assert_eq!(a.grid_index(TagId(99)), None);
    }

    #[test]
    fn facings_alternate_checkerboard() {
        let a = array();
        assert_eq!(a.at(0, 0).facing, Facing::Front);
        assert_eq!(a.at(0, 1).facing, Facing::Back);
        assert_eq!(a.at(1, 0).facing, Facing::Back);
        assert_eq!(a.at(1, 1).facing, Facing::Front);
    }

    #[test]
    fn theta_tag_uses_provided_function() {
        let a = array();
        assert_eq!(a.at(0, 0).theta_tag, 0.0);
        assert!((a.at(0, 1).theta_tag - 0.1).abs() < 1e-12);
    }

    #[test]
    fn center_of_5x5() {
        let c = array().center();
        assert!((c.x - 0.12).abs() < 1e-12);
        assert!((c.y + 0.12).abs() < 1e-12);
    }

    #[test]
    fn plate_len_close_to_paper() {
        // Paper: ≈46 cm for the 5×5, 6 cm pitch, 4.4 cm tags.
        let l = array().plate_len();
        assert!(l > 0.26 && l < 0.50, "plate length {l}");
    }

    #[test]
    fn rcs_ordering_matches_fig12() {
        assert!(TagModel::TypeD.rcs_m2() > TagModel::TypeA.rcs_m2());
        assert!(TagModel::TypeA.rcs_m2() > TagModel::TypeC.rcs_m2());
        assert!(TagModel::TypeC.rcs_m2() > TagModel::TypeB.rcs_m2());
    }

    #[test]
    fn facing_flip_is_involution() {
        assert_eq!(Facing::Front.flipped().flipped(), Facing::Front);
    }

    #[test]
    fn point_over_grid_coordinates() {
        let a = array();
        let p = a.point_over(2.0, 3.0, 0.05);
        let t = a.at(2, 3);
        assert!((p.x - t.position.x).abs() < 1e-12);
        assert!((p.y - t.position.y).abs() < 1e-12);
        assert!((p.z - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tag index out of bounds")]
    fn at_out_of_bounds_panics() {
        array().at(5, 0);
    }
}
