//! Physical-quantity newtypes and conversions.
//!
//! Link-budget code mixes powers in dBm and watts, gains in dBi, distances
//! in metres, and frequencies in hertz. Newtypes keep those units from being
//! confused at compile time (paper parameters: 922.38 MHz carrier, 30 dBm TX
//! power, 8 dBi antenna gain).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

macro_rules! scalar_unit {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// Raw numeric value.
            pub fn value(self) -> f64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", self.0, $suffix)
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }
    };
}

scalar_unit!(
    /// A distance in metres.
    Meters,
    " m"
);
scalar_unit!(
    /// A power level in dBm (decibels relative to 1 mW).
    Dbm,
    " dBm"
);
scalar_unit!(
    /// A power ratio in decibels.
    Db,
    " dB"
);
scalar_unit!(
    /// An antenna gain in dBi (decibels relative to isotropic).
    Dbi,
    " dBi"
);
scalar_unit!(
    /// A frequency in hertz.
    Hertz,
    " Hz"
);
scalar_unit!(
    /// A time in seconds.
    Seconds,
    " s"
);

impl Dbm {
    /// Converts to watts.
    ///
    /// ```
    /// use rf_sim::units::Dbm;
    /// assert!((Dbm(30.0).to_watts() - 1.0).abs() < 1e-12);
    /// ```
    pub fn to_watts(self) -> f64 {
        10f64.powf((self.0 - 30.0) / 10.0)
    }

    /// Creates a dBm value from watts.
    ///
    /// # Panics
    ///
    /// Panics if `watts <= 0`.
    pub fn from_watts(watts: f64) -> Dbm {
        assert!(watts > 0.0, "power must be positive, got {watts} W");
        Dbm(10.0 * watts.log10() + 30.0)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}

impl Add<Dbi> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Dbi) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}

impl Dbi {
    /// Linear gain ratio.
    ///
    /// ```
    /// use rf_sim::units::Dbi;
    /// assert!((Dbi(8.0).linear() - 6.3096).abs() < 1e-3);
    /// ```
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a dBi gain from a linear ratio.
    ///
    /// # Panics
    ///
    /// Panics if `linear <= 0`.
    pub fn from_linear(linear: f64) -> Dbi {
        assert!(linear > 0.0, "gain ratio must be positive, got {linear}");
        Dbi(10.0 * linear.log10())
    }
}

impl Db {
    /// Linear power ratio.
    pub fn linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates a dB ratio from a linear power ratio.
    ///
    /// # Panics
    ///
    /// Panics if `linear <= 0`.
    pub fn from_linear(linear: f64) -> Db {
        assert!(linear > 0.0, "ratio must be positive, got {linear}");
        Db(10.0 * linear.log10())
    }
}

impl Hertz {
    /// Free-space wavelength λ = c / f.
    ///
    /// ```
    /// use rf_sim::units::Hertz;
    /// let lambda = Hertz(922.38e6).wavelength();
    /// assert!((lambda.value() - 0.325).abs() < 0.001); // ≈ 32.5 cm
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    pub fn wavelength(self) -> Meters {
        assert!(self.0 > 0.0, "frequency must be positive");
        Meters(SPEED_OF_LIGHT / self.0)
    }

    /// Convenience constructor from MHz.
    pub fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }
}

/// The carrier frequency used throughout the paper's prototype: 922.38 MHz.
pub const CARRIER_FREQUENCY: Hertz = Hertz(922.38e6);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_watt_round_trip() {
        for dbm in [-60.0, -30.0, 0.0, 15.0, 32.5] {
            let w = Dbm(dbm).to_watts();
            assert!((Dbm::from_watts(w).value() - dbm).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Dbm(0.0).to_watts() - 1e-3).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn from_watts_rejects_nonpositive() {
        Dbm::from_watts(0.0);
    }

    #[test]
    fn dbi_linear_round_trip() {
        let g = Dbi(8.0);
        assert!((Dbi::from_linear(g.linear()).value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn db_arithmetic_on_dbm() {
        let p = Dbm(30.0) - Db(10.0);
        assert_eq!(p.value(), 20.0);
        let q = Dbm(0.0) + Dbi(8.0);
        assert_eq!(q.value(), 8.0);
    }

    #[test]
    fn carrier_wavelength_matches_paper() {
        // The paper quotes ≈ 320 mm for its distance-resolution estimate.
        let lambda = CARRIER_FREQUENCY.wavelength().value();
        assert!(lambda > 0.32 && lambda < 0.33, "lambda {lambda}");
    }

    #[test]
    fn unit_display() {
        assert_eq!(Meters(1.5).to_string(), "1.5 m");
        assert_eq!(Dbm(-41.0).to_string(), "-41 dBm");
    }

    #[test]
    fn unit_arithmetic() {
        assert_eq!((Meters(1.0) + Meters(0.5)).value(), 1.5);
        assert_eq!((Meters(2.0) - Meters(0.5)).value(), 1.5);
        assert_eq!((Meters(2.0) * 3.0).value(), 6.0);
        assert_eq!((Meters(3.0) / 2.0).value(), 1.5);
        assert_eq!((-Meters(1.0)).value(), -1.0);
    }

    #[test]
    fn hertz_from_mhz() {
        assert_eq!(Hertz::from_mhz(922.38).value(), 922.38e6);
    }
}
