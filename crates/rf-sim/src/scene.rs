//! The complete simulated RF scene: antenna + tag plate + environment +
//! moving targets, producing per-tag channel observations.
//!
//! [`Scene::observe`] is the simulator's measurement primitive: it evaluates
//! the full baseband channel of one tag at one instant — direct backscatter
//! path, hand/arm reflection paths (virtual-transmitter model), static
//! multipath, hand×scatterer cross terms, inter-tag shadowing, and LOS
//! obstruction — then applies the location-dependent measurement noise and
//! the reader's phase/RSS quantization.
//!
//! The LOS vs. NLOS deployments of the paper's Fig. 14 need no special
//! casing: placing the antenna on the hand's side of the plate (`z > 0`)
//! makes the hand and arm cross reader–tag paths and triggers obstruction;
//! placing it behind the plate (`z < 0`) leaves only the reflection paths.
//!
//! Tags and the antenna never move, so every target-independent channel
//! term — static multipath, neighbour shadowing, antenna/tag gains, the
//! radar-equation and Friis base powers, the geometric phase — is
//! precomputed per tag and per channel frequency at construction (the
//! internal `StaticChannelCache`). `observe` then only evaluates the moving
//! targets' reflection paths and the noise draws, which is what makes
//! large experiment batches affordable. [`Scene::observe_uncached`]
//! recomputes everything from scratch and is bit-identical by
//! construction; tests hold the two against each other.

use crate::antenna::ReaderAntenna;
use crate::channel;
use crate::coupling;
use crate::environment::Environment;
use crate::geometry::Complex;
#[cfg(test)]
use crate::geometry::Vec3;
use crate::noise;
use crate::tags::{Tag, TagId};
use crate::targets::{MovingTarget, TargetSample};
use crate::units::{Db, Dbm, Hertz, Meters, CARRIER_FREQUENCY};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};

/// A frequency-hopping plan: regulatory domains like the FCC's 902–928 MHz
/// band require readers to hop across channels, which makes the reported
/// phase jump by `4πd·Δf/c` at every hop — breaking phase continuity for
/// sensing unless the pipeline tracks channels. The paper's prototype runs
/// on the fixed 922.38 MHz channel of the Chinese band; this plan lets
/// experiments show what hopping would do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HoppingPlan {
    /// Channel centre frequencies in Hz.
    pub channels: Vec<f64>,
    /// Dwell time per channel in seconds (FCC: ≤ 0.4 s).
    pub dwell_s: f64,
}

impl HoppingPlan {
    /// The FCC-style 50-channel plan over 902.75–927.25 MHz with 0.2 s
    /// dwells.
    pub fn fcc() -> Self {
        Self {
            channels: (0..50).map(|i| 902.75e6 + i as f64 * 0.5e6).collect(),
            dwell_s: 0.2,
        }
    }

    /// The index (into [`HoppingPlan::channels`]) of the channel in use at
    /// time `t` — what an LLRP reader reports as its `ChannelIndex`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no channels or a non-positive dwell.
    pub fn index_at(&self, t: f64) -> usize {
        assert!(!self.channels.is_empty(), "hopping plan needs channels");
        assert!(self.dwell_s > 0.0, "dwell must be positive");
        // FCC hopping is pseudo-random; a fixed coprime stride gives the
        // same statistics deterministically.
        let slot = (t / self.dwell_s).floor() as i64;
        let n = self.channels.len() as i64;
        (slot.rem_euclid(n) * 17).rem_euclid(n) as usize
    }

    /// The channel frequency in use at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if the plan has no channels or a non-positive dwell.
    pub fn channel_at(&self, t: f64) -> f64 {
        self.channels[self.index_at(t)]
    }
}

/// Tunable scene parameters (defaults follow the paper's prototype).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SceneConfig {
    /// Reader transmit power (paper default 30 dBm; regulations cap
    /// commercial readers at 32.5 dBm).
    pub tx_power: Dbm,
    /// Carrier frequency (922.38 MHz in the prototype).
    pub frequency: Hertz,
    /// Combined reader TX+RX circuit phase rotation θ_T + θ_R (radians).
    /// Constant per reader; cancelled by RFIPad's diversity suppression.
    pub reader_circuit_phase: f64,
    /// Peak attenuation when a target sits exactly on a reader–tag line of
    /// sight (dB).
    pub obstruction_max_db: f64,
    /// Cap on the relative amplitude of any single reflection path.
    pub reflection_cap: f64,
    /// Whether neighbouring array tags shadow each other (the §IV-B effect).
    pub intra_array_coupling: bool,
    /// Optional frequency-hopping plan; `None` = fixed carrier (the
    /// paper's deployment).
    pub hopping: Option<HoppingPlan>,
    /// Phase shift (radians per dB of one-way obstruction) the diffracted
    /// direct path picks up when a target blocks it — knife-edge
    /// diffraction shifts phase as well as amplitude. This is what lets
    /// the ceiling-mounted (LOS) deployment sense motion at all: the hand
    /// crossing a reader–tag path modulates that tag's phase.
    pub obstruction_phase_rad_per_db: f64,
    /// Fixed forward-link system losses (dB): polarization mismatch, tag
    /// impedance/orientation mismatch, and (in NLOS) board attenuation.
    /// Free-space Friis alone leaves passive tags with ≈30 dB of margin at
    /// 32 cm, which would make TX power and distance irrelevant; real
    /// deployments lose 12–18 dB to these effects, which is exactly why
    /// the paper's power and distance sweeps (Fig. 17/19) have teeth.
    pub system_loss_db: f64,
    /// Coefficient of the margin-dependent IC noise: a passive tag running
    /// near its sensitivity threshold modulates with compressed depth and
    /// jittery phase. Noise σ = coeff · exp(−(margin−2 dB)/3).
    pub power_noise_coeff: f64,
    /// Gain of *motion-coupled* multipath noise: a hand moving anywhere
    /// near the pad scatters energy off nearby walls and furniture into
    /// every tag's channel, adding phase jitter proportional to the tag's
    /// local multipath energy. This is what degrades rich-multipath rooms
    /// during writing (the paper's location 4) even though their static
    /// floor is quiet — and what the deviation-bias weighting compensates,
    /// since the same tags that jitter most statically sit closest to the
    /// reflectors.
    pub motion_multipath_gain: f64,
    /// Peak one-way detuning/absorption loss (dB) a target inflicts on a
    /// tag it hovers directly over. A hand is a lossy dielectric: besides
    /// reflecting, it detunes the tag antenna, producing the distinct RSS
    /// trough RFIPad's direction estimator relies on (§III-B).
    pub target_detuning_db: f64,
    /// Distance scale (m) of the detuning effect.
    pub detuning_scale_m: f64,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            tx_power: Dbm(30.0),
            frequency: CARRIER_FREQUENCY,
            reader_circuit_phase: 0.8,
            obstruction_max_db: 6.0,
            obstruction_phase_rad_per_db: 0.0,
            motion_multipath_gain: 0.06,
            system_loss_db: 8.0,
            power_noise_coeff: 0.08,
            reflection_cap: 2.0,
            intra_array_coupling: true,
            hopping: None,
            target_detuning_db: 8.0,
            detuning_scale_m: 0.04,
        }
    }
}

/// One reported tag read: what an EPC Gen2 reader exposes per inventory hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagObservation {
    /// Which tag responded.
    pub tag: TagId,
    /// Observation time in seconds.
    pub time: f64,
    /// Reported phase in `[0, 2π)`, quantized to the reader resolution.
    pub phase: f64,
    /// Reported RSS in dBm, quantized to 0.5 dB.
    pub rss_dbm: f64,
    /// Reported Doppler estimate in Hz (noisy, as the paper observes).
    pub doppler_hz: f64,
}

/// Precomputed statics for one (tag, channel-frequency) pair: everything in
/// the channel response that depends on neither the moving targets nor the
/// RNG. Tags and the antenna never move, so these terms are invariant for
/// the lifetime of a [`Scene`] — except across frequency hops, which is why
/// the cache holds one slot per channel.
#[derive(Debug, Clone, Copy)]
struct ChannelStatics {
    /// Channel wavelength (m).
    lambda_m: f64,
    /// `1 +` static multipath phasor: the target-free one-way field factor.
    f_static: Complex,
    /// Radar-equation backscatter power (dBm) at zero extra loss;
    /// per-observation losses subtract `2·extra` from it.
    base_backscatter_dbm: f64,
    /// `4πd/λ + θ_T + θ_R + θ_tag` (rad): the reported phase minus the
    /// target-induced diffraction shift.
    phi_static: f64,
}

/// Frequency-independent statics for one tag.
#[derive(Debug, Clone, Copy)]
struct LinkStatics {
    /// Reader–tag distance (m), floored away from zero like the response
    /// path requires.
    d_rt: f64,
    /// System loss plus neighbour-tag shadowing (dB): the target-free part
    /// of the one-way extra loss.
    static_loss_db: f64,
    /// Friis forward power (dBm) at zero extra loss. Evaluated at the fixed
    /// carrier only: the IC harvests power broadband, so the forward link
    /// does not hop.
    base_forward_dbm: f64,
}

/// Per-tag static-channel cache, built once per scene and rebuilt when the
/// transmit power changes. Holds one [`ChannelStatics`] slot per carrier the
/// scene can use — the fixed carrier plus every hopping-plan channel — keyed
/// by frequency bits, so each hopping dwell selects its own precomputed
/// slot instead of invalidating anything at observation time.
#[derive(Debug, Clone)]
struct StaticChannelCache {
    link: LinkStatics,
    /// `(frequency bits, statics)` per channel; at most 51 entries (50 FCC
    /// channels + the fixed carrier), scanned linearly.
    channels: Vec<(u64, ChannelStatics)>,
}

/// The full simulated deployment.
#[derive(Debug, Clone)]
pub struct Scene {
    antenna: ReaderAntenna,
    tags: Vec<Tag>,
    environment: Environment,
    config: SceneConfig,
    /// Per-tag static neighbour shadowing (dB), precomputed because tags
    /// never move.
    static_shadow_db: Vec<f64>,
    /// Per-tag static-channel cache, parallel to `tags`.
    cache: Vec<StaticChannelCache>,
}

impl Scene {
    /// Assembles a scene.
    ///
    /// # Panics
    ///
    /// Panics if `tags` is empty.
    pub fn new(
        antenna: ReaderAntenna,
        tags: Vec<Tag>,
        environment: Environment,
        config: SceneConfig,
    ) -> Self {
        assert!(!tags.is_empty(), "scene needs at least one tag");
        let lambda = config.frequency.wavelength();
        let static_shadow_db = if config.intra_array_coupling {
            tags.iter()
                .map(|tag| {
                    tags.iter()
                        .filter(|other| other.id != tag.id)
                        .map(|other| coupling::pair_shadow_db(other, tag, lambda).value())
                        .sum()
                })
                .collect()
        } else {
            vec![0.0; tags.len()]
        };
        let mut scene = Self {
            antenna,
            tags,
            environment,
            config,
            static_shadow_db,
            cache: Vec::new(),
        };
        scene.rebuild_cache();
        scene
    }

    /// The reader antenna.
    pub fn antenna(&self) -> &ReaderAntenna {
        &self.antenna
    }

    /// All tags in the scene.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Looks up a tag by id.
    pub fn tag(&self, id: TagId) -> Option<&Tag> {
        self.tags.iter().find(|t| t.id == id)
    }

    /// The static environment.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Replaces the transmit power (for the paper's Fig. 17 power sweep)
    /// and rebuilds the static-channel cache, whose base powers bake in the
    /// transmit level.
    pub fn set_tx_power(&mut self, power: Dbm) {
        self.config.tx_power = power;
        self.rebuild_cache();
    }

    fn wavelength(&self) -> Meters {
        self.config.frequency.wavelength()
    }

    fn tag_index(&self, id: TagId) -> Option<usize> {
        self.tags.iter().position(|t| t.id == id)
    }

    /// Recomputes every tag's [`StaticChannelCache`]. Called at construction
    /// and whenever a config change (transmit power) invalidates the cached
    /// base powers.
    fn rebuild_cache(&mut self) {
        self.cache = (0..self.tags.len())
            .map(|index| self.compute_cache_for(index))
            .collect();
    }

    fn compute_cache_for(&self, index: usize) -> StaticChannelCache {
        let tag = &self.tags[index];
        let link = self.link_statics_for(tag, self.static_shadow_db[index]);
        let mut channels = vec![(
            self.config.frequency.value().to_bits(),
            self.channel_statics_for(tag, self.config.frequency),
        )];
        if let Some(plan) = &self.config.hopping {
            for &hz in &plan.channels {
                let bits = hz.to_bits();
                if channels.iter().all(|(existing, _)| *existing != bits) {
                    channels.push((bits, self.channel_statics_for(tag, Hertz(hz))));
                }
            }
        }
        StaticChannelCache { link, channels }
    }

    fn link_statics_for(&self, tag: &Tag, shadow_db: f64) -> LinkStatics {
        LinkStatics {
            d_rt: self.antenna.position().distance(tag.position).max(1e-6),
            static_loss_db: self.config.system_loss_db + shadow_db,
            base_forward_dbm: channel::forward_power(
                self.config.tx_power,
                self.antenna.gain_toward(tag.position),
                crate::units::Dbi(tag.model.gain_toward_dbi(self.incidence_angle(tag))),
                Meters(self.antenna.position().distance(tag.position)),
                self.wavelength(),
                Db(0.0),
            )
            .value(),
        }
    }

    fn channel_statics_for(&self, tag: &Tag, frequency: Hertz) -> ChannelStatics {
        let lambda = frequency.wavelength();
        let lambda_m = lambda.value();
        let ant = self.antenna.position();
        let d_rt = ant.distance(tag.position).max(1e-6);
        let f_static = Complex::new(1.0, 0.0)
            + self
                .environment
                .multipath_phasor(ant, tag.position, lambda_m);
        // The tag's incidence pattern applies on both traversals: fold it
        // into the effective RCS.
        let pattern_db =
            tag.model.gain_toward_dbi(self.incidence_angle(tag)) - tag.model.gain_dbi();
        let effective_rcs = tag.model.rcs_m2() * 10f64.powf(2.0 * pattern_db / 10.0);
        let base_backscatter_dbm = channel::backscatter_power(
            self.config.tx_power,
            self.antenna.gain_toward(tag.position),
            effective_rcs.max(1e-9),
            Meters(d_rt),
            lambda,
            Db(0.0),
        )
        .value();
        let phi_static =
            TAU * 2.0 * d_rt / lambda_m + self.config.reader_circuit_phase + tag.theta_tag;
        ChannelStatics {
            lambda_m,
            f_static,
            base_backscatter_dbm,
            phi_static,
        }
    }

    /// Fetches the statics for tag `index` on `frequency` — from the cache
    /// when allowed and populated (every scene frequency is pre-slotted at
    /// construction), recomputed from scratch otherwise. The fresh path
    /// runs the identical arithmetic, so the two are bit-interchangeable.
    fn statics_at(
        &self,
        index: usize,
        frequency: Hertz,
        use_cache: bool,
    ) -> (LinkStatics, ChannelStatics) {
        if use_cache {
            if let Some(cache) = self.cache.get(index) {
                let bits = frequency.value().to_bits();
                if let Some((_, statics)) = cache.channels.iter().find(|(b, _)| *b == bits) {
                    return (cache.link, *statics);
                }
            }
        }
        let tag = &self.tags[index];
        (
            self.link_statics_for(tag, self.static_shadow_db[index]),
            self.channel_statics_for(tag, frequency),
        )
    }

    /// Target-dependent one-way losses: returns `(extra, obstruction)` in
    /// dB, where `extra` is the full one-way loss beyond free space (static
    /// shadowing + obstruction + near-contact detuning) and `obstruction`
    /// is the blockage-only sum, which also shifts the diffracted path's
    /// phase. Computed once per observation and shared by the forward-link
    /// gate, the IC margin, and the response amplitude/phase.
    fn target_losses(
        &self,
        tag: &Tag,
        static_loss_db: f64,
        targets: &[TargetSample],
    ) -> (f64, f64) {
        let mut loss = static_loss_db;
        let mut obstruction = 0.0;
        for target in targets {
            // The effective blocking width is bounded by the first Fresnel
            // zone (≈ 9 cm here): parts of a large target beyond it do not
            // shadow the link even though they scatter.
            let obst = coupling::obstruction_db(
                target.position,
                target.radius().clamp(0.03, 0.09),
                self.antenna.position(),
                tag.position,
                self.config.obstruction_max_db,
            )
            .value();
            loss += obst;
            obstruction += obst;
            // Near-contact detuning: a lossy target hovering over the tag.
            let d = target.position.distance(tag.position);
            loss +=
                self.config.target_detuning_db / (1.0 + (d / self.config.detuning_scale_m).powi(4));
        }
        (loss, obstruction)
    }

    /// Power incident on the tag's IC, after gains, path loss, shadowing,
    /// and obstruction. Passive RFID is forward-link limited: a tag below
    /// its sensitivity does not respond at all.
    ///
    /// Tags are matched by id against the scene's cache; a tag the scene
    /// does not know is evaluated fresh with zero neighbour shadowing.
    pub fn forward_power_at(&self, tag: &Tag, targets: &[TargetSample]) -> Dbm {
        let link = match self.tag_index(tag.id) {
            Some(index) => self.cache[index].link,
            None => self.link_statics_for(tag, 0.0),
        };
        let (extra, _) = self.target_losses(tag, link.static_loss_db, targets);
        Dbm(link.base_forward_dbm - extra)
    }

    /// Angle between the reader→tag direction and the tag's plate normal
    /// (the z axis): label inlays receive/radiate best along the normal.
    fn incidence_angle(&self, tag: &Tag) -> f64 {
        let dir = self.antenna.position() - tag.position;
        let n = dir.norm();
        if n < 1e-9 {
            return 0.0;
        }
        (dir.z.abs() / n).clamp(-1.0, 1.0).acos()
    }

    /// Whether the tag can respond at time `t` with the given targets
    /// present.
    pub fn is_readable(&self, tag: &Tag, t: f64, targets: &[&dyn MovingTarget]) -> bool {
        let samples = sample_targets(targets, t);
        self.forward_power_at(tag, &samples).value() >= tag.model.sensitivity().value()
    }

    /// Noiseless complex baseband response of `tag` at time `t`.
    ///
    /// `h = A · e^{-jφ_geo} · F²` where `A` comes from the radar equation,
    /// `φ_geo = 4πd/λ + θ_T + θ_R + θ_tag`, and `F` is the one-way field
    /// factor `1 + multipath + Σ reflections + Σ cross-terms` (squared
    /// because forward and return paths both traverse it).
    pub fn response(&self, tag: &Tag, t: f64, targets: &[&dyn MovingTarget]) -> Complex {
        let samples = sample_targets(targets, t);
        self.response_with_samples(tag, &samples, t)
    }

    /// The carrier frequency in use at time `t` (hopping-aware).
    pub fn frequency_at(&self, t: f64) -> Hertz {
        match &self.config.hopping {
            Some(plan) => Hertz(plan.channel_at(t)),
            None => self.config.frequency,
        }
    }

    fn response_with_samples(&self, tag: &Tag, samples: &[TargetSample], t: f64) -> Complex {
        let (link, statics) = match self.tag_index(tag.id) {
            Some(index) => self.statics_at(index, self.frequency_at(t), true),
            None => (
                self.link_statics_for(tag, 0.0),
                self.channel_statics_for(tag, self.frequency_at(t)),
            ),
        };
        let (extra, obstruction) = self.target_losses(tag, link.static_loss_db, samples);
        self.response_from_statics(tag, &link, &statics, samples, extra, obstruction)
    }

    /// The target-dependent tail of the channel response: folds the moving
    /// targets' reflection paths and cross terms into the cached static
    /// field factor, then applies the (precomputed) radar-equation amplitude
    /// and geometric phase. `extra_db`/`obstruction_db` come from
    /// [`Scene::target_losses`] so one loss evaluation serves the forward
    /// gate, the margin, and this response.
    fn response_from_statics(
        &self,
        tag: &Tag,
        link: &LinkStatics,
        statics: &ChannelStatics,
        samples: &[TargetSample],
        extra_db: f64,
        obstruction_db: f64,
    ) -> Complex {
        let lambda_m = statics.lambda_m;
        let ant = self.antenna.position();
        let d_rt = link.d_rt;

        // One-way field factor: `1 + multipath` is cached; only the target
        // reflection paths move.
        let mut f = statics.f_static;
        for target in samples {
            let d_r_target = ant.distance(target.position);
            let d_target_t = target.position.distance(tag.position);
            let rho = channel::reflection_amplitude(
                d_rt,
                d_r_target,
                d_target_t,
                target.rcs_m2,
                self.config.reflection_cap,
            );
            let excess = TAU * (d_r_target + d_target_t - d_rt) / lambda_m;
            f = f + Complex::from_polar(rho, -excess);

            // Target × scatterer cross terms: reader→target→scatterer→tag.
            let t_aperture = (target.rcs_m2 / (4.0 * PI)).sqrt();
            for s in self.environment.scatterers() {
                let d_ts = target.position.distance(s.position).max(1e-3);
                let d_st = s.position.distance(tag.position).max(1e-3);
                let s_aperture = (s.rcs_m2 / (4.0 * PI)).sqrt();
                let amp = (d_rt * t_aperture * s_aperture / (d_r_target.max(1e-3) * d_ts * d_st))
                    .min(self.config.reflection_cap);
                let excess = TAU * (d_r_target + d_ts + d_st - d_rt) / lambda_m;
                f = f + Complex::from_polar(amp, -excess);
            }
        }

        let amplitude = 10f64.powf((statics.base_backscatter_dbm - 2.0 * extra_db) / 20.0);
        // Knife-edge diffraction: a target blocking the direct path shifts
        // its phase in proportion to the blockage depth (applied two-way).
        let phi_geo =
            statics.phi_static + 2.0 * self.config.obstruction_phase_rad_per_db * obstruction_db;
        Complex::from_polar(amplitude, -phi_geo) * f * f
    }

    /// Observes one tag at time `t`: the full measurement including noise
    /// and quantization. Returns `None` when the tag's forward link is below
    /// sensitivity (the tag stays silent).
    pub fn observe<R: Rng + ?Sized>(
        &self,
        id: TagId,
        t: f64,
        targets: &[&dyn MovingTarget],
        rng: &mut R,
    ) -> Option<TagObservation> {
        self.observe_impl(id, t, targets, rng, true)
    }

    /// Like [`Scene::observe`] but recomputes every static channel term from
    /// scratch instead of reading the per-channel cache. The two paths run
    /// identical arithmetic, so with equal RNG states they produce
    /// bit-identical observations — this method exists so tests (and anyone
    /// auditing the cache) can prove that.
    pub fn observe_uncached<R: Rng + ?Sized>(
        &self,
        id: TagId,
        t: f64,
        targets: &[&dyn MovingTarget],
        rng: &mut R,
    ) -> Option<TagObservation> {
        self.observe_impl(id, t, targets, rng, false)
    }

    fn observe_impl<R: Rng + ?Sized>(
        &self,
        id: TagId,
        t: f64,
        targets: &[&dyn MovingTarget],
        rng: &mut R,
        use_cache: bool,
    ) -> Option<TagObservation> {
        let index = self.tag_index(id)?;
        let tag = &self.tags[index];
        let (link, statics) = self.statics_at(index, self.frequency_at(t), use_cache);
        let samples = sample_targets(targets, t);
        // One loss evaluation feeds the forward-link gate, the response
        // amplitude/phase, and the IC margin below.
        let (extra, obstruction) = self.target_losses(tag, link.static_loss_db, &samples);
        let forward_dbm = link.base_forward_dbm - extra;
        if forward_dbm < tag.model.sensitivity().value() {
            return None;
        }
        let h = self.response_from_statics(tag, &link, &statics, &samples, extra, obstruction);

        // Doppler: finite difference of the noiseless reported phase
        // (within one dwell, so hops do not alias into Doppler). The two
        // endpoints share the cached statics; only the target terms move.
        const DOPPLER_DT: f64 = 1e-3;
        let samples_next = sample_targets(targets, t + DOPPLER_DT);
        let (extra_next, obstruction_next) =
            self.target_losses(tag, link.static_loss_db, &samples_next);
        let h_next = self.response_from_statics(
            tag,
            &link,
            &statics,
            &samples_next,
            extra_next,
            obstruction_next,
        );
        let dphi = wrap_to_pi((-h_next.arg()) - (-h.arg()));
        let doppler =
            dphi / (TAU * DOPPLER_DT) + noise::gaussian(rng, 0.0, self.doppler_noise_sigma());

        // Motion-coupled multipath: targets near the pad raise the jitter
        // of multipath-exposed tags.
        let presence: f64 = samples
            .iter()
            .map(|t| {
                let d = t.position.distance(tag.position);
                1.0 / (1.0 + (d / 0.25).powi(2))
            })
            .sum();
        let motion_noise = self.config.motion_multipath_gain
            * self.environment.multipath_energy(tag.position)
            * presence.min(1.5);
        // IC operating-point noise: a tag fed barely above its sensitivity
        // modulates with compressed depth and jittery phase.
        let margin = forward_dbm - tag.model.sensitivity().value();
        let power_noise = (self.config.power_noise_coeff * (-(margin - 2.0) / 4.0).exp()).min(0.4);
        // Ambient multipath jitter grows with reader range: the direct
        // path weakens as 1/d² while room reflections stay put, so the
        // multipath-to-direct ratio — and the phase jitter it causes —
        // rises with distance (the paper's Fig. 19 observation).
        let d_rt_m = self.antenna.position().distance(tag.position);
        let range_factor = (d_rt_m / 0.32).powf(1.0).clamp(0.3, 5.0);
        let phase_sigma = (self.environment.phase_noise_sigma(tag.position) + motion_noise)
            * range_factor
            + power_noise;
        let rss_sigma = (self.environment.rss_noise_sigma(tag.position) + 6.0 * motion_noise)
            * range_factor
            + 8.0 * power_noise;
        let phase = noise::quantize_phase(-h.arg() + noise::gaussian(rng, 0.0, phase_sigma));
        let rss =
            noise::quantize_rss(20.0 * h.abs().log10() + noise::gaussian(rng, 0.0, rss_sigma));
        Some(TagObservation {
            tag: id,
            time: t,
            phase,
            rss_dbm: rss,
            doppler_hz: doppler,
        })
    }

    /// Observes every readable tag at time `t` (an idealized simultaneous
    /// snapshot; the `rfid-gen2` crate provides the realistic serialized
    /// inventory on top of this).
    pub fn observe_all<R: Rng + ?Sized>(
        &self,
        t: f64,
        targets: &[&dyn MovingTarget],
        rng: &mut R,
    ) -> Vec<TagObservation> {
        self.tags
            .iter()
            .filter_map(|tag| self.observe(tag.id, t, targets, rng))
            .collect()
    }

    /// Standard deviation of the reader's Doppler estimate (Hz). Large, per
    /// the paper's observation that Doppler is too noisy to use (Fig. 2a).
    fn doppler_noise_sigma(&self) -> f64 {
        0.6
    }
}

fn sample_targets(targets: &[&dyn MovingTarget], t: f64) -> Vec<TargetSample> {
    targets.iter().filter_map(|tgt| tgt.sample(t)).collect()
}

fn wrap_to_pi(phase: f64) -> f64 {
    let mut p = phase.rem_euclid(TAU);
    if p > PI {
        p -= TAU;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::{TagArray, TagModel};
    use crate::targets::StaticTarget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Paper-default NLOS scene: 5×5 Type B plate at 6 cm pitch, antenna
    /// 32 cm behind the plate centre.
    fn nlos_scene(env: Environment) -> Scene {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
            (id.0 as f64 * 2.399) % TAU
        });
        let center = array.center();
        let antenna = ReaderAntenna::new(
            Vec3::new(center.x, center.y, -0.32),
            Vec3::new(0.0, 0.0, 1.0),
            crate::units::Dbi(8.0),
        );
        Scene::new(antenna, array.tags().to_vec(), env, SceneConfig::default())
    }

    #[test]
    fn all_tags_readable_in_default_deployment() {
        let scene = nlos_scene(Environment::free_space());
        for tag in scene.tags() {
            assert!(scene.is_readable(tag, 0.0, &[]), "{} unreadable", tag.id);
        }
    }

    #[test]
    fn static_scene_has_stable_phase() {
        let scene = nlos_scene(Environment::free_space());
        let mut rng = StdRng::seed_from_u64(3);
        let id = TagId(12);
        let obs: Vec<f64> = (0..50)
            .filter_map(|i| scene.observe(id, i as f64 * 0.02, &[], &mut rng))
            .map(|o| o.phase)
            .collect();
        assert_eq!(obs.len(), 50);
        let spread = sig_spread(&obs);
        assert!(spread < 0.02, "static phase spread {spread}");
    }

    #[test]
    fn hand_above_tag_perturbs_phase_strongly() {
        let scene = nlos_scene(Environment::free_space());
        let mut rng = StdRng::seed_from_u64(4);
        let id = TagId(12); // centre tag at (0.12, -0.12, 0)
        let base = scene
            .observe(id, 0.0, &[], &mut rng)
            .expect("readable")
            .phase;
        let hand = StaticTarget::new(Vec3::new(0.12, -0.12, 0.03), 0.02);
        let with_hand = scene
            .observe(id, 0.0, &[&hand], &mut rng)
            .expect("readable")
            .phase;
        let delta = wrap_to_pi(with_hand - base).abs();
        assert!(delta > 0.1, "phase perturbation {delta} rad too small");
    }

    #[test]
    fn hand_influence_is_local() {
        // A hand over the plate centre must perturb the centre tag much more
        // than the far corner tag — the monotonicity behind Eq. 1–5.
        let scene = nlos_scene(Environment::free_space());
        let hand = StaticTarget::new(Vec3::new(0.12, -0.12, 0.03), 0.02);
        let center = TagId(12);
        let corner = TagId(0);
        let d_center = phase_shift(&scene, center, &hand);
        let d_corner = phase_shift(&scene, corner, &hand);
        assert!(
            d_center > 2.0 * d_corner,
            "centre {d_center} vs corner {d_corner}"
        );
    }

    #[test]
    fn hand_passing_causes_rss_trough() {
        // Sweep the hand across the centre tag and check RSS dips near the
        // crossing instant (the §III-B direction-estimation signal).
        let scene = nlos_scene(Environment::free_space());
        let mut rng = StdRng::seed_from_u64(9);
        let id = TagId(12);
        let mut min_rss = f64::INFINITY;
        let mut min_t = 0.0;
        let mut edge_rss: f64 = f64::NEG_INFINITY;
        for i in 0..100 {
            let t = i as f64 * 0.02; // 2 s sweep
            let x = -0.2 + 0.64 * t / 2.0; // crosses x=0.12 at t=1.0
            let hand = StaticTarget::new(Vec3::new(x, -0.12, 0.03), 0.02);
            let obs = scene.observe(id, t, &[&hand], &mut rng).expect("readable");
            if obs.rss_dbm < min_rss {
                min_rss = obs.rss_dbm;
                min_t = t;
            }
            if i < 5 {
                edge_rss = edge_rss.max(obs.rss_dbm);
            }
        }
        assert!((min_t - 1.0).abs() < 0.4, "trough at t={min_t}, want ≈1.0");
        assert!(
            edge_rss - min_rss > 3.0,
            "trough depth {}",
            edge_rss - min_rss
        );
    }

    #[test]
    fn obstruction_matters_only_in_los_geometry() {
        // LOS: antenna above the plate (same side as the hand).
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
        let center = array.center();
        let antenna_los = ReaderAntenna::new(
            Vec3::new(center.x, center.y, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
            crate::units::Dbi(8.0),
        );
        let scene_los = Scene::new(
            antenna_los,
            array.tags().to_vec(),
            Environment::free_space(),
            SceneConfig::default(),
        );
        let tag = *scene_los.tag(TagId(12)).expect("exists");
        // Hand between antenna and tag.
        let hand = TargetSample {
            position: Vec3::new(center.x, center.y, 0.05),
            rcs_m2: 0.02,
        };
        let blocked = scene_los.forward_power_at(&tag, &[hand]).value();
        let open = scene_los.forward_power_at(&tag, &[]).value();
        assert!(open - blocked > 5.0, "LOS obstruction {}", open - blocked);

        // NLOS: antenna behind the plate — the same hand costs only the
        // near-contact detuning, far less than the LOS blockage.
        let scene_nlos = nlos_scene(Environment::free_space());
        let tag_n = *scene_nlos.tag(TagId(12)).expect("exists");
        let blocked_n = scene_nlos.forward_power_at(&tag_n, &[hand]).value();
        let open_n = scene_nlos.forward_power_at(&tag_n, &[]).value();
        assert!(open_n - blocked_n < 4.0, "NLOS {}", open_n - blocked_n);
        assert!(
            (open - blocked) > (open_n - blocked_n) + 4.0,
            "LOS must lose far more than NLOS"
        );
    }

    #[test]
    fn low_tx_power_reduces_perturbation_distinctness() {
        // At low TX power the hand-induced RSS dip stays, but forward margin
        // shrinks; with shadowing some tags drop out entirely.
        let mut scene = nlos_scene(Environment::free_space());
        scene.set_tx_power(Dbm(10.0));
        let tag = *scene.tag(TagId(0)).expect("exists");
        let p = scene.forward_power_at(&tag, &[]).value();
        assert!(p < 0.0, "forward power should be marginal, got {p}");
    }

    #[test]
    fn observation_fields_quantized() {
        let scene = nlos_scene(Environment::office_location(1));
        let mut rng = StdRng::seed_from_u64(5);
        let obs = scene
            .observe(TagId(7), 0.0, &[], &mut rng)
            .expect("readable");
        assert!(obs.phase >= 0.0 && obs.phase < TAU);
        let rss_steps = obs.rss_dbm / noise::RSS_STEP_DB;
        assert!((rss_steps - rss_steps.round()).abs() < 1e-9);
    }

    #[test]
    fn unknown_tag_yields_none() {
        let scene = nlos_scene(Environment::free_space());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(scene.observe(TagId(999), 0.0, &[], &mut rng).is_none());
    }

    #[test]
    fn observe_all_returns_all_readable() {
        let scene = nlos_scene(Environment::office_location(2));
        let mut rng = StdRng::seed_from_u64(6);
        let obs = scene.observe_all(0.0, &[], &mut rng);
        assert_eq!(obs.len(), 25);
    }

    #[test]
    fn tag_diversity_spreads_static_phase() {
        // Different θ_tag → per-tag central phases spread over [0, 2π)
        // (paper Fig. 4).
        let scene = nlos_scene(Environment::free_space());
        let mut rng = StdRng::seed_from_u64(8);
        let phases: Vec<f64> = scene
            .observe_all(0.0, &[], &mut rng)
            .iter()
            .map(|o| o.phase)
            .collect();
        let lo = phases.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(hi - lo > 2.0, "phase spread {}", hi - lo);
    }

    fn phase_shift(scene: &Scene, id: TagId, hand: &StaticTarget) -> f64 {
        let tag = scene.tag(id).expect("exists");
        let base = -scene.response(tag, 0.0, &[]).arg();
        let with = -scene.response(tag, 0.0, &[hand]).arg();
        wrap_to_pi(with - base).abs()
    }

    fn sig_spread(values: &[f64]) -> f64 {
        // Spread on the circle: max pairwise wrapped distance.
        let mut max_d: f64 = 0.0;
        for &a in values {
            for &b in values {
                max_d = max_d.max(wrap_to_pi(a - b).abs());
            }
        }
        max_d
    }
}

#[cfg(test)]
mod cache_tests {
    use super::*;
    use crate::tags::{TagArray, TagModel};
    use crate::targets::StaticTarget;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scene_with(hopping: Option<HoppingPlan>, env: Environment) -> Scene {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| {
            (id.0 as f64 * 2.399) % TAU
        });
        let c = array.center();
        let antenna = ReaderAntenna::new(
            Vec3::new(c.x, c.y, -0.32),
            Vec3::new(0.0, 0.0, 1.0),
            crate::units::Dbi(8.0),
        );
        Scene::new(
            antenna,
            array.tags().to_vec(),
            env,
            SceneConfig {
                hopping,
                ..SceneConfig::default()
            },
        )
    }

    /// Cached and uncached observations must agree bit-for-bit: same RNG
    /// seed, same tag, same moving target, compared across the full
    /// observation struct (phase, RSS, Doppler).
    #[test]
    fn cached_observations_match_uncached_exactly() {
        let scene = scene_with(None, Environment::office_location(4));
        let mut rng_cached = StdRng::seed_from_u64(77);
        let mut rng_fresh = rng_cached.clone();
        for i in 0..40 {
            let t = i as f64 * 0.05;
            let hand = StaticTarget::new(Vec3::new(-0.1 + 0.01 * i as f64, -0.12, 0.03), 0.02);
            for id in [TagId(0), TagId(12), TagId(24)] {
                let cached = scene.observe(id, t, &[&hand], &mut rng_cached);
                let fresh = scene.observe_uncached(id, t, &[&hand], &mut rng_fresh);
                assert_eq!(cached, fresh, "tag {id} at t={t}");
            }
        }
    }

    /// With a hopping plan, each dwell selects a different per-channel
    /// cache slot; observations across dwell boundaries must still match
    /// the from-scratch computation exactly.
    #[test]
    fn hopping_scene_cache_is_exact_across_dwell_boundaries() {
        let scene = scene_with(Some(HoppingPlan::fcc()), Environment::office_location(2));
        let plan = scene.config().hopping.clone().expect("plan set");
        let mut rng_cached = StdRng::seed_from_u64(5);
        let mut rng_fresh = rng_cached.clone();
        let mut channels_seen = std::collections::HashSet::new();
        // Samples straddle many dwells (dwell = 0.2 s, samples every 0.13 s).
        for i in 0..40 {
            let t = i as f64 * 0.13;
            channels_seen.insert(scene.frequency_at(t).value().to_bits());
            let cached = scene.observe(TagId(12), t, &[], &mut rng_cached);
            let fresh = scene.observe_uncached(TagId(12), t, &[], &mut rng_fresh);
            assert_eq!(cached, fresh, "t={t}");
        }
        assert!(
            channels_seen.len() > 5,
            "test must actually cross dwells: {} channels",
            channels_seen.len()
        );
        // Every hopping channel has a pre-built cache slot: find a dwell
        // using each channel and hold the two paths against each other.
        for &hz in &plan.channels {
            let t = (0..500)
                .map(|k| k as f64 * plan.dwell_s + 0.01)
                .find(|&t| plan.channel_at(t) == hz)
                .expect("every channel appears within one plan cycle");
            let mut a = StdRng::seed_from_u64(9);
            let mut b = a.clone();
            assert_eq!(
                scene.observe(TagId(12), t, &[], &mut a),
                scene.observe_uncached(TagId(12), t, &[], &mut b),
            );
        }
    }

    /// Changing the transmit power must invalidate the cached base powers:
    /// the rebuilt cache agrees with the from-scratch path at the new
    /// power, and the observation actually changed.
    #[test]
    fn set_tx_power_rebuilds_cache() {
        let mut scene = scene_with(None, Environment::free_space());
        let rng = StdRng::seed_from_u64(11);
        let before = scene
            .observe(TagId(12), 0.0, &[], &mut rng.clone())
            .expect("readable");
        scene.set_tx_power(Dbm(24.0));
        let after_cached = scene.observe(TagId(12), 0.0, &[], &mut rng.clone());
        let after_fresh = scene.observe_uncached(TagId(12), 0.0, &[], &mut rng.clone());
        assert_eq!(after_cached, after_fresh);
        let after = after_cached.expect("still readable at 24 dBm");
        assert!(
            (after.rss_dbm - before.rss_dbm).abs() > 3.0,
            "a 6 dB TX drop must move RSS: {} vs {}",
            before.rss_dbm,
            after.rss_dbm
        );
    }

    /// The noiseless response path (used by calibration) also goes through
    /// the cache; it must be deterministic and match across scene clones.
    #[test]
    fn response_is_cache_stable_across_clones() {
        let scene = scene_with(Some(HoppingPlan::fcc()), Environment::office_location(1));
        let clone = scene.clone();
        let tag = *scene.tag(TagId(7)).expect("exists");
        let hand = StaticTarget::new(Vec3::new(0.1, -0.1, 0.04), 0.02);
        for i in 0..10 {
            let t = i as f64 * 0.21;
            let a = scene.response(&tag, t, &[&hand]);
            let b = clone.response(&tag, t, &[&hand]);
            assert_eq!(a, b);
        }
    }
}

#[cfg(test)]
mod hopping_tests {
    use super::*;
    use crate::tags::{TagArray, TagModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scene_with(hopping: Option<HoppingPlan>) -> Scene {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
        let c = array.center();
        let antenna = ReaderAntenna::new(
            Vec3::new(c.x, c.y, -0.32),
            Vec3::new(0.0, 0.0, 1.0),
            crate::units::Dbi(8.0),
        );
        Scene::new(
            antenna,
            array.tags().to_vec(),
            Environment::free_space(),
            SceneConfig {
                hopping,
                ..SceneConfig::default()
            },
        )
    }

    #[test]
    fn fcc_plan_cycles_channels() {
        let plan = HoppingPlan::fcc();
        assert_eq!(plan.channels.len(), 50);
        let c0 = plan.channel_at(0.0);
        let c1 = plan.channel_at(0.25);
        assert_ne!(c0, c1, "dwell boundary must hop");
        // Hops stride across the band, not to the neighbouring channel.
        assert!((c1 - c0).abs() > 2e6, "stride {}", (c1 - c0).abs());
        // Full cycle returns to the first channel.
        assert_eq!(plan.channel_at(50.0 * 0.2), c0);
    }

    #[test]
    fn hopping_makes_static_phase_jump_across_dwells() {
        let fixed = scene_with(None);
        let hopping = scene_with(Some(HoppingPlan::fcc()));
        let mut rng = StdRng::seed_from_u64(1);
        let spread = |scene: &Scene, rng: &mut StdRng| {
            let phases: Vec<f64> = (0..40)
                .filter_map(|i| scene.observe(TagId(12), i as f64 * 0.1, &[], rng))
                .map(|o| o.phase)
                .collect();
            let mut max_d = 0.0f64;
            for pair in phases.windows(2) {
                let mut d = (pair[1] - pair[0]).rem_euclid(TAU);
                if d > PI {
                    d -= TAU;
                }
                max_d = max_d.max(d.abs());
            }
            max_d
        };
        let fixed_spread = spread(&fixed, &mut rng);
        let hopping_spread = spread(&hopping, &mut rng);
        assert!(fixed_spread < 0.05, "fixed-carrier static phase is stable");
        // At 32 cm the round trip is only ≈2 wavelengths, so even a
        // 25 MHz hop shifts phase by ≈0.3 rad — small in absolute terms
        // but an order of magnitude above the static floor, and fatal for
        // the accumulative-difference image.
        assert!(
            hopping_spread > 0.1,
            "hopping must break phase continuity: {hopping_spread}"
        );
    }

    #[test]
    fn within_one_dwell_phase_is_stable() {
        let hopping = scene_with(Some(HoppingPlan::fcc()));
        let mut rng = StdRng::seed_from_u64(2);
        // All samples inside the first 0.2 s dwell.
        let phases: Vec<f64> = (0..10)
            .filter_map(|i| hopping.observe(TagId(12), 0.01 + i as f64 * 0.018, &[], &mut rng))
            .map(|o| o.phase)
            .collect();
        for pair in phases.windows(2) {
            let mut d = (pair[1] - pair[0]).rem_euclid(TAU);
            if d > PI {
                d -= TAU;
            }
            assert!(d.abs() < 0.05, "intra-dwell jump {d}");
        }
    }
}
