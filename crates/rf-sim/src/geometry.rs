//! 3-D vectors and the small amount of geometry the channel model needs.
//!
//! Coordinate convention used throughout the workspace (matching the paper's
//! Fig. 3): the tag plane lies in the `x`–`y` plane at `z = 0`, `x` runs along
//! array columns (lateral), `y` along rows, and `z` points away from the
//! plane toward the user's hand. The reader antenna sits at positive or
//! negative `z` depending on the LOS / NLOS scenario.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point or displacement in 3-D space (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// Lateral coordinate (array columns).
    pub x: f64,
    /// Vertical-on-plane coordinate (array rows).
    pub y: f64,
    /// Out-of-plane coordinate (toward the hand).
    pub z: f64,
}

impl Vec3 {
    /// The origin / zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Distance to another point.
    pub fn distance(self, rhs: Vec3) -> f64 {
        (self - rhs).norm()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalize the zero vector");
        self / n
    }

    /// Angle in radians between this vector and `rhs`, in `[0, π]`.
    ///
    /// # Panics
    ///
    /// Panics if either vector is zero.
    pub fn angle_to(self, rhs: Vec3) -> f64 {
        let cos = self.normalized().dot(rhs.normalized()).clamp(-1.0, 1.0);
        cos.acos()
    }

    /// Shortest distance from point `p` to the segment `a`–`b`.
    pub fn point_segment_distance(p: Vec3, a: Vec3, b: Vec3) -> f64 {
        let ab = b - a;
        let len2 = ab.dot(ab);
        if len2 < 1e-18 {
            return p.distance(a);
        }
        let t = ((p - a).dot(ab) / len2).clamp(0.0, 1.0);
        p.distance(a + ab * t)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A complex number for baseband channel phasors.
///
/// Kept minimal on purpose — the channel model only needs addition,
/// multiplication, magnitude, and argument.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero phasor.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number from rectangular parts.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Creates a phasor `amplitude · e^{jφ}`.
    pub fn from_polar(amplitude: f64, phase: f64) -> Self {
        Self {
            re: amplitude * phase.cos(),
            im: amplitude * phase.sin(),
        }
    }

    /// Magnitude |z|.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn norm_and_distance() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(Vec3::ZERO.distance(v), 5.0);
    }

    #[test]
    fn dot_and_cross() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(x.dot(y), 0.0);
        let z = x.cross(y);
        assert_eq!(z, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn normalized_unit_length() {
        let v = Vec3::new(1.0, 2.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot normalize the zero vector")]
    fn normalize_zero_panics() {
        Vec3::ZERO.normalized();
    }

    #[test]
    fn angle_between_axes() {
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = Vec3::new(0.0, 2.0, 0.0);
        assert!((x.angle_to(y) - FRAC_PI_2).abs() < 1e-12);
        assert!((x.angle_to(-x) - PI).abs() < 1e-12);
        assert!(x.angle_to(x).abs() < 1e-12);
    }

    #[test]
    fn segment_distance_inside_and_outside() {
        let a = Vec3::ZERO;
        let b = Vec3::new(10.0, 0.0, 0.0);
        // Perpendicular foot inside the segment.
        assert!((Vec3::point_segment_distance(Vec3::new(5.0, 3.0, 0.0), a, b) - 3.0).abs() < 1e-12);
        // Beyond endpoint: distance to endpoint.
        assert!(
            (Vec3::point_segment_distance(Vec3::new(13.0, 4.0, 0.0), a, b) - 5.0).abs() < 1e-12
        );
        // Degenerate segment.
        assert_eq!(
            Vec3::point_segment_distance(Vec3::new(0.0, 2.0, 0.0), a, a),
            2.0
        );
    }

    #[test]
    fn complex_polar_round_trip() {
        let z = Complex::from_polar(2.0, 1.2);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn complex_multiplication_adds_phases() {
        let a = Complex::from_polar(2.0, 0.5);
        let b = Complex::from_polar(3.0, 0.7);
        let c = a * b;
        assert!((c.abs() - 6.0).abs() < 1e-12);
        assert!((c.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn complex_addition_of_opposites_cancels() {
        let a = Complex::from_polar(1.0, 0.0);
        let b = Complex::from_polar(1.0, PI);
        assert!((a + b).abs() < 1e-12);
    }

    #[test]
    fn conjugate_negates_arg() {
        let z = Complex::from_polar(1.5, 0.9);
        assert!((z.conj().arg() + 0.9).abs() < 1e-12);
    }
}
