//! Inter-tag coupling (shadow effect) and path obstruction.
//!
//! A passive tag re-radiates part of the power incident on it, disturbing the
//! electric field of its neighbours; the paper studies this as the *shadow
//! effect* (§IV-B). The strength is governed by the aggressor's unmodulated
//! radar scattering cross-section (RCS), the tag-to-tag distance relative to
//! the near-field boundary λ/2π ≈ 5.2 cm, and the relative antenna facing:
//!
//! - two tags 3 cm apart facing the *same* way suppress the victim strongly
//!   (Fig. 11(b));
//! - *opposite* facing nearly removes the interference (Fig. 11(c));
//! - beyond ≈ 12 cm (the far-field boundary 2λ/2π) it is negligible
//!   (Fig. 11(d)).
//!
//! Within an array, shadows from every populated tag accumulate on the
//! forward link of a victim behind the plate (Fig. 12), scaling with the tag
//! model's RCS — which is why the paper recommends the small-RCS Impinj
//! AZ-E53 ("Tag B").

use crate::geometry::Vec3;
use crate::tags::{Facing, Tag};
use crate::units::{Db, Meters};
use std::f64::consts::TAU;

/// Reference RCS (m²) at which [`pair_shadow_db`] reaches its nominal
/// maximum; equal to the paper's worst tag (Type D).
const REFERENCE_RCS_M2: f64 = 0.0110;

/// Peak same-facing shadow at contact distance for the reference RCS, dB.
const MAX_PAIR_SHADOW_DB: f64 = 22.0;

/// Residual coupling factor when facings are opposite.
const OPPOSITE_FACING_FACTOR: f64 = 0.08;

/// Shadow contribution scale for in-array forward-link blockage,
/// dB per (m² of RCS), calibrated so three 5-row columns of Type D tags
/// attenuate a victim behind the plate by ≈ 20 dB (paper Fig. 12).
const ARRAY_SHADOW_DB_PER_M2: f64 = 230.0;

/// Lateral decay scale (m) of a tag's shadow around the blocked line of
/// sight.
const ARRAY_SHADOW_LATERAL_SCALE: f64 = 0.10;

/// Near-field boundary λ/2π (≈ 5.2 cm at 922.38 MHz), inside which coupling
/// is strongest.
pub fn near_field_boundary(wavelength: Meters) -> Meters {
    Meters(wavelength.value() / TAU)
}

/// Far-field boundary 2λ/2π (≈ 10.4 cm; the paper observes interference is
/// negligible past ≈ 12 cm).
pub fn far_field_boundary(wavelength: Meters) -> Meters {
    Meters(2.0 * wavelength.value() / TAU)
}

/// Distance falloff of near-field coupling: ≈ 1 inside the near field,
/// rolling off steeply past it (fourth-order), ≈ 0.03 at the far-field
/// boundary ×2.
fn coupling_falloff(distance_m: f64, wavelength: Meters) -> f64 {
    let nf = near_field_boundary(wavelength).value();
    1.0 / (1.0 + (distance_m / nf).powi(4))
}

/// Power suppression (dB, ≥ 0) that `aggressor` inflicts on `victim` when
/// both are in free space — the paper's tag-pair experiment (Fig. 11).
///
/// The suppression grows with the aggressor's RCS, decays with distance on
/// the near-field scale, and nearly vanishes for opposite facings.
pub fn pair_shadow_db(aggressor: &Tag, victim: &Tag, wavelength: Meters) -> Db {
    let d = aggressor.position.distance(victim.position);
    let facing_factor = if aggressor.facing == victim.facing {
        1.0
    } else {
        OPPOSITE_FACING_FACTOR
    };
    let rcs_factor = aggressor.model.rcs_m2() / REFERENCE_RCS_M2;
    Db(MAX_PAIR_SHADOW_DB * facing_factor * rcs_factor * coupling_falloff(d, wavelength))
}

/// Total forward-link suppression (dB, ≥ 0) that a populated plate inflicts
/// on a victim at `victim_pos` illuminated from `antenna_pos` — the paper's
/// array experiment (Fig. 12).
///
/// Each array tag contributes a shadow proportional to its RCS, decaying
/// with its lateral distance from the antenna→victim line of sight. Tags
/// facing the same way as `victim_facing` shadow fully; opposite-facing tags
/// contribute the residual factor.
pub fn array_shadow_db(
    array_tags: &[Tag],
    victim_pos: Vec3,
    victim_facing: Facing,
    antenna_pos: Vec3,
) -> Db {
    let mut total = 0.0;
    for tag in array_tags {
        let lateral = Vec3::point_segment_distance(tag.position, antenna_pos, victim_pos);
        let geom = 1.0 / (1.0 + (lateral / ARRAY_SHADOW_LATERAL_SCALE).powi(2));
        let facing_factor = if tag.facing == victim_facing {
            1.0
        } else {
            OPPOSITE_FACING_FACTOR
        };
        total += ARRAY_SHADOW_DB_PER_M2 * tag.model.rcs_m2() * facing_factor * geom;
    }
    Db(total)
}

/// Attenuation (dB, ≥ 0) of a direct path from `from` to `to` caused by an
/// absorbing obstacle of effective radius `radius` centred at `obstacle`
/// (used for the hand/arm crossing reader–tag LOS paths in the ceiling-
/// antenna scenario).
///
/// Attenuation is `max_db` when the path passes through the obstacle centre
/// and falls off as a Gaussian of the miss distance. An obstacle whose
/// perpendicular foot falls outside the open segment does not obstruct at
/// all — a hand hovering just *beyond* a tag (the NLOS geometry) casts no
/// shadow on the link arriving from the other side.
pub fn obstruction_db(obstacle: Vec3, radius: f64, from: Vec3, to: Vec3, max_db: f64) -> Db {
    assert!(radius > 0.0, "obstacle radius must be positive");
    let ab = to - from;
    let len2 = ab.dot(ab);
    if len2 < 1e-18 {
        return Db(0.0);
    }
    let t = (obstacle - from).dot(ab) / len2;
    if !(0.0..=1.0).contains(&t) {
        return Db(0.0);
    }
    // Betweenness along the dominant propagation axis: an obstacle whose
    // lateral projection falls on the segment but which sits *beyond* both
    // endpoints along the main axis (a hand hovering past the tag plane,
    // seen from an antenna behind it) casts no shadow.
    let axis = if ab.z.abs() >= ab.x.abs() && ab.z.abs() >= ab.y.abs() {
        (from.z, to.z, obstacle.z)
    } else if ab.x.abs() >= ab.y.abs() {
        (from.x, to.x, obstacle.x)
    } else {
        (from.y, to.y, obstacle.y)
    };
    let (lo, hi) = if axis.0 <= axis.1 {
        (axis.0, axis.1)
    } else {
        (axis.1, axis.0)
    };
    if axis.2 < lo || axis.2 > hi {
        return Db(0.0);
    }
    let miss = obstacle.distance(from + ab * t);
    Db(max_db * (-(miss / radius) * (miss / radius)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tags::{TagId, TagModel};
    use crate::units::CARRIER_FREQUENCY;

    fn lambda() -> Meters {
        CARRIER_FREQUENCY.wavelength()
    }

    fn tag_at(x_cm: f64, facing: Facing, model: TagModel) -> Tag {
        Tag::new(
            TagId(0),
            Vec3::new(x_cm / 100.0, 0.0, 0.0),
            facing,
            model,
            0.0,
        )
    }

    #[test]
    fn boundaries_match_paper_numbers() {
        let nf = near_field_boundary(lambda()).value();
        let ff = far_field_boundary(lambda()).value();
        assert!((nf - 0.052).abs() < 0.002, "near field {nf}");
        assert!((ff - 0.104).abs() < 0.004, "far field {ff}");
    }

    #[test]
    fn same_facing_close_pair_shadows_strongly() {
        let victim = tag_at(0.0, Facing::Front, TagModel::TypeD);
        let aggressor = tag_at(3.0, Facing::Front, TagModel::TypeD);
        let s = pair_shadow_db(&aggressor, &victim, lambda()).value();
        assert!(s > 10.0, "shadow {s} dB");
    }

    #[test]
    fn opposite_facing_nearly_removes_interference() {
        let victim = tag_at(0.0, Facing::Front, TagModel::TypeD);
        let same = tag_at(3.0, Facing::Front, TagModel::TypeD);
        let opp = tag_at(3.0, Facing::Back, TagModel::TypeD);
        let s_same = pair_shadow_db(&same, &victim, lambda()).value();
        let s_opp = pair_shadow_db(&opp, &victim, lambda()).value();
        assert!(s_opp < s_same / 5.0, "same {s_same} opp {s_opp}");
        assert!(s_opp < 2.5, "opposite-facing shadow {s_opp} dB");
    }

    #[test]
    fn shadow_negligible_beyond_12cm() {
        let victim = tag_at(0.0, Facing::Front, TagModel::TypeD);
        let far = tag_at(13.0, Facing::Front, TagModel::TypeD);
        let s = pair_shadow_db(&far, &victim, lambda()).value();
        assert!(s < 1.0, "far shadow {s} dB");
    }

    #[test]
    fn shadow_decreases_monotonically_with_distance() {
        let victim = tag_at(0.0, Facing::Front, TagModel::TypeA);
        let mut prev = f64::INFINITY;
        for d in [3.0, 6.0, 9.0, 12.0, 15.0] {
            let aggressor = tag_at(d, Facing::Front, TagModel::TypeA);
            let s = pair_shadow_db(&aggressor, &victim, lambda()).value();
            assert!(s < prev, "not monotone at {d} cm");
            prev = s;
        }
    }

    #[test]
    fn small_rcs_tag_shadows_less() {
        let victim = tag_at(0.0, Facing::Front, TagModel::TypeB);
        let big = tag_at(3.0, Facing::Front, TagModel::TypeD);
        let small = tag_at(3.0, Facing::Front, TagModel::TypeB);
        let s_big = pair_shadow_db(&big, &victim, lambda()).value();
        let s_small = pair_shadow_db(&small, &victim, lambda()).value();
        assert!(s_small < s_big / 5.0);
    }

    #[test]
    fn array_shadow_matches_fig12_scale() {
        // 3 columns × 5 rows of Type D, 6 cm pitch, victim behind the plate
        // centre, antenna 50 cm in front: paper measures ≈ 20 dB.
        let mut tags = Vec::new();
        for r in 0..5 {
            for c in 0..3 {
                tags.push(Tag::new(
                    TagId((r * 3 + c) as u64),
                    Vec3::new((c as f64 - 1.0) * 0.06, (r as f64 - 2.0) * 0.06, 0.0),
                    Facing::Front,
                    TagModel::TypeD,
                    0.0,
                ));
            }
        }
        let victim_pos = Vec3::new(0.0, 0.0, -0.02);
        let antenna_pos = Vec3::new(0.0, 0.0, 0.5);
        let s = array_shadow_db(&tags, victim_pos, Facing::Front, antenna_pos).value();
        assert!(s > 12.0 && s < 30.0, "Type D 3-col shadow {s} dB");

        // Same geometry with Type B: paper measures ≈ 2 dB.
        let tags_b: Vec<Tag> = tags
            .iter()
            .map(|t| Tag::new(t.id, t.position, t.facing, TagModel::TypeB, 0.0))
            .collect();
        let s_b = array_shadow_db(&tags_b, victim_pos, Facing::Front, antenna_pos).value();
        assert!(s_b < 4.0, "Type B 3-col shadow {s_b} dB");
    }

    #[test]
    fn array_shadow_grows_with_population() {
        let antenna_pos = Vec3::new(0.0, 0.0, 0.5);
        let victim_pos = Vec3::new(0.0, 0.0, -0.02);
        let mut prev = 0.0;
        for rows in 1..=5 {
            let tags: Vec<Tag> = (0..rows)
                .map(|r| {
                    Tag::new(
                        TagId(r as u64),
                        Vec3::new(0.0, (r as f64 - rows as f64 / 2.0) * 0.06, 0.0),
                        Facing::Front,
                        TagModel::TypeA,
                        0.0,
                    )
                })
                .collect();
            let s = array_shadow_db(&tags, victim_pos, Facing::Front, antenna_pos).value();
            assert!(s > prev, "shadow should grow with rows ({rows})");
            prev = s;
        }
    }

    #[test]
    fn obstruction_peaks_on_path_and_decays() {
        let from = Vec3::new(0.0, 0.0, 1.0);
        let to = Vec3::ZERO;
        let on_path = obstruction_db(Vec3::new(0.0, 0.0, 0.5), 0.05, from, to, 12.0);
        assert!((on_path.value() - 12.0).abs() < 1e-9);
        let off_path = obstruction_db(Vec3::new(0.2, 0.0, 0.5), 0.05, from, to, 12.0);
        assert!(off_path.value() < 0.1);
    }

    #[test]
    #[should_panic(expected = "obstacle radius must be positive")]
    fn obstruction_rejects_zero_radius() {
        obstruction_db(Vec3::ZERO, 0.0, Vec3::ZERO, Vec3::ZERO, 1.0);
    }
}
