//! Link-budget primitives for backscatter channels.
//!
//! Free-space path loss, the Friis forward link that powers the tag IC
//! (passive RFID is *forward-link limited*, §IV-B3), and the radar-equation
//! backscatter return that sets the RSS the reader reports.

use crate::units::{Db, Dbi, Dbm, Meters};
use std::f64::consts::PI;

/// Fraction of a tag's unmodulated RCS that appears in the modulated
/// backscatter sidebands (ASK modulation depth losses).
pub const MODULATION_EFFICIENCY: f64 = 0.5;

/// One-way free-space path loss `20·log10(4πd/λ)` in dB.
///
/// # Panics
///
/// Panics if distance or wavelength is not positive.
///
/// ```
/// use rf_sim::channel::free_space_path_loss;
/// use rf_sim::units::Meters;
/// let l = free_space_path_loss(Meters(2.0), Meters(0.325));
/// assert!((l.value() - 37.8).abs() < 0.2);
/// ```
pub fn free_space_path_loss(distance: Meters, wavelength: Meters) -> Db {
    assert!(distance.value() > 0.0, "distance must be positive");
    assert!(wavelength.value() > 0.0, "wavelength must be positive");
    Db(20.0 * (4.0 * PI * distance.value() / wavelength.value()).log10())
}

/// Power incident on the tag antenna (Friis): the forward link that must
/// exceed the tag IC's sensitivity for the tag to respond.
pub fn forward_power(
    tx_power: Dbm,
    reader_gain: Dbi,
    tag_gain: Dbi,
    distance: Meters,
    wavelength: Meters,
    extra_loss: Db,
) -> Dbm {
    tx_power + reader_gain + tag_gain - free_space_path_loss(distance, wavelength) - extra_loss
}

/// Backscattered power at the reader via the radar equation:
///
/// ```text
/// P_rx = P_tx · G_r² · λ² · σ_mod / ((4π)³ · d⁴)
/// ```
///
/// with `σ_mod = rcs · MODULATION_EFFICIENCY`. Two-way extra losses
/// (shadowing, obstruction) are applied twice.
///
/// # Panics
///
/// Panics if `rcs_m2`, `distance`, or `wavelength` is not positive.
pub fn backscatter_power(
    tx_power: Dbm,
    reader_gain: Dbi,
    rcs_m2: f64,
    distance: Meters,
    wavelength: Meters,
    one_way_extra_loss: Db,
) -> Dbm {
    assert!(rcs_m2 > 0.0, "RCS must be positive");
    assert!(distance.value() > 0.0, "distance must be positive");
    assert!(wavelength.value() > 0.0, "wavelength must be positive");
    let p_tx_w = tx_power.to_watts();
    let g = reader_gain.linear();
    let lambda = wavelength.value();
    let d = distance.value();
    let sigma = rcs_m2 * MODULATION_EFFICIENCY;
    let p_rx_w = p_tx_w * g * g * lambda * lambda * sigma / ((4.0 * PI).powi(3) * d.powi(4));
    Dbm::from_watts(p_rx_w) - Db(2.0 * one_way_extra_loss.value())
}

/// Distance scale (m) of the near-field emphasis in
/// [`reflection_amplitude`]: a scatterer couples strongly to a tag only
/// within roughly the reactive near-field region. The paper observes the
/// same cut-off behaviourally: accuracy holds while the hand stays within
/// ≈ 5 cm of the plate and degrades beyond (§VI).
pub const REFLECTION_NEARFIELD_SCALE: f64 = 0.048;

/// Relative amplitude of the reflection path reader→target→tag compared to
/// the direct reader→tag path, following the virtual-transmitter model: the
/// target re-radiates with effective aperture `sqrt(σ/4π)`.
///
/// `d_rt`, `d_r_target`, `d_target_t` are the direct, reader-to-target, and
/// target-to-tag distances. On top of the far-field `1/d` spreading, the
/// coupling into the tag decays on the near-field scale
/// [`REFLECTION_NEARFIELD_SCALE`] — a hand 3 cm over a tag is a powerful
/// virtual transmitter, the same hand 20 cm up is nearly invisible. The
/// amplitude is capped at `cap` to keep the near-contact geometry finite.
pub fn reflection_amplitude(
    d_rt: f64,
    d_r_target: f64,
    d_target_t: f64,
    target_rcs_m2: f64,
    cap: f64,
) -> f64 {
    let aperture = (target_rcs_m2 / (4.0 * PI)).sqrt();
    let d_tt = d_target_t.max(1e-3);
    let nearfield = 1.0 / (1.0 + (d_tt / REFLECTION_NEARFIELD_SCALE).powi(2));
    (d_rt * aperture * nearfield / (d_r_target.max(1e-3) * d_tt)).min(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LAMBDA: Meters = Meters(0.325);

    #[test]
    fn path_loss_grows_6db_per_doubling() {
        let l1 = free_space_path_loss(Meters(1.0), LAMBDA).value();
        let l2 = free_space_path_loss(Meters(2.0), LAMBDA).value();
        assert!((l2 - l1 - 6.02).abs() < 0.01);
    }

    #[test]
    fn forward_power_at_half_meter_powers_tag() {
        // Paper deployment: 30 dBm TX, 8 dBi reader antenna, ~2 dBi tag,
        // 50 cm — comfortably above a −11.5 dBm IC sensitivity.
        let p = forward_power(Dbm(30.0), Dbi(8.0), Dbi(2.0), Meters(0.5), LAMBDA, Db(0.0));
        assert!(p.value() > 0.0, "forward power {p}");
    }

    #[test]
    fn forward_link_fails_at_low_power_and_long_range() {
        let p = forward_power(Dbm(15.0), Dbi(8.0), Dbi(2.0), Meters(3.0), LAMBDA, Db(0.0));
        assert!(p.value() < -11.5, "should be below sensitivity: {p}");
    }

    #[test]
    fn backscatter_rss_matches_paper_anchor() {
        // Paper Fig. 11 setup: tag 2 m from the antenna reads ≈ −41 dBm.
        let p = backscatter_power(
            Dbm(30.0),
            Dbi(8.0),
            crate::tags::TagModel::TypeB.rcs_m2(),
            Meters(2.0),
            LAMBDA,
            Db(0.0),
        );
        assert!(
            (p.value() - (-41.0)).abs() < 6.0,
            "RSS at 2 m: {p} (paper ≈ −41 dBm)"
        );
    }

    #[test]
    fn backscatter_falls_12db_per_distance_doubling() {
        let p1 = backscatter_power(Dbm(30.0), Dbi(8.0), 0.001, Meters(1.0), LAMBDA, Db(0.0));
        let p2 = backscatter_power(Dbm(30.0), Dbi(8.0), 0.001, Meters(2.0), LAMBDA, Db(0.0));
        assert!((p1.value() - p2.value() - 12.04).abs() < 0.05);
    }

    #[test]
    fn extra_loss_applied_twice_on_backscatter() {
        let base = backscatter_power(Dbm(30.0), Dbi(8.0), 0.001, Meters(1.0), LAMBDA, Db(0.0));
        let lossy = backscatter_power(Dbm(30.0), Dbi(8.0), 0.001, Meters(1.0), LAMBDA, Db(3.0));
        assert!((base.value() - lossy.value() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reflection_amplitude_strong_near_tag() {
        // Hand (σ ≈ 0.02 m²) 3 cm above a tag, NLOS antenna 32 cm behind.
        let rho = reflection_amplitude(0.32, 0.35, 0.03, 0.02, 2.0);
        assert!(rho > 0.5, "near-tag reflection {rho}");
        // Same hand 30 cm away laterally: weak.
        let rho_far = reflection_amplitude(0.32, 0.35, 0.30, 0.02, 2.0);
        assert!(rho_far < 0.15, "far reflection {rho_far}");
    }

    #[test]
    fn reflection_amplitude_capped() {
        let rho = reflection_amplitude(0.32, 0.35, 1e-9, 0.02, 2.0);
        assert_eq!(rho, 2.0);
    }

    #[test]
    #[should_panic(expected = "distance must be positive")]
    fn path_loss_rejects_zero_distance() {
        free_space_path_loss(Meters(0.0), LAMBDA);
    }
}
