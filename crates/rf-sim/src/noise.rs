//! Measurement noise and reader quantization.
//!
//! The Impinj Speedway reports phase in 4096 steps over 2π (≈ 0.0015 rad,
//! the resolution the paper quotes in §III-A) and RSS in 0.5 dB steps. On
//! top of quantization, every observation carries Gaussian phase/RSS noise
//! whose magnitude depends on the tag's location (the *deviation bias* of
//! §III-A2).

use rand::Rng;
use std::f64::consts::TAU;

/// Phase quantization step of the simulated reader: 2π / 4096 ≈ 0.0015 rad,
/// matching the resolution the paper quotes.
pub const PHASE_STEP: f64 = TAU / 4096.0;

/// RSS quantization step in dB (Impinj readers report in half-dB units).
pub const RSS_STEP_DB: f64 = 0.5;

/// Samples a standard-normal variate using the Box–Muller transform.
///
/// Implemented locally so the workspace needs no distribution crate.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
///
/// # Panics
///
/// Panics if `sigma` is negative.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "sigma must be non-negative, got {sigma}");
    mean + sigma * standard_normal(rng)
}

/// Quantizes a phase to the reader's reporting resolution and wraps it into
/// `[0, 2π)`.
///
/// ```
/// use rf_sim::noise::{quantize_phase, PHASE_STEP};
/// let q = quantize_phase(1.0);
/// assert!((q - 1.0).abs() <= PHASE_STEP / 2.0 + 1e-12);
/// assert!(q >= 0.0 && q < std::f64::consts::TAU);
/// ```
pub fn quantize_phase(phase: f64) -> f64 {
    let wrapped = phase.rem_euclid(TAU);
    let q = (wrapped / PHASE_STEP).round() * PHASE_STEP;
    q.rem_euclid(TAU)
}

/// Quantizes an RSS value to the reader's 0.5 dB reporting resolution.
///
/// ```
/// use rf_sim::noise::quantize_rss;
/// assert_eq!(quantize_rss(-41.26), -41.5);
/// assert_eq!(quantize_rss(-41.24), -41.0);
/// ```
pub fn quantize_rss(dbm: f64) -> f64 {
    (dbm / RSS_STEP_DB).round() * RSS_STEP_DB
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_respects_parameters() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 5.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 5.0).abs() < 0.02);
    }

    #[test]
    fn gaussian_zero_sigma_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gaussian(&mut rng, 3.0, 0.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be non-negative")]
    fn gaussian_rejects_negative_sigma() {
        let mut rng = StdRng::seed_from_u64(1);
        gaussian(&mut rng, 0.0, -1.0);
    }

    #[test]
    fn quantize_phase_wraps_and_snaps() {
        let q = quantize_phase(-0.5);
        assert!((0.0..TAU).contains(&q));
        assert!((q - (TAU - 0.5)).abs() < PHASE_STEP);
        // Exactly representable step values pass through.
        let v = 100.0 * PHASE_STEP;
        assert!((quantize_phase(v) - v).abs() < 1e-12);
    }

    #[test]
    fn quantize_phase_near_tau_wraps_to_zero() {
        let q = quantize_phase(TAU - PHASE_STEP / 4.0);
        assert!(q.abs() < 1e-12, "expected wrap to 0, got {q}");
    }

    #[test]
    fn rss_quantization_step() {
        assert_eq!(quantize_rss(-40.0), -40.0);
        assert_eq!(quantize_rss(-40.3), -40.5);
        assert_eq!(quantize_rss(-40.7), -40.5);
    }

    #[test]
    fn phase_step_matches_paper_resolution() {
        assert!((PHASE_STEP - 0.0015).abs() < 1e-4);
    }
}
