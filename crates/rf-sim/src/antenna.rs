//! Directional reader-antenna model.
//!
//! Implements the paper's idealized radiation model (§IV-B3, Fig. 13): the
//! antenna radiates into a solid angle `Ω_s ≈ 4π / G` (Eq. 13), giving a beam
//! angle `θ_beam ≈ sqrt(4π / G)` (Eq. 14). For the prototype's 8 dBi Laird
//! panel this is ≈ 72°. Off-boresight gain rolls off smoothly (a `cos^n`
//! pattern fitted so the −3 dB point falls at half the beam angle), with a
//! sidelobe floor so tags outside the main lobe are attenuated but not
//! invisible.

use crate::geometry::Vec3;
use crate::units::{Dbi, Meters};
use serde::{Deserialize, Serialize};

/// Gain floor applied outside the main lobe, dB below peak.
const SIDELOBE_FLOOR_DB: f64 = -20.0;

/// A directional reader antenna with position and boresight orientation.
///
/// # Example
///
/// ```
/// use rf_sim::antenna::ReaderAntenna;
/// use rf_sim::geometry::Vec3;
/// use rf_sim::units::Dbi;
///
/// // Antenna half a metre above the tag plane, pointing down at it.
/// let ant = ReaderAntenna::new(
///     Vec3::new(0.0, 0.0, 0.5),
///     Vec3::new(0.0, 0.0, -1.0),
///     Dbi(8.0),
/// );
/// // Peak gain on boresight:
/// let g = ant.gain_toward(Vec3::new(0.0, 0.0, 0.0));
/// assert!((g.value() - 8.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderAntenna {
    position: Vec3,
    boresight: Vec3,
    gain: Dbi,
}

impl ReaderAntenna {
    /// Creates an antenna at `position` pointing along `boresight` with the
    /// given peak gain.
    ///
    /// # Panics
    ///
    /// Panics if `boresight` is the zero vector.
    pub fn new(position: Vec3, boresight: Vec3, gain: Dbi) -> Self {
        Self {
            position,
            boresight: boresight.normalized(),
            gain,
        }
    }

    /// Antenna position.
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Unit boresight direction.
    pub fn boresight(&self) -> Vec3 {
        self.boresight
    }

    /// Peak (boresight) gain.
    pub fn peak_gain(&self) -> Dbi {
        self.gain
    }

    /// Full beam angle from Eq. 14: `θ_beam ≈ sqrt(4π / G)` radians.
    ///
    /// ```
    /// use rf_sim::antenna::ReaderAntenna;
    /// use rf_sim::geometry::Vec3;
    /// use rf_sim::units::Dbi;
    ///
    /// let ant = ReaderAntenna::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Dbi(8.0));
    /// let deg = ant.beam_angle().to_degrees();
    /// assert!((deg - 72.0).abs() < 15.0); // paper: ≈ 72°
    /// ```
    pub fn beam_angle(&self) -> f64 {
        (4.0 * std::f64::consts::PI / self.gain.linear()).sqrt()
    }

    /// Gain toward an arbitrary point, following a `cos^n(θ)` main lobe whose
    /// −3 dB width matches [`beam_angle`](Self::beam_angle), clamped to a
    /// −20 dB sidelobe floor.
    pub fn gain_toward(&self, point: Vec3) -> Dbi {
        let dir = point - self.position;
        if dir.norm() < 1e-12 {
            return self.gain;
        }
        let theta = self.boresight.angle_to(dir);
        let half_beam = self.beam_angle() / 2.0;
        // cos^n pattern with n chosen so gain drops 3 dB at θ = half_beam:
        // n = -3 / (10 · log10(cos(half_beam))).
        let cos_hb = half_beam.cos().max(1e-6);
        let n = -3.0 / (10.0 * cos_hb.log10());
        let rolloff_db = if theta >= std::f64::consts::FRAC_PI_2 {
            SIDELOBE_FLOOR_DB
        } else {
            (10.0 * n * theta.cos().max(1e-9).log10()).max(SIDELOBE_FLOOR_DB)
        };
        Dbi(self.gain.value() + rolloff_db)
    }

    /// Minimum antenna-to-plane distance so a square plate of side `plate_len`
    /// centred on boresight is covered by the 3 dB beam (paper §IV-B3:
    /// `d = (l/2) / tan(θ_beam/2)`, ≈ 31.7 cm for the prototype's 46 cm
    /// plate and 72° beam).
    ///
    /// # Panics
    ///
    /// Panics if `plate_len` is not positive.
    pub fn min_coverage_distance(&self, plate_len: Meters) -> Meters {
        assert!(plate_len.value() > 0.0, "plate length must be positive");
        let half_beam = self.beam_angle() / 2.0;
        Meters(plate_len.value() / 2.0 / half_beam.tan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn antenna() -> ReaderAntenna {
        ReaderAntenna::new(
            Vec3::new(0.0, 0.0, 0.5),
            Vec3::new(0.0, 0.0, -1.0),
            Dbi(8.0),
        )
    }

    #[test]
    fn boresight_gain_is_peak() {
        let a = antenna();
        let g = a.gain_toward(Vec3::new(0.0, 0.0, -1.0));
        assert!((g.value() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn beam_angle_matches_paper() {
        // sqrt(4π/6.31) ≈ 1.41 rad ≈ 80.8°; the paper rounds to ≈72°.
        let deg = antenna().beam_angle().to_degrees();
        assert!(deg > 60.0 && deg < 90.0, "beam angle {deg}");
    }

    #[test]
    fn gain_drops_3db_at_half_beam() {
        let a = antenna();
        let half = a.beam_angle() / 2.0;
        // Point at angle `half` off boresight, 1 m away.
        let p = Vec3::new(half.sin(), 0.0, 0.5 - half.cos());
        let g = a.gain_toward(p);
        assert!((g.value() - (8.0 - 3.0)).abs() < 0.1, "gain {g}");
    }

    #[test]
    fn gain_monotonically_decreases_off_axis() {
        let a = antenna();
        let mut prev = f64::INFINITY;
        for i in 0..10 {
            let theta = i as f64 * 0.15;
            let p = Vec3::new(theta.sin(), 0.0, 0.5 - theta.cos());
            let g = a.gain_toward(p).value();
            assert!(g <= prev + 1e-9, "gain increased off-axis at step {i}");
            prev = g;
        }
    }

    #[test]
    fn sidelobe_floor_behind_antenna() {
        let a = antenna();
        let g = a.gain_toward(Vec3::new(0.0, 0.0, 2.0)); // directly behind
        assert!((g.value() - (8.0 + SIDELOBE_FLOOR_DB)).abs() < 1e-9);
    }

    #[test]
    fn coincident_point_gets_peak_gain() {
        let a = antenna();
        assert_eq!(a.gain_toward(a.position()).value(), 8.0);
    }

    #[test]
    fn min_coverage_distance_near_paper_value() {
        // Paper: 46 cm plate, ≈72° beam → d ≈ 31.7 cm. Our beam model gives
        // ≈80.8°, so the distance is a little smaller but the same order.
        let d = antenna().min_coverage_distance(Meters(0.46)).value();
        assert!(d > 0.2 && d < 0.4, "coverage distance {d}");
    }

    #[test]
    #[should_panic(expected = "plate length must be positive")]
    fn min_coverage_rejects_zero_plate() {
        antenna().min_coverage_distance(Meters(0.0));
    }
}
