//! Static multipath environments.
//!
//! Walls, tables, and cabinets around the tag plane reflect the reader's
//! carrier, adding static phasors to every tag's channel and raising the
//! measurement jitter of tags close to strong reflectors. This is the
//! *location diversity* of §III-A2: each tag's phase vibrates around its own
//! central value with its own standard deviation (the *deviation bias* of
//! the paper's Fig. 5), which RFIPad's weighting function compensates.
//!
//! The paper evaluates four lab locations (Fig. 15/16) with increasingly
//! strong multipath; [`Environment::office_location`] provides matching
//! presets.

use crate::geometry::{Complex, Vec3};
use serde::{Deserialize, Serialize};
use std::f64::consts::{PI, TAU};

/// A static point scatterer (wall section, table edge, cabinet…).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scatterer {
    /// Position in metres.
    pub position: Vec3,
    /// Radar scattering cross-section in m² (walls/furniture: 0.5–3 m²).
    pub rcs_m2: f64,
}

/// The static RF environment around the tag plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    name: String,
    scatterers: Vec<Scatterer>,
    base_phase_noise: f64,
    base_rss_noise_db: f64,
}

impl Environment {
    /// Multipath-to-jitter coupling: how strongly local multipath energy
    /// inflates a tag's phase noise.
    const PHASE_JITTER_GAIN: f64 = 0.05;
    /// Multipath-to-jitter coupling for RSS noise.
    const RSS_JITTER_GAIN: f64 = 0.6;

    /// Creates an environment from explicit scatterers and noise floors.
    ///
    /// # Panics
    ///
    /// Panics if a noise floor is negative.
    pub fn new(
        name: impl Into<String>,
        scatterers: Vec<Scatterer>,
        base_phase_noise: f64,
        base_rss_noise_db: f64,
    ) -> Self {
        assert!(base_phase_noise >= 0.0, "phase noise must be non-negative");
        assert!(base_rss_noise_db >= 0.0, "RSS noise must be non-negative");
        Self {
            name: name.into(),
            scatterers,
            base_phase_noise,
            base_rss_noise_db,
        }
    }

    /// An idealized anechoic environment: no scatterers and near-zero
    /// measurement noise. Useful for validating the theory of §III-A1.
    pub fn free_space() -> Self {
        Self::new("free space", Vec::new(), 1e-4, 1e-3)
    }

    /// One of the paper's four lab locations (Fig. 15), `1..=4`, with
    /// multipath richness growing with the index. Location 4 sits next to a
    /// wall and tables and shows the paper's largest suppression gain
    /// (75% → 93% in Fig. 16).
    ///
    /// # Panics
    ///
    /// Panics unless `index` is in `1..=4`.
    pub fn office_location(index: usize) -> Self {
        let base_phase = 0.02;
        let base_rss = 0.3;
        match index {
            1 => Self::new(
                "location 1 (open floor)",
                vec![Scatterer {
                    position: Vec3::new(2.5, -1.5, 0.8),
                    rcs_m2: 0.6,
                }],
                base_phase,
                base_rss,
            ),
            2 => Self::new(
                "location 2 (near doorway)",
                vec![
                    Scatterer {
                        position: Vec3::new(1.8, 0.6, 0.4),
                        rcs_m2: 0.8,
                    },
                    Scatterer {
                        position: Vec3::new(-1.6, -1.0, 0.7),
                        rcs_m2: 0.7,
                    },
                ],
                base_phase,
                base_rss,
            ),
            3 => Self::new(
                "location 3 (between desks)",
                vec![
                    Scatterer {
                        position: Vec3::new(1.0, 0.4, 0.3),
                        rcs_m2: 1.0,
                    },
                    Scatterer {
                        position: Vec3::new(-0.9, -0.7, 0.5),
                        rcs_m2: 0.95,
                    },
                    Scatterer {
                        position: Vec3::new(0.3, 1.2, 0.6),
                        rcs_m2: 0.8,
                    },
                ],
                base_phase,
                base_rss,
            ),
            4 => Self::new(
                "location 4 (wall corner, tables)",
                vec![
                    Scatterer {
                        position: Vec3::new(0.75, 0.28, 0.2),
                        rcs_m2: 1.15,
                    },
                    Scatterer {
                        position: Vec3::new(0.7, -0.6, 0.4),
                        rcs_m2: 1.0,
                    },
                    Scatterer {
                        position: Vec3::new(-0.7, 0.5, 0.3),
                        rcs_m2: 0.8,
                    },
                    Scatterer {
                        position: Vec3::new(0.15, 0.75, 0.6),
                        rcs_m2: 1.2,
                    },
                ],
                base_phase,
                base_rss,
            ),
            other => panic!("office location index must be 1..=4, got {other}"),
        }
    }

    /// Environment name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The static scatterers.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Sum of static multipath phasors for the reader→tag forward link,
    /// *relative* to the direct path (the direct path is the implicit `1`).
    ///
    /// Each scatterer contributes amplitude
    /// `d_rt · sqrt(σ/4π) / (d_rs · d_st)` and excess phase
    /// `2π (d_rs + d_st − d_rt) / λ`.
    pub fn multipath_phasor(&self, antenna: Vec3, tag: Vec3, wavelength: f64) -> Complex {
        let d_rt = antenna.distance(tag).max(1e-6);
        let mut sum = Complex::ZERO;
        for s in &self.scatterers {
            let d_rs = antenna.distance(s.position).max(1e-6);
            let d_st = s.position.distance(tag).max(1e-6);
            let amp = d_rt * (s.rcs_m2 / (4.0 * PI)).sqrt() / (d_rs * d_st);
            let excess = TAU * (d_rs + d_st - d_rt) / wavelength;
            sum = sum + Complex::from_polar(amp, -excess);
        }
        sum
    }

    /// A dimensionless measure of the multipath energy a tag at `tag`
    /// experiences: the sum of squared relative scatterer amplitudes as seen
    /// from a unit-distance illuminator. Drives location-dependent jitter.
    pub fn multipath_energy(&self, tag: Vec3) -> f64 {
        self.scatterers
            .iter()
            .map(|s| {
                let d = s.position.distance(tag).max(0.05);
                s.rcs_m2 / (4.0 * PI) / (d * d)
            })
            .sum()
    }

    /// Standard deviation of phase measurement noise (radians) for a tag at
    /// `tag` — the per-tag *deviation bias*. Grows with local multipath
    /// energy on top of the environment's base noise.
    pub fn phase_noise_sigma(&self, tag: Vec3) -> f64 {
        self.base_phase_noise + Self::PHASE_JITTER_GAIN * self.multipath_energy(tag)
    }

    /// Standard deviation of RSS measurement noise (dB) for a tag at `tag`.
    pub fn rss_noise_sigma(&self, tag: Vec3) -> f64 {
        self.base_rss_noise_db + Self::RSS_JITTER_GAIN * self.multipath_energy(tag)
    }
}

impl Default for Environment {
    fn default() -> Self {
        Self::office_location(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_has_no_multipath() {
        let env = Environment::free_space();
        let m = env.multipath_phasor(Vec3::new(0.0, 0.0, 0.5), Vec3::ZERO, 0.325);
        assert_eq!(m.abs(), 0.0);
        assert!(env.phase_noise_sigma(Vec3::ZERO) < 1e-3);
    }

    #[test]
    fn locations_grow_in_multipath_energy() {
        let probe = Vec3::new(0.12, -0.12, 0.0); // centre of the 5×5 plate
        let mut prev = 0.0;
        for i in 1..=4 {
            let e = Environment::office_location(i).multipath_energy(probe);
            assert!(e > prev, "location {i} energy {e} <= {prev}");
            prev = e;
        }
    }

    #[test]
    #[should_panic(expected = "office location index must be 1..=4")]
    fn invalid_location_panics() {
        Environment::office_location(5);
    }

    #[test]
    fn phase_noise_varies_across_plate_in_location4() {
        // Deviation bias: different tags must see measurably different noise.
        let env = Environment::office_location(4);
        let sigmas: Vec<f64> = (0..5)
            .flat_map(|r| (0..5).map(move |c| (r, c)))
            .map(|(r, c)| {
                env.phase_noise_sigma(Vec3::new(c as f64 * 0.06, -(r as f64) * 0.06, 0.0))
            })
            .collect();
        let lo = sigmas.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = sigmas.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi / lo > 1.15,
            "deviation bias spread too small: {lo}..{hi}"
        );
    }

    #[test]
    fn multipath_phasor_is_weak_relative_to_direct() {
        // Static multipath perturbs but must not dominate the direct path.
        let env = Environment::office_location(4);
        let m = env
            .multipath_phasor(Vec3::new(0.0, 0.0, -0.32), Vec3::ZERO, 0.325)
            .abs();
        assert!(m > 0.0 && m < 0.8, "relative multipath amplitude {m}");
    }

    #[test]
    fn nearer_scatterers_mean_more_energy() {
        let env = Environment::office_location(4);
        let near_wall = env.multipath_energy(Vec3::new(0.4, 0.1, 0.0));
        let far_corner = env.multipath_energy(Vec3::new(-0.3, -0.4, 0.0));
        assert!(near_wall > far_corner);
    }

    #[test]
    fn noise_floors_validated() {
        let e = Environment::new("x", vec![], 0.0, 0.0);
        assert_eq!(e.phase_noise_sigma(Vec3::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "phase noise must be non-negative")]
    fn negative_noise_rejected() {
        Environment::new("bad", vec![], -0.1, 0.0);
    }
}
