//! Physics-level simulator for UHF RFID backscatter sensing.
//!
//! This crate is the hardware substitute for the RFIPad reproduction: it
//! models everything the paper's testbed provided physically — a directional
//! reader antenna, a plate of passive tags, the static multipath environment
//! of an office, and moving reflectors (the user's hand and arm) — and
//! produces the per-tag phase / RSS / Doppler observations a commercial
//! reader would report.
//!
//! # Modules
//!
//! - [`units`] — dBm/dBi/metres/hertz newtypes and conversions;
//! - [`geometry`] — 3-D vectors and complex phasors;
//! - [`antenna`] — directional antenna with the paper's Eq. 13–14 beam
//!   model;
//! - [`tags`] — tag models (four commercial designs with distinct RCS),
//!   per-tag hardware phase offsets, and the 5×5 array builder;
//! - [`coupling`] — inter-tag near-field shadowing and LOS obstruction;
//! - [`environment`] — static multipath presets for the paper's four lab
//!   locations, driving location-dependent measurement jitter;
//! - [`targets`] — moving reflectors (hand / arm) as virtual transmitters;
//! - [`channel`] — Friis forward link and radar-equation backscatter;
//! - [`noise`] — Gaussian noise plus reader phase/RSS quantization;
//! - [`scene`] — the observation engine combining all of the above.
//!
//! # Example
//!
//! ```
//! use rf_sim::antenna::ReaderAntenna;
//! use rf_sim::environment::Environment;
//! use rf_sim::geometry::Vec3;
//! use rf_sim::scene::{Scene, SceneConfig};
//! use rf_sim::tags::{TagArray, TagId, TagModel};
//! use rf_sim::targets::StaticTarget;
//! use rf_sim::units::Dbi;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 5×5 plate of Impinj-style tags with the antenna 32 cm behind it.
//! let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |id| id.0 as f64);
//! let antenna = ReaderAntenna::new(
//!     Vec3::new(0.12, -0.12, -0.32),
//!     Vec3::new(0.0, 0.0, 1.0),
//!     Dbi(8.0),
//! );
//! let scene = Scene::new(
//!     antenna,
//!     array.tags().to_vec(),
//!     Environment::office_location(1),
//!     SceneConfig::default(),
//! );
//!
//! // A hand hovering 3 cm over the plate centre perturbs the centre tag.
//! let hand = StaticTarget::new(Vec3::new(0.12, -0.12, 0.03), 0.02);
//! let mut rng = StdRng::seed_from_u64(1);
//! let obs = scene.observe(TagId(12), 0.0, &[&hand], &mut rng).expect("readable");
//! assert!(obs.phase >= 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod antenna;
pub mod channel;
pub mod coupling;
pub mod environment;
pub mod geometry;
pub mod noise;
pub mod scene;
pub mod tags;
pub mod targets;
pub mod units;

pub use antenna::ReaderAntenna;
pub use environment::Environment;
pub use geometry::{Complex, Vec3};
pub use scene::{Scene, SceneConfig, TagObservation};
pub use tags::{Facing, Tag, TagArray, TagId, TagModel};
pub use targets::{MovingTarget, StaticTarget, TargetSample};
