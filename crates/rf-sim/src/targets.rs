//! Moving reflectors: the hand (and arm) as "virtual transmitters".
//!
//! The paper models a hand near the tag plane as a powerful virtual
//! transmitter that re-radiates the reader's carrier toward nearby tags
//! (§III-A1, citing Pu et al.). Anything that moves and scatters RF —
//! a hand, the attached forearm, a passer-by — implements [`MovingTarget`]
//! and is sampled by the scene once per observation.

use crate::geometry::Vec3;
use serde::{Deserialize, Serialize};

/// State of a moving scatterer at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TargetSample {
    /// Centre position in metres.
    pub position: Vec3,
    /// Effective radar scattering cross-section in m² (a hand is a few
    /// hundred cm²; a forearm several times more).
    pub rcs_m2: f64,
}

impl TargetSample {
    /// Effective geometric radius derived from the RCS (disk equivalent),
    /// used for line-of-sight obstruction checks.
    pub fn radius(&self) -> f64 {
        (self.rcs_m2 / std::f64::consts::PI).sqrt()
    }
}

/// A scatterer whose position (and possibly cross-section) changes over
/// time. Returning `None` means the target is absent at that instant (e.g.
/// the hand has been withdrawn between strokes).
pub trait MovingTarget {
    /// The target's state at time `t` seconds, or `None` if absent.
    fn sample(&self, t: f64) -> Option<TargetSample>;
}

/// A target fixed in place — useful for tests and static-obstruction
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticTarget {
    /// The constant sample returned at every instant.
    pub sample: TargetSample,
}

impl StaticTarget {
    /// Creates a static target at `position` with the given RCS.
    pub fn new(position: Vec3, rcs_m2: f64) -> Self {
        Self {
            sample: TargetSample { position, rcs_m2 },
        }
    }
}

impl MovingTarget for StaticTarget {
    fn sample(&self, _t: f64) -> Option<TargetSample> {
        Some(self.sample)
    }
}

/// Adapts a closure `f(t) -> Option<TargetSample>` into a [`MovingTarget`].
pub struct FnTarget<F>(pub F);

impl<F: Fn(f64) -> Option<TargetSample>> MovingTarget for FnTarget<F> {
    fn sample(&self, t: f64) -> Option<TargetSample> {
        (self.0)(t)
    }
}

impl<F> std::fmt::Debug for FnTarget<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnTarget(..)")
    }
}

impl<T: MovingTarget + ?Sized> MovingTarget for &T {
    fn sample(&self, t: f64) -> Option<TargetSample> {
        (**self).sample(t)
    }
}

impl<T: MovingTarget + ?Sized> MovingTarget for Box<T> {
    fn sample(&self, t: f64) -> Option<TargetSample> {
        (**self).sample(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_target_is_constant() {
        let t = StaticTarget::new(Vec3::new(1.0, 2.0, 3.0), 0.02);
        assert_eq!(t.sample(0.0), t.sample(100.0));
    }

    #[test]
    fn fn_target_delegates() {
        let t = FnTarget(|time: f64| {
            (time < 1.0).then(|| TargetSample {
                position: Vec3::new(time, 0.0, 0.0),
                rcs_m2: 0.02,
            })
        });
        assert!(t.sample(0.5).is_some());
        assert!(t.sample(1.5).is_none());
        assert_eq!(t.sample(0.25).expect("present").position.x, 0.25);
    }

    #[test]
    fn radius_from_rcs() {
        let s = TargetSample {
            position: Vec3::ZERO,
            rcs_m2: std::f64::consts::PI * 0.0025, // radius 5 cm
        };
        assert!((s.radius() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn boxed_and_borrowed_targets_work() {
        let t = StaticTarget::new(Vec3::ZERO, 0.01);
        let b: Box<dyn MovingTarget> = Box::new(t);
        assert!(b.sample(0.0).is_some());
        let r: &dyn MovingTarget = &t;
        assert!(r.sample(0.0).is_some());
    }
}
