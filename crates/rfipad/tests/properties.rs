//! Property-based tests of the recognition pipeline's invariants.

use hand_kinematics::letters::ALPHABET;
use proptest::prelude::*;
use rfipad::calibration::wrap_to_pi;
use rfipad::grammar::{ideal_observation, GrammarTree, ObservedStroke};
use rfipad::metrics::{score_segmentation, ConfusionMatrix};
use rfipad::segmentation::StrokeSpan;

proptest! {
    /// wrap_to_pi lands in (−π, π] and preserves values already there.
    #[test]
    fn wrap_to_pi_contract(p in -1e3f64..1e3) {
        let w = wrap_to_pi(p);
        prop_assert!(w > -std::f64::consts::PI - 1e-12);
        prop_assert!(w <= std::f64::consts::PI + 1e-12);
        prop_assert!((wrap_to_pi(w) - w).abs() < 1e-9);
        // Difference is a multiple of 2π.
        let cycles = (p - w) / std::f64::consts::TAU;
        prop_assert!((cycles - cycles.round()).abs() < 1e-6);
    }

    /// Segmentation scoring conserves counts: matched + missed = truth, and
    /// insertions never exceed the number of detections.
    #[test]
    fn segmentation_scoring_conserves(
        truth in prop::collection::vec((0.0f64..20.0, 0.3f64..2.0), 0..6),
        detected in prop::collection::vec((0.0f64..20.0, 0.3f64..2.0), 0..8),
    ) {
        let truth_spans: Vec<(f64, f64)> = truth.iter().map(|&(s, d)| (s, s + d)).collect();
        let spans: Vec<StrokeSpan> = detected
            .iter()
            .map(|&(s, d)| StrokeSpan { start: s, end: s + d })
            .collect();
        let o = score_segmentation(&spans, &truth_spans);
        prop_assert_eq!(o.matched + o.missed, truth_spans.len());
        prop_assert!(o.insertions <= spans.len());
        prop_assert!(o.underfills <= o.matched);
        prop_assert_eq!(o.truth_count, truth_spans.len());
    }

    /// Span overlap is symmetric and bounded by either duration.
    #[test]
    fn span_overlap_properties(
        a_start in 0.0f64..10.0, a_len in 0.0f64..5.0,
        b_start in 0.0f64..10.0, b_len in 0.0f64..5.0,
    ) {
        let a = StrokeSpan { start: a_start, end: a_start + a_len };
        let b = StrokeSpan { start: b_start, end: b_start + b_len };
        let o1 = a.overlap(&b);
        let o2 = b.overlap(&a);
        prop_assert!((o1 - o2).abs() < 1e-12);
        prop_assert!(o1 >= 0.0);
        prop_assert!(o1 <= a.duration() + 1e-12);
        prop_assert!(o1 <= b.duration() + 1e-12);
    }

    /// Every letter survives grammar deduction from its ideal observation,
    /// even with bounded positional jitter — the robustness the positional
    /// disambiguation needs in practice.
    #[test]
    fn grammar_tolerates_positional_jitter(
        letter_idx in 0usize..26,
        jitter in -0.05f64..0.05,
    ) {
        let letter = ALPHABET[letter_idx];
        let tree = GrammarTree::standard();
        let mut obs = ideal_observation(letter).expect("alphabet letter");
        for (i, o) in obs.iter_mut().enumerate() {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            o.centroid.0 += sign * jitter;
            o.centroid.1 -= sign * jitter;
        }
        prop_assert_eq!(tree.deduce(&obs), Some(letter));
    }

    /// Fuzzy deduction with one corrupted stroke shape still prefers a
    /// same-count letter (never panics, never returns a different-length
    /// letter).
    #[test]
    fn fuzzy_deduction_count_preserving(
        letter_idx in 0usize..26,
        corrupt_idx in 0usize..4,
    ) {
        let letter = ALPHABET[letter_idx];
        let tree = GrammarTree::standard();
        let mut obs = ideal_observation(letter).expect("alphabet letter");
        if corrupt_idx < obs.len() {
            // Flip the corrupted stroke's shape to a line.
            obs[corrupt_idx] = ObservedStroke {
                stroke: hand_kinematics::stroke::Stroke::new(
                    hand_kinematics::stroke::StrokeShape::VLine,
                ),
                ..obs[corrupt_idx]
            };
        }
        if let Some(guess) = tree.deduce_fuzzy(&obs) {
            let count = hand_kinematics::letters::stroke_count(guess).unwrap();
            prop_assert_eq!(count, obs.len());
        }
    }

    /// Confusion-matrix accuracy is always in [0, 1] and merging adds
    /// totals.
    #[test]
    fn confusion_matrix_properties(
        outcomes in prop::collection::vec((0u8..4, 0u8..4), 0..50),
    ) {
        let mut m = ConfusionMatrix::new();
        for (t, p) in &outcomes {
            m.record(format!("c{t}"), format!("c{p}"));
        }
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert_eq!(m.total(), outcomes.len() as u64);
        let mut doubled = m.clone();
        doubled.merge(&m);
        prop_assert_eq!(doubled.total(), 2 * m.total());
        prop_assert!((doubled.accuracy() - m.accuracy()).abs() < 1e-12);
    }
}
