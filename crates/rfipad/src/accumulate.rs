//! The accumulative phase difference image (Eq. 5 / Eq. 10).
//!
//! For each tag, RFIPad sums the absolute consecutive differences of the
//! (suppressed, unwrapped) phase over the stroke's time span. The tag the
//! hand passed closest to accumulates the most phase change (the §III-A1
//! monotonicity result), so rendering the per-tag sums as a gray-scale
//! image over the array outlines the stroke. With the Eq. 9 weighting the
//! sums are divided by each tag's deviation-bias weight, suppressing
//! location diversity.

use crate::calibration::Calibration;
use crate::error::RfipadError;
use crate::layout::ArrayLayout;
use crate::streams::TagStreams;
use rfid_gen2::report::TagId;
use sigproc::grid::GridImage;

/// Accumulative (weighted) phase difference for one tag over `[start, end)`.
///
/// Returns 0.0 for a tag with fewer than two samples in the span.
pub fn accumulate_tag(streams: &TagStreams, id: TagId, start: f64, end: f64) -> f64 {
    accumulate_tag_denoised(streams, id, start, end, 0.0)
}

/// Accumulative phase difference with the noise floor removed.
///
/// Measurement noise alone makes `Σ|Δθ|` grow linearly with the number of
/// samples: for per-sample noise of deviation σ, each consecutive pair
/// contributes `E|N(0,σ)−N(0,σ)| = 2σ/√π` in expectation. Subtracting that
/// expectation (clamping at zero) leaves only motion-induced accumulation,
/// sharpening the gray image's foreground/background contrast before Otsu.
pub fn accumulate_tag_denoised(
    streams: &TagStreams,
    id: TagId,
    start: f64,
    end: f64,
    noise_sigma: f64,
) -> f64 {
    let Some(series) = streams.phase(id) else {
        return 0.0;
    };
    let span = series.slice_time(start, end);
    if span.len() < 2 {
        return 0.0;
    }
    let raw: f64 = span.values().windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    let pairs = (span.len() - 1) as f64;
    let expected_noise = pairs * 2.0 * noise_sigma / std::f64::consts::PI.sqrt();
    (raw - expected_noise).max(0.0)
}

/// Renders the accumulative phase-difference image of the whole array over
/// `[start, end)`.
///
/// With `calibration = Some(..)`, each tag's sum is multiplied by the
/// Eq. 10 inverse weight `wᵢ⁻¹` (deviation-bias suppression). With `None`
/// the raw sums are used — the paper's Fig. 7(a) baseline.
///
/// # Errors
///
/// Returns [`RfipadError::UnknownTag`] if the calibration is missing a
/// layout tag.
pub fn accumulative_image(
    layout: &ArrayLayout,
    streams: &TagStreams,
    calibration: Option<&Calibration>,
    start: f64,
    end: f64,
) -> Result<GridImage, RfipadError> {
    let mut img = GridImage::zeros(layout.rows(), layout.cols());
    for &id in layout.tags() {
        let value = match calibration {
            Some(cal) => {
                // Per-sample noise deviation of the suppressed stream is
                // the tag's calibrated deviation bias.
                let sigma = cal.tag(id)?.deviation_bias;
                accumulate_tag_denoised(streams, id, start, end, sigma) * cal.inverse_weight(id)?
            }
            None => accumulate_tag(streams, id, start, end),
        };
        let (r, c) = layout.position(id)?;
        img.set(r, c, value);
    }
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RfipadConfig;
    use rfid_gen2::report::TagReport;
    use std::f64::consts::TAU;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(1, 3, vec![TagId(0), TagId(1), TagId(2)])
    }

    fn obs(tag: TagId, time: f64, phase: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), -45.0)
    }

    /// Tag 1 wiggles strongly, tags 0/2 are quiet.
    fn wiggle_observations() -> Vec<TagReport> {
        let mut out = Vec::new();
        for j in 0..50 {
            let t = j as f64 * 0.05;
            out.push(obs(TagId(0), t, 1.0 + 0.01 * (j as f64).sin()));
            out.push(obs(TagId(1), t + 0.01, 3.0 + 0.8 * (j as f64 * 0.9).sin()));
            out.push(obs(TagId(2), t + 0.02, 5.0 + 0.01 * (j as f64).cos()));
        }
        out
    }

    #[test]
    fn moving_tag_accumulates_most() {
        let observations = wiggle_observations();
        let streams = TagStreams::build(&layout(), None, &observations);
        let img = accumulative_image(&layout(), &streams, None, 0.0, 3.0).unwrap();
        assert!(img.get(0, 1) > 10.0 * img.get(0, 0));
        assert!(img.get(0, 1) > 10.0 * img.get(0, 2));
    }

    #[test]
    fn empty_span_gives_zero_image() {
        let observations = wiggle_observations();
        let streams = TagStreams::build(&layout(), None, &observations);
        let img = accumulative_image(&layout(), &streams, None, 10.0, 11.0).unwrap();
        assert!(img.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_sample_accumulates_zero() {
        let observations = vec![obs(TagId(0), 0.0, 1.0)];
        let streams = TagStreams::build(&layout(), None, &observations);
        assert_eq!(accumulate_tag(&streams, TagId(0), 0.0, 1.0), 0.0);
    }

    #[test]
    fn weighting_boosts_quiet_tags() {
        // Calibrate with tag 2 static noise much larger than tag 0's: the
        // weighting must shrink tag 2's image value relative to tag 0's for
        // identical motion-time wiggles.
        let mut cal_obs = Vec::new();
        for j in 0..60 {
            let t = j as f64 * 0.05;
            cal_obs.push(obs(TagId(0), t, 1.0 + 0.01 * (j as f64 * 2.4).sin()));
            cal_obs.push(obs(TagId(1), t + 0.01, 3.0 + 0.01 * (j as f64 * 1.7).sin()));
            cal_obs.push(obs(TagId(2), t + 0.02, 5.0 + 0.30 * (j as f64 * 2.1).sin()));
        }
        let cal =
            Calibration::from_observations(&layout(), &cal_obs, &RfipadConfig::default()).unwrap();

        // Motion phase: tags 0 and 2 wiggle identically.
        let mut motion = Vec::new();
        for j in 0..50 {
            let t = j as f64 * 0.05;
            motion.push(obs(TagId(0), t, 1.0 + 0.5 * (j as f64 * 0.9).sin()));
            motion.push(obs(TagId(1), t + 0.01, 3.0));
            motion.push(obs(TagId(2), t + 0.02, 5.0 + 0.5 * (j as f64 * 0.9).sin()));
        }
        let streams = TagStreams::build(&layout(), Some(&cal), &motion);
        let weighted = accumulative_image(&layout(), &streams, Some(&cal), 0.0, 3.0).unwrap();
        let unweighted = accumulative_image(&layout(), &streams, None, 0.0, 3.0).unwrap();
        // Unweighted: both tags similar.
        let ratio_raw = unweighted.get(0, 0) / unweighted.get(0, 2);
        assert!((0.5..2.0).contains(&ratio_raw), "raw ratio {ratio_raw}");
        // Weighted: the historically-noisy tag 2 is suppressed.
        let ratio_w = weighted.get(0, 0) / weighted.get(0, 2);
        assert!(ratio_w > 3.0, "weighted ratio {ratio_w}");
    }

    #[test]
    fn image_dimensions_follow_layout() {
        let observations = wiggle_observations();
        let streams = TagStreams::build(&layout(), None, &observations);
        let img = accumulative_image(&layout(), &streams, None, 0.0, 3.0).unwrap();
        assert_eq!(img.rows(), 1);
        assert_eq!(img.cols(), 3);
    }
}
