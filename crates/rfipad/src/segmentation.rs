//! Stroke segmentation from continuous phase streams (§III-C1).
//!
//! Writers pause between strokes to reposition (the *adjustment interval*).
//! During a stroke every tag's suppressed phase swings; during an
//! adjustment the streams are quiet. RFIPad frames the streams (100 ms),
//! computes the multi-tag RMS per frame (Eq. 11), and flags windows whose
//! `std(rms(w))` exceeds a threshold (Eq. 12). Runs of active frames become
//! stroke spans.

use crate::calibration::Calibration;
use crate::config::RfipadConfig;
use crate::layout::ArrayLayout;
use crate::streams::TagStreams;
use serde::{Deserialize, Serialize};
use sigproc::frames::FrameSeq;

/// A detected stroke span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StrokeSpan {
    /// Span start time (s).
    pub start: f64,
    /// Span end time (s).
    pub end: f64,
}

impl StrokeSpan {
    /// Span duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Overlap duration with another span (0 if disjoint).
    pub fn overlap(&self, other: &StrokeSpan) -> f64 {
        (self.end.min(other.end) - self.start.max(other.start)).max(0.0)
    }
}

/// Per-frame segmentation diagnostics (the paper's Fig. 9 panels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameScore {
    /// Frame start time.
    pub time: f64,
    /// Multi-tag RMS of the frame (Eq. 11).
    pub rms: f64,
    /// `std(rms)` of the window centred on this frame (Eq. 12 left side).
    pub window_std: f64,
    /// Whether the frame is part of a stroke.
    pub active: bool,
}

/// Segmentation result: spans plus diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Segmentation {
    /// Detected stroke spans in time order.
    pub spans: Vec<StrokeSpan>,
    /// Per-frame scores (for inspection / figures).
    pub frames: Vec<FrameScore>,
    /// The activity threshold used.
    pub threshold: f64,
}

/// Splits continuous streams into stroke spans.
#[derive(Debug, Clone, Default)]
pub struct Segmenter {
    config: RfipadConfig,
}

impl Segmenter {
    /// Creates a segmenter.
    pub fn new(config: RfipadConfig) -> Self {
        Self { config }
    }

    /// Segments the streams using the calibrated activity thresholds.
    pub fn segment(
        &self,
        layout: &ArrayLayout,
        streams: &TagStreams,
        calibration: &Calibration,
    ) -> Segmentation {
        self.segment_inner(
            layout,
            streams,
            Some(calibration.noise_floors(layout, &self.config)),
            calibration.activity_threshold(&self.config),
            calibration.rms_level_threshold(&self.config),
        )
    }

    /// Segments with the variance criterion only (the paper's literal
    /// Eq. 12; ablations / tuning).
    pub fn segment_with_threshold(
        &self,
        layout: &ArrayLayout,
        streams: &TagStreams,
        threshold: f64,
    ) -> Segmentation {
        self.segment_with_thresholds(layout, streams, threshold, f64::INFINITY)
    }

    /// Segments with explicit variance and RMS-level thresholds. A frame is
    /// active when every window containing it exceeds the variance
    /// threshold (Eq. 12 with erosion) *or* its own multi-tag RMS exceeds
    /// the level threshold.
    pub fn segment_with_thresholds(
        &self,
        layout: &ArrayLayout,
        streams: &TagStreams,
        threshold: f64,
        rms_threshold: f64,
    ) -> Segmentation {
        self.segment_inner(layout, streams, None, threshold, rms_threshold)
    }

    fn segment_inner(
        &self,
        layout: &ArrayLayout,
        streams: &TagStreams,
        floors: Option<Vec<f64>>,
        threshold: f64,
        rms_threshold: f64,
    ) -> Segmentation {
        let (Some(start), Some(end)) = (streams.start(), streams.end()) else {
            return Segmentation {
                spans: Vec::new(),
                frames: Vec::new(),
                threshold,
            };
        };
        let series = streams.phase_series(layout);
        let frame_seq = FrameSeq::build_with_floors(
            &series,
            floors.as_deref(),
            start,
            end,
            self.config.frame_len_s,
        );
        self.segment_frames(&frame_seq, threshold, rms_threshold)
    }

    /// Scores an already-built frame sequence into stroke spans — the
    /// Eq. 12 window test, erosion, bridging, and minimum-length filter.
    /// Identical to [`segment`](Self::segment) given the frames it would
    /// build internally; the online pipeline uses this with frames cut
    /// incrementally by `sigproc::frames::FrameBuilder`.
    pub fn segment_frames(
        &self,
        frame_seq: &FrameSeq,
        threshold: f64,
        rms_threshold: f64,
    ) -> Segmentation {
        let mut scratch = sigproc::kernel::Scratch::new();
        let mut out = Segmentation::default();
        self.segment_frames_into(frame_seq, threshold, rms_threshold, &mut scratch, &mut out);
        out
    }

    /// Like [`segment_frames`](Self::segment_frames), but reuses `scratch`
    /// and `out` so the steady-state online pipeline scores frames without
    /// heap allocations. The result is bit-identical to
    /// [`segment_frames`](Self::segment_frames).
    pub fn segment_frames_into(
        &self,
        frame_seq: &FrameSeq,
        threshold: f64,
        rms_threshold: f64,
        scratch: &mut sigproc::kernel::Scratch,
        out: &mut Segmentation,
    ) {
        let frames = frame_seq.frames();
        let n = frames.len();
        let w = self.config.window_frames;
        let half = w / 2;

        // Per-frame score: std(rms) of the window centred on the frame
        // (shrinking at the edges).
        frame_seq.rms_values_into(&mut scratch.a);
        sigproc::kernel::windowed_std_into(&scratch.a, half, &mut scratch.b);
        // A window overlapping a stroke edge is active even though most of
        // its frames are quiet; to keep spans tight (and isolated one-frame
        // twitches from smearing into stroke-length spans) a frame counts
        // as active only when *every* window containing it is active —
        // erosion matching the earlier dilation.
        sigproc::kernel::windowed_min_into(&scratch.b, half, &mut scratch.c);
        out.threshold = threshold;
        out.spans.clear();
        out.frames.clear();
        out.frames.reserve(n);
        for (i, frame) in frames.iter().enumerate() {
            out.frames.push(FrameScore {
                time: frame.start,
                rms: scratch.a[i],
                window_std: scratch.b[i],
                active: scratch.c[i] > threshold || scratch.a[i] > rms_threshold,
            });
        }

        // Merge runs of active frames into raw spans ([start, end) frame
        // indices).
        scratch.runs.clear();
        let mut run_start: Option<usize> = None;
        for (i, score) in out.frames.iter().enumerate() {
            match (score.active, run_start) {
                (true, None) => run_start = Some(i),
                (false, Some(s)) => {
                    scratch.runs.push((s, i));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            scratch.runs.push((s, n));
        }

        // Bridge brief lulls: a hand changing direction mid-stroke can dip
        // the window variance for a frame or two, which must not split the
        // stroke. Real adjustment intervals are several frames long.
        let bridge_frames = 2usize;
        scratch.runs2.clear();
        for &span in &scratch.runs {
            match scratch.runs2.last_mut() {
                Some(prev) if span.0 - prev.1 <= bridge_frames => prev.1 = span.1,
                _ => scratch.runs2.push(span),
            }
        }

        // Drop bursts shorter than the minimum stroke length.
        for &(s, e) in &scratch.runs2 {
            if e - s >= self.config.min_stroke_frames {
                out.spans.push(StrokeSpan {
                    start: frames[s].start,
                    end: frames[e - 1].end(),
                });
            } else {
                // Too short: clear the activity flags for honesty in
                // diagnostics.
                for score in &mut out.frames[s..e] {
                    score.active = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::report::{TagId, TagReport};
    use std::f64::consts::TAU;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(1, 3, vec![TagId(0), TagId(1), TagId(2)])
    }

    fn obs(tag: TagId, time: f64, phase: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), -45.0)
    }

    /// Streams quiet except for phase wiggles during [2, 3.5) and [5, 6).
    fn two_stroke_streams() -> TagStreams {
        let mut observations = Vec::new();
        for step in 0..400 {
            let t = step as f64 * 0.02; // 8 s at 50 Hz
            let active = (2.0..3.5).contains(&t) || (5.0..6.0).contains(&t);
            for (i, base) in [(0u64, 1.0), (1, 3.0), (2, 5.0)] {
                let wiggle = if active {
                    0.8 * ((t * 22.0) + i as f64).sin()
                } else {
                    0.01 * ((t * 3.0) + i as f64).sin()
                };
                observations.push(obs(TagId(i), t + i as f64 * 0.001, base + wiggle));
            }
        }
        TagStreams::build(&layout(), None, &observations)
    }

    fn segmenter() -> Segmenter {
        Segmenter::new(RfipadConfig::default())
    }

    #[test]
    fn two_strokes_found() {
        let streams = two_stroke_streams();
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 0.1);
        assert_eq!(seg.spans.len(), 2, "spans {:?}", seg.spans);
        let s0 = seg.spans[0];
        let s1 = seg.spans[1];
        assert!((s0.start - 2.0).abs() < 0.4, "s0 {s0:?}");
        assert!((s0.end - 3.5).abs() < 0.4);
        assert!((s1.start - 5.0).abs() < 0.4, "s1 {s1:?}");
        assert!((s1.end - 6.0).abs() < 0.4);
    }

    #[test]
    fn quiet_streams_have_no_spans() {
        let mut observations = Vec::new();
        for step in 0..200 {
            let t = step as f64 * 0.02;
            for i in 0..3u64 {
                observations.push(obs(TagId(i), t + i as f64 * 0.001, 1.0 + i as f64));
            }
        }
        let streams = TagStreams::build(&layout(), None, &observations);
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 0.1);
        assert!(seg.spans.is_empty(), "{:?}", seg.spans);
    }

    #[test]
    fn short_bursts_dropped() {
        // One 0.1 s twitch (a single frame) must not become a stroke.
        let mut observations = Vec::new();
        for step in 0..300 {
            let t = step as f64 * 0.02;
            let active = (2.0..2.1).contains(&t);
            for i in 0..3u64 {
                let wiggle = if active { 1.0 * (t * 60.0).sin() } else { 0.0 };
                observations.push(obs(TagId(i), t + i as f64 * 0.001, 1.0 + i as f64 + wiggle));
            }
        }
        let streams = TagStreams::build(&layout(), None, &observations);
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 0.1);
        assert!(seg.spans.is_empty(), "{:?}", seg.spans);
    }

    #[test]
    fn frame_scores_cover_run_and_flag_activity() {
        let streams = two_stroke_streams();
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 0.1);
        assert!(!seg.frames.is_empty());
        // Scores rise during strokes.
        let active_std: f64 = seg
            .frames
            .iter()
            .filter(|f| (2.2..3.2).contains(&f.time))
            .map(|f| f.window_std)
            .sum::<f64>();
        let quiet_std: f64 = seg
            .frames
            .iter()
            .filter(|f| (0.5..1.5).contains(&f.time))
            .map(|f| f.window_std)
            .sum::<f64>();
        assert!(active_std > 5.0 * quiet_std);
    }

    #[test]
    fn empty_streams_give_empty_segmentation() {
        let streams = TagStreams::default();
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 0.1);
        assert!(seg.spans.is_empty());
        assert!(seg.frames.is_empty());
    }

    #[test]
    fn span_overlap_math() {
        let a = StrokeSpan {
            start: 1.0,
            end: 2.0,
        };
        let b = StrokeSpan {
            start: 1.5,
            end: 3.0,
        };
        let c = StrokeSpan {
            start: 2.5,
            end: 3.0,
        };
        assert!((a.overlap(&b) - 0.5).abs() < 1e-12);
        assert_eq!(a.overlap(&c), 0.0);
        assert!((a.duration() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_frames_matches_segment_over_prebuilt_frames() {
        let streams = two_stroke_streams();
        let layout = layout();
        let seg = segmenter().segment_with_threshold(&layout, &streams, 0.1);
        let frame_seq = FrameSeq::build(
            &streams.phase_series(&layout),
            streams.start().expect("nonempty"),
            streams.end().expect("nonempty"),
            RfipadConfig::default().frame_len_s,
        );
        let pre = segmenter().segment_frames(&frame_seq, 0.1, f64::INFINITY);
        assert_eq!(pre, seg);
    }

    #[test]
    fn threshold_too_high_misses_strokes() {
        let streams = two_stroke_streams();
        let seg = segmenter().segment_with_threshold(&layout(), &streams, 1e6);
        assert!(seg.spans.is_empty());
    }
}
