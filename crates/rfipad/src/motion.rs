//! Image-assisted motion recognition (§III-A3).
//!
//! The accumulative phase-difference image is binarized (Otsu), reduced to
//! its largest connected component, and classified into one of the seven
//! basic shapes. The primary classifier is *geometric template matching*:
//! each candidate shape is rasterized into the observed extent and the one
//! with the highest normalized correlation against the gray image wins —
//! training-free (templates are pure geometry) and robust to the per-tag
//! fading that leaves parts of a stroke faint. A moments/chord-residual
//! decision tree ([`classify_mask`]) remains as the fallback for images
//! with degenerate extents.

use crate::config::RfipadConfig;
use hand_kinematics::stroke::{default_placement, Stroke, StrokeShape};
use serde::{Deserialize, Serialize};
use sigproc::grid::{BinaryGrid, GridImage};
use std::f64::consts::{FRAC_PI_8, PI};

/// Minimum mean chord residual (grid cells) of the middle section for a
/// component to classify as an arc.
const ARC_BULGE_THRESHOLD: f64 = 0.38;

/// A recognized motion: the shape plus the image evidence it came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecognizedMotion {
    /// The classified shape.
    pub shape: StrokeShape,
    /// Foreground mask after Otsu and largest-component filtering.
    pub mask: BinaryGrid,
    /// Foreground centroid `(row, col)` in grid coordinates.
    pub centroid: (f64, f64),
    /// Foreground bounding box `(min_row, min_col, max_row, max_col)`.
    pub bbox: (usize, usize, usize, usize),
}

/// Classifies accumulative phase-difference images into motions.
#[derive(Debug, Clone, Default)]
pub struct MotionRecognizer {
    config: RfipadConfig,
}

impl MotionRecognizer {
    /// Creates a recognizer with the given configuration.
    pub fn new(config: RfipadConfig) -> Self {
        Self { config }
    }

    /// Recognizes the motion in an accumulative phase-difference image.
    ///
    /// Returns `None` when the image has no classifiable foreground (flat
    /// image, or foreground vanished after component filtering).
    pub fn recognize(&self, image: &GridImage) -> Option<RecognizedMotion> {
        let mask = if self.config.use_otsu {
            image.otsu_binarize()
        } else {
            image.normalized().binarize(self.config.fixed_threshold)
        };
        let component = mask.largest_component();
        if component.area() == 0 {
            return None;
        }
        let shape = classify_by_template(image, &component)
            .map(|(s, _)| s)
            .or_else(|| classify_weighted(image, &component))?;
        let moments = component.moments()?;
        let bbox = component.bounding_box()?;
        Some(RecognizedMotion {
            shape,
            mask: component,
            centroid: moments.centroid,
            bbox,
        })
    }
}

/// Gaussian splat radius (cells) used when rasterizing shape templates —
/// roughly the spatial blur of the hand's RF influence on the 6 cm grid.
const TEMPLATE_SPLAT_SIGMA: f64 = 0.75;

/// Classifies by fitting geometric templates of all plausible shapes into
/// the image's hot region and picking the best normalized correlation.
///
/// Returns the winning shape and its correlation, or `None` when the image
/// has no usable extent.
pub fn classify_by_template(image: &GridImage, mask: &BinaryGrid) -> Option<(StrokeShape, f64)> {
    // Fit region: everything reasonably hot (a quarter of the peak), not
    // just the Otsu mask — faint stroke ends matter for the shape even when
    // binarization drops them.
    let peak = sigproc::stats::max(image.data());
    if !peak.is_finite() || peak <= 0.0 {
        return None;
    }
    // The fit region is the mask plus hot cells *touching* it — faint
    // stroke ends matter for the shape, but an isolated hot outlier
    // elsewhere must not stretch the region.
    let near_mask = |r: usize, c: usize| -> bool {
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                let nr = r as i64 + dr;
                let nc = c as i64 + dc;
                if nr >= 0
                    && nc >= 0
                    && (nr as usize) < mask.rows()
                    && (nc as usize) < mask.cols()
                    && mask.get(nr as usize, nc as usize)
                {
                    return true;
                }
            }
        }
        false
    };
    let mut min_r = usize::MAX;
    let mut max_r = 0usize;
    let mut min_c = usize::MAX;
    let mut max_c = 0usize;
    for r in 0..image.rows() {
        for c in 0..image.cols() {
            let hot_extension = image.get(r, c) >= 0.25 * peak && near_mask(r, c);
            if mask.get(r, c) || hot_extension {
                min_r = min_r.min(r);
                max_r = max_r.max(r);
                min_c = min_c.min(c);
                max_c = max_c.max(c);
            }
        }
    }
    if min_r == usize::MAX {
        return None;
    }
    let h = max_r - min_r + 1;
    let w = max_c - min_c + 1;

    // Candidate gating by extent: a 1×2 blob cannot be an arc, a one-row
    // region cannot be a vertical bar. Click candidacy keys on the Otsu
    // mask's own bounding box (a push lights at most a 2×2 neighbourhood);
    // the halo-expanded region may be one cell larger.
    let mut candidates: Vec<StrokeShape> = Vec::new();
    let mask_compact = mask
        .bounding_box()
        .map(|(r0, c0, r1, c1)| r1 - r0 <= 1 && c1 - c0 <= 1)
        .unwrap_or(false);
    if mask_compact && h <= 3 && w <= 3 {
        candidates.push(StrokeShape::Click);
    }
    if w >= 3 && h <= 2 {
        candidates.push(StrokeShape::HLine);
    }
    if h >= 3 && w <= 2 {
        candidates.push(StrokeShape::VLine);
    }
    if h >= 3 && w >= 3 {
        candidates.extend([
            StrokeShape::HLine,
            StrokeShape::VLine,
            StrokeShape::Slash,
            StrokeShape::Backslash,
            StrokeShape::ArcLeft,
            StrokeShape::ArcRight,
        ]);
    } else if h >= 2 && w >= 2 && candidates.len() <= 1 {
        candidates.extend([StrokeShape::Slash, StrokeShape::Backslash]);
    }
    if candidates.is_empty() {
        return None;
    }

    let region = (min_r, min_c, max_r, max_c);
    candidates.sort_unstable();
    candidates.dedup();
    candidates
        .into_iter()
        .map(|shape| {
            let corr = template_variants(shape)
                .iter()
                .map(|p| {
                    let template = placement_template(p, region, image.rows(), image.cols());
                    pearson_correlation(image, &template)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            (shape, corr)
        })
        .filter(|(_, corr)| corr.is_finite())
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite correlations"))
}

/// Canonical placements a shape's template is rasterized from (currently
/// one per shape; the region mapping adapts it to the observed extent).
fn template_variants(shape: StrokeShape) -> Vec<hand_kinematics::stroke::PlacedStroke> {
    vec![default_placement(Stroke::new(shape))]
}

/// One observed point of the temporal hand path: where the intensity
/// centroid sat at a given fraction of the stroke span.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathSample {
    /// Fraction of the stroke span (0 = start, 1 = end).
    pub frac: f64,
    /// Centroid `(row, col)` in grid coordinates.
    pub point: (f64, f64),
}

/// Rasterizes a placed stroke's path into the given region as a sum of
/// Gaussian splats.
fn placement_template(
    placement: &hand_kinematics::stroke::PlacedStroke,
    region: (usize, usize, usize, usize),
    rows: usize,
    cols: usize,
) -> GridImage {
    let (min_r, min_c, max_r, max_c) = region;
    let mut img = GridImage::zeros(rows, cols);
    if placement.stroke.shape == StrokeShape::Click {
        splat(
            &mut img,
            0.5 * (min_r + max_r) as f64,
            0.5 * (min_c + max_c) as f64,
        );
        return img;
    }
    let wp = placement.waypoints();
    // Normalize the canonical way-points to their own bounding box…
    let lo_r = wp.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let hi_r = wp.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let lo_c = wp.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
    let hi_c = wp.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let norm = |v: f64, lo: f64, hi: f64| if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
    // …then map them into the observed region and splat along the path.
    let mapped: Vec<(f64, f64)> = wp
        .iter()
        .map(|&(r, c)| {
            (
                min_r as f64 + norm(r, lo_r, hi_r) * (max_r - min_r) as f64,
                min_c as f64 + norm(c, lo_c, hi_c) * (max_c - min_c) as f64,
            )
        })
        .collect();
    for seg in mapped.windows(2) {
        let steps = 8;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let r = seg[0].0 + t * (seg[1].0 - seg[0].0);
            let c = seg[0].1 + t * (seg[1].1 - seg[0].1);
            splat(&mut img, r, c);
        }
    }
    img
}

fn splat(img: &mut GridImage, row: f64, col: f64) {
    let two_sigma2 = 2.0 * TEMPLATE_SPLAT_SIGMA * TEMPLATE_SPLAT_SIGMA;
    let cols = img.cols();
    for (r, cells) in img.data_mut().chunks_exact_mut(cols).enumerate() {
        let dr = r as f64 - row;
        for (c, cell) in cells.iter_mut().enumerate() {
            let dc = c as f64 - col;
            *cell += (-(dr * dr + dc * dc) / two_sigma2).exp();
        }
    }
}

/// Classifies a coarse hand path — e.g. the intensity centroids of the
/// early / middle / late thirds of a stroke span — into a directed stroke.
///
/// This exploits what the paper calls "combining reported tag IDs and
/// timestamps": the *order* in which tags are disturbed traces the pen
/// path, which separates arcs from lines far more robustly than the static
/// image alone, and yields the travel direction as a by-product.
///
/// Returns `(shape, reversed)`, or `None` for an empty path.
pub fn classify_path(points: &[(f64, f64)]) -> Option<(StrokeShape, bool)> {
    // Fewer than three centroids cannot distinguish click/line/arc — the
    // caller falls back to image-only classification.
    if points.len() < 3 {
        return None;
    }
    let p0 = *points.first().expect("nonempty");
    let p2 = *points.last().expect("nonempty");
    let travel = (p2.0 - p0.0, p2.1 - p0.1);
    let chord = (travel.0 * travel.0 + travel.1 * travel.1).sqrt();

    // A push toward one tag barely moves the centroid. (Sub-window
    // averaging compresses a real stroke's chord to roughly half its
    // geometric travel, so the click ceiling must stay well below that.)
    if chord < 0.55 && path_extent(points) < 0.9 {
        return Some((StrokeShape::Click, false));
    }

    // Largest perpendicular offset of any interior point from the chord,
    // requiring majority sign agreement so jitter on short lines does not
    // fake a bow.
    let perp = (-travel.1 / chord, travel.0 / chord);
    let mid = (0.5 * (p0.0 + p2.0), 0.5 * (p0.1 + p2.1));
    let interior: Vec<f64> = points[1..points.len().saturating_sub(1)]
        .iter()
        .map(|p| (p.0 - mid.0) * perp.0 + (p.1 - mid.1) * perp.1)
        .collect();
    let off = interior
        .iter()
        .fold(0.0f64, |acc, &o| if o.abs() > acc.abs() { o } else { acc });
    let agree = interior
        .iter()
        .filter(|o| o.signum() == off.signum())
        .count() as f64;
    let consistent = !interior.is_empty() && agree >= 0.6 * interior.len() as f64;
    // More interior points = more trustworthy bow estimate = lower bar.
    let arc_threshold = if interior.len() >= 2 { 0.38 } else { 0.42 };

    if consistent && off.abs() >= arc_threshold && chord >= 1.2 {
        // Arc. The shape (⊂ vs ⊃) is a *spatial* property of the bulge:
        // for vertical-ish chords, a bulge toward smaller columns is ⊂;
        // for horizontal-ish chords (the cup of a U) a downward bulge is ⊂
        // (see `hand_kinematics::stroke`). The travel direction relative to
        // the canonical one sets `reversed`.
        let bulge = (off * perp.0, off * perp.1); // spatial bulge vector
        let vertical_chord = travel.0.abs() >= travel.1.abs();
        let (shape, reversed) = if vertical_chord {
            let arc_left = bulge.1 < 0.0;
            (
                if arc_left {
                    StrokeShape::ArcLeft
                } else {
                    StrokeShape::ArcRight
                },
                travel.0 < 0.0,
            )
        } else {
            let arc_left = bulge.0 > 0.0;
            (
                if arc_left {
                    StrokeShape::ArcLeft
                } else {
                    StrokeShape::ArcRight
                },
                travel.1 < 0.0,
            )
        };
        return Some((shape, reversed));
    }

    // Line orientation with asymmetric bands: letters drawn on a pad are
    // much taller than wide, so their diagonals run steep (a V's arm is
    // ≈ 65–70° off horizontal). The vertical band therefore starts at 72°
    // and the horizontal one ends at 20°, with diagonals between.
    let (dr, dc) = travel;
    const TAN_HORIZONTAL: f64 = 0.364; // tan 20°
    const TAN_VERTICAL: f64 = 0.325; // tan(90° − 72°)
    let (shape, reversed) = if dr.abs() <= TAN_HORIZONTAL * dc.abs() {
        (StrokeShape::HLine, dc < 0.0)
    } else if dc.abs() <= TAN_VERTICAL * dr.abs() {
        (StrokeShape::VLine, dr < 0.0)
    } else if dr.signum() == dc.signum() {
        (StrokeShape::Backslash, dr < 0.0)
    } else {
        (StrokeShape::Slash, dr > 0.0)
    };
    Some((shape, reversed))
}

fn path_extent(points: &[(f64, f64)]) -> f64 {
    let mut max_d: f64 = 0.0;
    for a in points {
        for b in points {
            let d = ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
            max_d = max_d.max(d);
        }
    }
    max_d
}

/// Pearson correlation between two images over all cells.
fn pearson_correlation(a: &GridImage, b: &GridImage) -> f64 {
    let n = a.data().len() as f64;
    let mean_a = a.data().iter().sum::<f64>() / n;
    let mean_b = b.data().iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return f64::NEG_INFINITY;
    }
    cov / (var_a * var_b).sqrt()
}

/// Classifies a clean foreground mask into a stroke shape, weighting every
/// cell equally. Tests and the no-image path use this; the recognizer
/// itself uses [`classify_weighted`], which exploits the gray image's
/// sub-cell resolution.
pub fn classify_mask(mask: &BinaryGrid) -> Option<StrokeShape> {
    let weights: Vec<((usize, usize), f64)> =
        mask.foreground().into_iter().map(|c| (c, 1.0)).collect();
    classify_cells(mask, &weights)
}

/// Classifies a foreground mask using the gray image's intensities as cell
/// weights. Intensity-weighted geometry resolves shapes at sub-cell
/// accuracy — on a 5×5 pad a bowl's bulge is often less than one whole
/// cell, invisible to binary masks but clear in the intensity pattern.
pub fn classify_weighted(image: &GridImage, mask: &BinaryGrid) -> Option<StrokeShape> {
    let weights: Vec<((usize, usize), f64)> = mask
        .foreground()
        .into_iter()
        .map(|(r, c)| ((r, c), image.get(r, c).max(0.0)))
        .collect();
    classify_cells(mask, &weights)
}

/// Decision procedure: compact blob → click; strong off-chord bulge → arc
/// (side of the bulge gives ⊂ vs ⊃); otherwise a line by principal-axis
/// orientation. `cells` supplies per-cell weights.
fn classify_cells(mask: &BinaryGrid, cells: &[((usize, usize), f64)]) -> Option<StrokeShape> {
    let (min_r, min_c, max_r, max_c) = mask.bounding_box()?;
    let h = max_r - min_r + 1;
    let w = max_c - min_c + 1;

    if h <= 2 && w <= 2 {
        return Some(StrokeShape::Click);
    }

    // Chord-residual concavity. Fit the minor coordinate as a linear
    // function of the major one; arcs leave a consistent one-sided residual
    // in the middle of the major span.
    let vertical_major = h >= w;
    let triples: Vec<(f64, f64, f64)> = cells
        .iter()
        .map(|&((r, c), wt)| {
            if vertical_major {
                (r as f64, c as f64, wt)
            } else {
                (c as f64, r as f64, wt)
            }
        })
        .collect();
    if let Some(bulge) = middle_residual(&triples) {
        if bulge.abs() >= ARC_BULGE_THRESHOLD {
            // `bulge` is in the minor axis. For a vertical chord the minor
            // axis is the column: negative → bulge left → ⊂.
            // For a horizontal chord the minor axis is the row: a downward
            // bulge (positive) is the cup of a ⊂ drawn over a sideways
            // chord (see `hand_kinematics::stroke`), an upward bulge a ⊃.
            let arc_left = if vertical_major {
                bulge < 0.0
            } else {
                bulge > 0.0
            };
            return Some(if arc_left {
                StrokeShape::ArcLeft
            } else {
                StrokeShape::ArcRight
            });
        }
    }

    let theta = weighted_orientation(cells)?;
    // Letter diagonals on a 5×5 pad are steep (a V's arm is only ≈ 65° off
    // horizontal), so the vertical band starts above the symmetric 67.5°.
    const VERTICAL_BOUNDARY: f64 = 72.0 * PI / 180.0;
    Some(if theta.abs() <= FRAC_PI_8 {
        StrokeShape::HLine
    } else if theta.abs() >= VERTICAL_BOUNDARY {
        StrokeShape::VLine
    } else if theta > 0.0 {
        StrokeShape::Backslash
    } else {
        StrokeShape::Slash
    })
}

/// Principal-axis orientation of weighted cells, measured from the +column
/// axis toward +row, in `(-π/2, π/2]`.
fn weighted_orientation(cells: &[((usize, usize), f64)]) -> Option<f64> {
    let total: f64 = cells.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let cr = cells.iter().map(|&((r, _), w)| r as f64 * w).sum::<f64>() / total;
    let cc = cells.iter().map(|&((_, c), w)| c as f64 * w).sum::<f64>() / total;
    let mut mu_rr = 0.0;
    let mut mu_cc = 0.0;
    let mut mu_rc = 0.0;
    for &((r, c), w) in cells {
        let dr = r as f64 - cr;
        let dc = c as f64 - cc;
        mu_rr += w * dr * dr;
        mu_cc += w * dc * dc;
        mu_rc += w * dr * dc;
    }
    let num = 2.0 * mu_rc;
    let den = mu_cc - mu_rr;
    if num.abs() < 1e-12 && den.abs() < 1e-12 {
        return Some(0.0);
    }
    Some(0.5 * num.atan2(den))
}

/// Weighted mean signed residual of the middle third of the major-axis span
/// after a weighted least-squares fit `minor = a + b·major`. `None` when
/// the fit is degenerate (all mass at one major coordinate).
fn middle_residual(triples: &[(f64, f64, f64)]) -> Option<f64> {
    if triples.len() < 3 {
        return None;
    }
    let total_w: f64 = triples.iter().map(|t| t.2).sum();
    if total_w <= 0.0 {
        return None;
    }
    let mean_x = triples.iter().map(|t| t.0 * t.2).sum::<f64>() / total_w;
    let mean_y = triples.iter().map(|t| t.1 * t.2).sum::<f64>() / total_w;
    let var_x: f64 = triples
        .iter()
        .map(|t| t.2 * (t.0 - mean_x) * (t.0 - mean_x))
        .sum();
    if var_x < 1e-9 {
        return None;
    }
    let cov: f64 = triples
        .iter()
        .map(|t| t.2 * (t.0 - mean_x) * (t.1 - mean_y))
        .sum();
    let b = cov / var_x;
    let a = mean_y - b * mean_x;

    let lo = triples.iter().map(|t| t.0).fold(f64::INFINITY, f64::min);
    let hi = triples
        .iter()
        .map(|t| t.0)
        .fold(f64::NEG_INFINITY, f64::max);
    let third = (hi - lo) / 3.0;
    let mut sum = 0.0;
    let mut weight = 0.0;
    for &(x, y, wt) in triples {
        if x >= lo + third && x <= hi - third {
            sum += wt * (y - (a + b * x));
            weight += wt;
        }
    }
    (weight > 0.0).then(|| sum / weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from(rows: &[&str]) -> BinaryGrid {
        let r = rows.len();
        let c = rows[0].len();
        let mut mask = Vec::with_capacity(r * c);
        for row in rows {
            for ch in row.chars() {
                mask.push(ch == '#');
            }
        }
        BinaryGrid::from_mask(r, c, mask)
    }

    #[test]
    fn vertical_line_classified() {
        let m = mask_from(&["..#..", "..#..", "..#..", "..#..", "..#.."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::VLine));
    }

    #[test]
    fn horizontal_line_classified() {
        let m = mask_from(&[".....", ".....", "#####", ".....", "....."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::HLine));
    }

    #[test]
    fn backslash_classified() {
        let m = mask_from(&["#....", ".#...", "..#..", "...#.", "....#"]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::Backslash));
    }

    #[test]
    fn slash_classified() {
        let m = mask_from(&["....#", "...#.", "..#..", ".#...", "#...."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::Slash));
    }

    #[test]
    fn click_classified() {
        let m = mask_from(&[".....", ".....", "..#..", ".....", "....."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::Click));
        let blob = mask_from(&[".....", ".##..", ".##..", ".....", "....."]);
        assert_eq!(classify_mask(&blob), Some(StrokeShape::Click));
    }

    #[test]
    fn arc_left_classified() {
        // A "C": openings to the right, bulge to the left.
        let m = mask_from(&["..##.", ".#...", ".#...", ".#...", "..##."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::ArcLeft));
    }

    #[test]
    fn arc_right_classified() {
        let m = mask_from(&[".##..", "...#.", "...#.", "...#.", ".##.."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::ArcRight));
    }

    #[test]
    fn thick_vertical_line_still_a_line() {
        // Two-column-wide bar: elongated, no bulge.
        let m = mask_from(&[".##..", ".##..", ".##..", ".##..", ".##.."]);
        assert_eq!(classify_mask(&m), Some(StrokeShape::VLine));
    }

    #[test]
    fn empty_mask_unclassifiable() {
        let m = BinaryGrid::empty(5, 5);
        assert_eq!(classify_mask(&m), None);
    }

    #[test]
    fn recognizer_runs_otsu_and_component_filter() {
        // Hot column 2 plus one isolated noisy pixel far away and much
        // dimmer; recognition must see the column.
        let mut img = GridImage::zeros(5, 5);
        for r in 0..5 {
            img.set(r, 2, 8.0 + r as f64 * 0.1);
        }
        img.set(0, 4, 4.0); // mid-level outlier
        let rec = MotionRecognizer::new(RfipadConfig::default());
        let motion = rec.recognize(&img).expect("foreground");
        assert_eq!(motion.shape, StrokeShape::VLine);
        assert!((motion.centroid.1 - 2.0).abs() < 0.5);
    }

    #[test]
    fn recognizer_handles_flat_image() {
        let img = GridImage::zeros(5, 5);
        let rec = MotionRecognizer::new(RfipadConfig::default());
        assert!(rec.recognize(&img).is_none());
    }

    #[test]
    fn fixed_threshold_mode() {
        let mut img = GridImage::zeros(5, 5);
        for c in 0..5 {
            img.set(2, c, 10.0);
        }
        let config = RfipadConfig {
            use_otsu: false,
            fixed_threshold: 0.5,
            ..RfipadConfig::default()
        };
        let rec = MotionRecognizer::new(config);
        assert_eq!(rec.recognize(&img).expect("fg").shape, StrokeShape::HLine);
    }

    #[test]
    fn u_cup_detected_as_arc_on_horizontal_chord() {
        // Horizontal chord with downward bulge (the cup of a U): ArcLeft by
        // our convention.
        let m = mask_from(&[".....", "#...#", "#...#", ".#.#.", "..#.."]);
        // Height 4, width 5 → horizontal major axis; bulge downward
        // (positive row residual in the middle columns).
        assert_eq!(classify_mask(&m), Some(StrokeShape::ArcLeft));
    }
}

#[cfg(test)]
mod path_tests {
    use super::*;

    #[test]
    fn straight_paths_classify_as_directed_lines() {
        // Rightward sweep.
        let p = [(2.0, 0.5), (2.0, 1.5), (2.0, 2.5), (2.0, 3.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::HLine, false)));
        // Leftward.
        let p: Vec<(f64, f64)> = p.iter().rev().copied().collect();
        assert_eq!(classify_path(&p), Some((StrokeShape::HLine, true)));
        // Downward.
        let p = [(0.5, 2.0), (1.5, 2.0), (2.5, 2.0), (3.5, 2.0)];
        assert_eq!(classify_path(&p), Some((StrokeShape::VLine, false)));
        // Up-right = slash forward.
        let p = [(3.5, 0.5), (2.5, 1.5), (1.5, 2.5), (0.5, 3.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::Slash, false)));
        // Down-right = backslash forward.
        let p = [(0.5, 0.5), (1.5, 1.5), (2.5, 2.5), (3.5, 3.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::Backslash, false)));
    }

    #[test]
    fn bowed_paths_classify_as_arcs_with_spatial_side() {
        // Downward travel bulging left (smaller columns): a ⊂.
        let p = [(0.0, 2.5), (1.0, 1.2), (2.0, 0.9), (3.0, 1.2), (4.0, 2.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::ArcLeft, false)));
        // Same shape drawn bottom-up is still a ⊂, reversed.
        let rev: Vec<(f64, f64)> = p.iter().rev().copied().collect();
        assert_eq!(classify_path(&rev), Some((StrokeShape::ArcLeft, true)));
        // Downward bulging right: a ⊃.
        let p = [(0.0, 1.5), (1.0, 2.8), (2.0, 3.1), (3.0, 2.8), (4.0, 1.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::ArcRight, false)));
    }

    #[test]
    fn horizontal_chord_cup_is_arc_left() {
        // Left-to-right travel bulging downward (larger rows): U's cup = ⊂
        // by the workspace convention.
        let p = [(1.0, 0.5), (2.2, 1.5), (2.5, 2.0), (2.2, 2.5), (1.0, 3.5)];
        assert_eq!(classify_path(&p), Some((StrokeShape::ArcLeft, false)));
    }

    #[test]
    fn stationary_path_is_click() {
        let p = [(2.0, 2.0), (2.1, 2.05), (1.95, 2.0)];
        assert_eq!(classify_path(&p), Some((StrokeShape::Click, false)));
    }

    #[test]
    fn too_few_points_is_none() {
        assert_eq!(classify_path(&[]), None);
        assert_eq!(classify_path(&[(1.0, 1.0)]), None);
        assert_eq!(classify_path(&[(1.0, 1.0), (2.0, 2.0)]), None);
    }

    #[test]
    fn inconsistent_bow_stays_a_line() {
        // Interior points alternating on both sides of the chord: jitter
        // on a line, not an arc (arc verdicts need ≥60% sign agreement).
        let p = [
            (0.0, 2.0),
            (0.8, 2.5),
            (1.6, 1.5),
            (2.4, 2.4),
            (3.2, 1.6),
            (4.0, 2.0),
        ];
        let (shape, _) = classify_path(&p).expect("classifiable");
        assert_eq!(shape, StrokeShape::VLine);
    }
}
