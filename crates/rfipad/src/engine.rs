//! Concurrent multi-session ingest engine.
//!
//! A deployment serves many pads at once: several kiosks replay live
//! antenna streams, an operator replays recorded traces, and all of them
//! multiplex onto one process. This module turns the single-stream
//! [`OnlinePipeline`] into a serving engine: each *session* owns the
//! pipeline's [`StageGraph`], reports flow in over a bounded queue with
//! an explicit [`Backpressure`] policy, and a small worker pool drains
//! the queues.
//!
//! Sessions are also *migratable*: [`SessionHandle::checkpoint`] freezes
//! a session's mid-stream recognition state into a serializable
//! [`SessionCheckpoint`], and [`Engine::restore_session`] resumes it —
//! on this engine or another — so the remainder of the stream produces
//! exactly the events the uninterrupted session would have.
//!
//! Determinism is preserved per session: a session is only ever drained by
//! the one worker it was assigned to, and never by two threads at once, so
//! its pipeline consumes reports in exactly the order they were fed. With
//! [`Backpressure::Block`] (no drops), a session's recognitions are
//! bit-identical to running the same reports through [`OnlinePipeline`]
//! directly — modulo wall-clock response times, which
//! [`normalize_events`] strips for comparison.
//!
//! # Example
//!
//! ```no_run
//! # fn demo(pipeline: rfipad::OnlinePipeline,
//! #         reports: Vec<rfid_gen2::report::TagReport>)
//! #         -> Result<(), rfipad::RfipadError> {
//! let engine = rfipad::engine::Engine::builder().workers(4).build()?;
//! let session = engine.open_session("kiosk-a", pipeline)?;
//! for report in reports {
//!     session.ingest(report)?;
//! }
//! let events = session.close()?;
//! # let _ = events; Ok(())
//! # }
//! ```

use crate::error::RfipadError;
use crate::pipeline::{OnlinePipeline, PipelineEvent};
use crate::stage::{PipelineCheckpoint, StageGraph};
use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use rfid_gen2::report::{ReportBatch, TagReport};
use rfid_gen2::source::ReportSource;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Batch size [`Engine::ingest`] uses when draining a source: large
/// enough to amortize the per-item queue and telemetry costs, small
/// enough that a batch stays cache-resident and recognition latency stays
/// sub-batch.
pub const DEFAULT_INGEST_BATCH: usize = 64;

/// What one `ingest` call did, as seen by the caller: how many reports it
/// put on the session queue and how many *previously queued* reports it
/// had to evict to make room (only ever non-zero under
/// [`Backpressure::DropOldest`]). Receipts add, so a serving loop can
/// accumulate one per session or per connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestReceipt {
    /// Reports this call enqueued for recognition.
    pub accepted: u64,
    /// Reports this call evicted from the queue to make room. They may
    /// belong to earlier batches; each is also counted in
    /// [`SessionStats::reports_dropped`].
    pub dropped: u64,
}

impl IngestReceipt {
    /// Folds another receipt into this one (both tallies add).
    pub fn absorb(&mut self, other: IngestReceipt) {
        self.accepted += other.accepted;
        self.dropped += other.dropped;
    }
}

impl std::ops::Add for IngestReceipt {
    type Output = IngestReceipt;
    fn add(mut self, other: IngestReceipt) -> IngestReceipt {
        self.absorb(other);
        self
    }
}

impl std::ops::AddAssign for IngestReceipt {
    fn add_assign(&mut self, other: IngestReceipt) {
        self.absorb(other);
    }
}

/// What [`SessionHandle::ingest`] does when a session's bounded queue is
/// full — the engine's explicit backpressure policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Backpressure {
    /// Block the feeder until the worker frees space (lossless; the
    /// default). Replays and determinism checks want this.
    #[default]
    Block,
    /// Drop the oldest queued report to make room (lossy, counted in
    /// [`SessionStats::reports_dropped`]). Live feeds that must never
    /// stall the reader loop want this.
    DropOldest,
}

/// Engine tuning knobs. Start from [`EngineConfig::default`] and override
/// fields by assignment, or use [`Engine::builder`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Worker threads draining session queues. `0` means one per available
    /// core.
    pub workers: usize,
    /// Per-session queue capacity, in queued *items*: one
    /// [`SessionHandle::ingest`] report or one
    /// [`SessionHandle::ingest_batch`] batch each occupy a single slot.
    pub queue_capacity: usize,
    /// What a full queue does to the feeder.
    pub backpressure: Backpressure,
    /// [`Engine::sweep_idle`] evicts a session once it has been idle for
    /// this multiple of its pipeline's letter gap (wall-clock seconds).
    /// `f64::INFINITY` disables eviction.
    pub idle_eviction_factor: f64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            idle_eviction_factor: 20.0,
        }
    }
}

/// Validating builder for [`Engine`].
#[derive(Debug, Clone, Default)]
#[must_use = "call .build() to start the engine"]
pub struct EngineBuilder {
    config: EngineConfig,
    metrics_addr: Option<String>,
}

impl EngineBuilder {
    /// Worker threads draining session queues (default: one per available
    /// core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Per-session queue capacity in reports (default 1024).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Backpressure policy for full session queues (default
    /// [`Backpressure::Block`]).
    pub fn backpressure(mut self, policy: Backpressure) -> Self {
        self.config.backpressure = policy;
        self
    }

    /// Idle-eviction threshold as a multiple of each session's letter gap
    /// (default 20; `f64::INFINITY` disables eviction).
    pub fn idle_eviction_factor(mut self, factor: f64) -> Self {
        self.config.idle_eviction_factor = factor;
        self
    }

    /// Serve the process-global metrics registry over HTTP on `addr`
    /// (e.g. `"127.0.0.1:9184"`; port 0 picks an ephemeral port). Off by
    /// default. `GET /metrics` returns Prometheus text exposition,
    /// `GET /stats.json` the engine's JSON snapshot, `GET /healthz` /
    /// `GET /readyz` answer liveness and readiness probes (`/readyz` is
    /// 503 while shutting down or while a session queue is saturated),
    /// `GET /debug/journal` dumps the recent log journal, and
    /// `GET /debug/trace/<session>` dumps a session's flight recorder.
    /// The endpoint is unauthenticated — bind it to loopback unless the
    /// network is trusted (see DESIGN.md §Observability).
    pub fn metrics_addr(mut self, addr: impl Into<String>) -> Self {
        self.metrics_addr = Some(addr.into());
        self
    }

    /// Validates the configuration, spawns the worker pool, and returns
    /// the running engine.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if `queue_capacity` is zero,
    /// `idle_eviction_factor` is not positive, or the metrics endpoint
    /// fails to bind.
    pub fn build(self) -> Result<Engine, RfipadError> {
        let mut config = self.config;
        if config.queue_capacity == 0 {
            return Err(RfipadError::invalid_field(
                "EngineBuilder",
                "queue_capacity",
                "must be at least 1",
            ));
        }
        if config.idle_eviction_factor.is_nan() || config.idle_eviction_factor <= 0.0 {
            return Err(RfipadError::invalid_field(
                "EngineBuilder",
                "idle_eviction_factor",
                format!("must be positive, got {}", config.idle_eviction_factor),
            ));
        }
        if config.workers == 0 {
            config.workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
        }
        let mut engine = Engine::start(config);
        if let Some(addr) = self.metrics_addr {
            let shared = Arc::clone(&engine.shared);
            let render: obs::serve::RenderFn =
                Arc::new(move |format| render_metrics(&shared, format));
            let routes_shared = Arc::clone(&engine.shared);
            let routes: obs::serve::RouteFn =
                Arc::new(move |path| probe_routes(&routes_shared, path));
            let server = obs::serve::serve_routes(&addr, render, routes).map_err(|e| {
                RfipadError::invalid_field(
                    "EngineBuilder",
                    "metrics_addr",
                    format!("bind failed on {addr}: {e}"),
                )
            })?;
            obs::info!("metrics endpoint listening"; addr = server.addr());
            engine.metrics = Some(server);
        }
        Ok(engine)
    }
}

/// Counters shared by one session (and, through a second copy, by the
/// whole engine). Relaxed ordering: they are monotone tallies, never used
/// for synchronization.
#[derive(Default)]
struct Counters {
    reports_in: AtomicU64,
    reports_dropped: AtomicU64,
    events_out: AtomicU64,
}

/// Per-session push-latency window, backed by the shared observability
/// histogram: an *unregistered* [`obs::Histogram`] keeps the exact
/// per-session percentile window (same sliding window and percentile
/// formula as before the obs migration), while the process-global
/// `rfipad_engine_push_latency_ns` family aggregates across sessions.
///
/// Latencies are recorded in *nanoseconds*: single-report pushes routinely
/// finish in a few hundred nanoseconds, which microsecond resolution
/// flattened to a meaningless `p50 = 0`.
#[derive(Debug)]
struct LatencyRecorder {
    hist: obs::Histogram,
}

impl LatencyRecorder {
    fn new() -> Self {
        Self {
            hist: obs::Histogram::new(obs::metrics::DEFAULT_DURATION_BOUNDS_NS),
        }
    }

    fn record(&self, elapsed: Duration) {
        self.hist.record_duration_ns(elapsed);
    }

    fn snapshot(&self) -> LatencySnapshot {
        let snap = self.hist.snapshot();
        LatencySnapshot {
            count: snap.count,
            p50_ns: snap.p50,
            p99_ns: snap.p99,
            max_ns: snap.max,
        }
    }
}

/// Percentiles over the most recent push latencies of a session
/// (nanoseconds, over a sliding window of the last 4096 pushes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Pushes measured over the session's lifetime.
    pub count: u64,
    /// Median push latency, ns.
    pub p50_ns: u64,
    /// 99th-percentile push latency, ns.
    pub p99_ns: u64,
    /// Worst push latency seen over the lifetime, ns.
    pub max_ns: u64,
}

/// Mutable per-session state, only ever touched under its mutex.
struct SessionState {
    graph: StageGraph,
    events: Vec<PipelineEvent>,
    latency: LatencyRecorder,
    /// Event scratch reused across drains, so the worker hands events to
    /// the graph's `push_into`/`push_batch` without allocating per item.
    scratch: Vec<PipelineEvent>,
    /// Reports the worker has pushed through the graph, incremented under
    /// this lock. [`SessionHandle::checkpoint`] compares it against the
    /// feed counters to know when the session has quiesced: the queue
    /// being empty is not enough, because the worker pops an item *before*
    /// taking this lock.
    processed: u64,
}

/// One slot in a session's queue: a single fed report, or a whole batch.
/// Queue capacity and depth count items, so batching widens the queue's
/// effective report capacity by the batch size — that is the amortization:
/// one channel round-trip, one lock acquisition, and one latency record
/// cover the whole batch.
struct QueueItem {
    payload: QueuePayload,
    /// Enqueue stamp for the `rfipad_hop_seconds{hop=queue}` wait
    /// measurement; `None` with telemetry off, so a dark replay never
    /// reads the clock on the feed path.
    enqueued: Option<Instant>,
}

enum QueuePayload {
    One(TagReport),
    Batch(ReportBatch),
}

impl QueueItem {
    fn one(report: TagReport) -> Self {
        Self {
            payload: QueuePayload::One(report),
            enqueued: obs::telemetry_on().then(Instant::now),
        }
    }

    fn batch(batch: ReportBatch) -> Self {
        Self {
            payload: QueuePayload::Batch(batch),
            enqueued: obs::telemetry_on().then(Instant::now),
        }
    }

    /// Reports carried by the item (for drop accounting).
    fn reports(&self) -> usize {
        match &self.payload {
            QueuePayload::One(_) => 1,
            QueuePayload::Batch(b) => b.len(),
        }
    }
}

/// One open session. Shared between its handle, the engine's session map,
/// and the worker currently draining it.
struct SessionInner {
    id: String,
    /// Index of the one worker allowed to drain this session — the
    /// single-consumer guarantee behind per-session determinism.
    worker: usize,
    /// The session's letter gap, copied out so eviction never needs the
    /// state lock.
    letter_gap_s: f64,
    queue_tx: Sender<QueueItem>,
    queue_rx: Receiver<QueueItem>,
    /// Wakeup token: set by whoever enqueues the session into its worker's
    /// mailbox, cleared by the worker when it believes the queue is empty.
    /// The set-check-reset dance guarantees the session is in at most one
    /// mailbox at a time and that no report is left behind.
    scheduled: AtomicBool,
    /// No further feeds accepted (close or eviction started).
    closed: AtomicBool,
    /// The worker should flush the pipeline once the queue is empty.
    finishing: AtomicBool,
    /// The pipeline has been flushed; set under the state lock.
    finished: AtomicBool,
    /// Micros since engine start of the most recent feed, for idle
    /// eviction.
    last_fed_us: AtomicU64,
    counters: Counters,
    state: Mutex<SessionState>,
    /// Signalled (under the state lock) when `finished` flips true.
    done: Condvar,
}

/// Engine state shared by handles and workers.
struct Shared {
    config: EngineConfig,
    epoch: Instant,
    down: AtomicBool,
    sessions: Mutex<HashMap<String, Arc<SessionInner>>>,
    /// One mailbox per worker; cleared on shutdown so workers exit.
    mailboxes: Mutex<Vec<Sender<Arc<SessionInner>>>>,
    next_worker: AtomicUsize,
    totals: Counters,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_evicted: AtomicU64,
}

/// Enqueues the session into its worker's mailbox unless it is already
/// scheduled.
fn schedule(shared: &Shared, sess: &Arc<SessionInner>) -> Result<(), RfipadError> {
    if sess
        .scheduled
        .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
        .is_err()
    {
        return Ok(()); // already queued or being drained; the worker re-checks
    }
    let mailboxes = shared.mailboxes.lock().expect("engine mailboxes poisoned");
    match mailboxes.get(sess.worker) {
        Some(tx) if tx.send(Arc::clone(sess)).is_ok() => Ok(()),
        _ => {
            sess.scheduled.store(false, Ordering::SeqCst);
            Err(RfipadError::EngineDown)
        }
    }
}

/// Processes everything currently queued for a session, then flushes the
/// pipeline if a close or eviction asked for it.
fn drain_session(shared: &Shared, sess: &SessionInner) {
    let em = crate::telemetry::engine_metrics();
    while let Ok(item) = sess.queue_rx.try_recv() {
        let queue_wait = item.enqueued.map(|at| at.elapsed());
        let t0 = Instant::now();
        let n_in = item.reports() as u64;
        let mut state = sess.state.lock().expect("session state poisoned");
        if let Some(wait) = queue_wait {
            record_queue_hop(&state, wait);
        }
        let SessionState { graph, scratch, .. } = &mut *state;
        match item.payload {
            QueuePayload::One(report) => graph.push_into(report, scratch),
            QueuePayload::Batch(batch) => graph.push_batch(batch.iter(), scratch),
        }
        state.processed += n_in;
        let elapsed = t0.elapsed();
        state.latency.record(elapsed);
        em.push_latency.record_duration_ns(elapsed);
        let n = state.scratch.len() as u64;
        sess.counters.events_out.fetch_add(n, Ordering::Relaxed);
        shared.totals.events_out.fetch_add(n, Ordering::Relaxed);
        em.events_out.add(n);
        let SessionState {
            events, scratch, ..
        } = &mut *state;
        events.append(scratch);
    }
    if sess.finishing.load(Ordering::SeqCst)
        && sess.queue_rx.is_empty()
        && !sess.finished.load(Ordering::SeqCst)
    {
        let mut state = sess.state.lock().expect("session state poisoned");
        let events = state.graph.finish();
        let n = events.len() as u64;
        sess.counters.events_out.fetch_add(n, Ordering::Relaxed);
        shared.totals.events_out.fetch_add(n, Ordering::Relaxed);
        em.events_out.add(n);
        state.events.extend(events);
        sess.finished.store(true, Ordering::SeqCst);
        drop(state);
        sess.done.notify_all();
    }
}

/// Records one item's queue wait: the `rfipad_hop_seconds{hop=queue}`
/// histogram always, and — for trace-bound sessions, on sampled items — a
/// `queue` span in the session's flight recorder.
fn record_queue_hop(state: &SessionState, wait: Duration) {
    crate::telemetry::hop_metrics()
        .queue
        .record_duration_ns(wait);
    let Some(tr) = state.graph.trace_binding() else {
        return;
    };
    if !obs::trace::sampler().sample() {
        return;
    }
    let end_us = tr.recorder.now_us();
    let start_us = end_us.saturating_sub(wait.as_micros().min(u128::from(u64::MAX)) as u64);
    obs::trace::finish_span(
        &tr.recorder,
        obs::trace::SpanEvent {
            trace: tr.trace,
            span: obs::trace::next_span_id(),
            parent: Some(tr.parent),
            name: "queue".into(),
            start_us,
            end_us,
        },
    );
}

fn worker_loop(shared: Arc<Shared>, mailbox: Receiver<Arc<SessionInner>>) {
    while let Ok(sess) = mailbox.recv() {
        loop {
            drain_session(&shared, &sess);
            sess.scheduled.store(false, Ordering::SeqCst);
            // Anything slipped in between the last try_recv and the reset?
            // Reclaim the token and go again; if someone else just
            // reclaimed it, the session is back in our mailbox anyway.
            let more = !sess.queue_rx.is_empty()
                || (sess.finishing.load(Ordering::SeqCst) && !sess.finished.load(Ordering::SeqCst));
            if more
                && sess
                    .scheduled
                    .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                continue;
            }
            break;
        }
    }
}

/// Waits until the session's pipeline has been flushed by its worker.
fn wait_finished(sess: &SessionInner) {
    let mut state = sess.state.lock().expect("session state poisoned");
    while !sess.finished.load(Ordering::SeqCst) {
        state = sess.done.wait(state).expect("session state poisoned");
    }
    drop(state);
}

/// Marks a session finished-pending and wakes its worker. Shared by
/// close, eviction, and shutdown.
fn begin_finish(shared: &Shared, sess: &Arc<SessionInner>) -> Result<(), RfipadError> {
    sess.closed.store(true, Ordering::SeqCst);
    sess.finishing.store(true, Ordering::SeqCst);
    schedule(shared, sess)
}

/// The multi-session ingest engine: a worker pool draining per-session
/// bounded queues into [`OnlinePipeline`]s. See the [module
/// docs](crate::engine) for the concurrency model.
///
/// Dropping the engine shuts it down: open sessions are flushed, workers
/// joined. Outstanding [`SessionHandle`]s stay valid for
/// [`SessionHandle::drain_events`] and [`SessionHandle::close`] (which
/// then just collects), but further feeds fail with
/// [`RfipadError::EngineDown`].
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// The opt-in HTTP exposition endpoint; stops when the engine drops.
    metrics: Option<obs::serve::MetricsServer>,
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("config", &self.shared.config)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts a validating builder ([`EngineBuilder`]).
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    fn start(config: EngineConfig) -> Self {
        let mut mailboxes = Vec::with_capacity(config.workers);
        let mut receivers = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let (tx, rx) = channel::unbounded();
            mailboxes.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            config,
            epoch: Instant::now(),
            down: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            mailboxes: Mutex::new(mailboxes),
            next_worker: AtomicUsize::new(0),
            totals: Counters::default(),
            sessions_opened: AtomicU64::new(0),
            sessions_closed: AtomicU64::new(0),
            sessions_evicted: AtomicU64::new(0),
        });
        let workers = receivers
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rfipad-engine-{i}"))
                    .spawn(move || worker_loop(shared, rx))
                    .expect("spawn engine worker")
            })
            .collect();
        Self {
            shared,
            workers,
            metrics: None,
        }
    }

    /// The engine's configuration (with `workers` resolved).
    pub fn config(&self) -> &EngineConfig {
        &self.shared.config
    }

    /// Opens a session: the pipeline will consume every report fed through
    /// the returned handle, in feed order.
    ///
    /// Sessions are assigned to workers round-robin at open time and stay
    /// there for life.
    ///
    /// # Errors
    ///
    /// [`RfipadError::SessionExists`] if the id is already open;
    /// [`RfipadError::EngineDown`] after shutdown.
    pub fn open_session(
        &self,
        id: impl Into<String>,
        pipeline: OnlinePipeline,
    ) -> Result<SessionHandle, RfipadError> {
        self.open_graph(id.into(), pipeline.into_graph())
    }

    /// Opens a session resuming from `checkpoint`: the `pipeline` supplies
    /// the recognizer and configuration (it must match the one the
    /// checkpoint was taken under), the checkpoint supplies the mid-stream
    /// state. The restored session then consumes the remainder of the
    /// report stream exactly as the original would have — the migration
    /// path for a session moved across engines or processes.
    ///
    /// # Errors
    ///
    /// [`RfipadError::Checkpoint`] if the checkpoint does not match the
    /// pipeline's configuration or fails its integrity checks; otherwise
    /// as for [`Engine::open_session`].
    pub fn restore_session(
        &self,
        id: impl Into<String>,
        pipeline: OnlinePipeline,
        checkpoint: &SessionCheckpoint,
    ) -> Result<SessionHandle, RfipadError> {
        let mut graph = pipeline.into_graph();
        graph.restore_checkpoint(checkpoint.pipeline())?;
        self.open_graph(id.into(), graph)
    }

    fn open_graph(&self, id: String, graph: StageGraph) -> Result<SessionHandle, RfipadError> {
        if self.shared.down.load(Ordering::SeqCst) {
            return Err(RfipadError::EngineDown);
        }
        let (queue_tx, queue_rx) = channel::bounded(self.shared.config.queue_capacity);
        let worker =
            self.shared.next_worker.fetch_add(1, Ordering::Relaxed) % self.shared.config.workers;
        let sess = Arc::new(SessionInner {
            id: id.clone(),
            worker,
            letter_gap_s: graph.letter_gap_s(),
            queue_tx,
            queue_rx,
            scheduled: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            finishing: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            last_fed_us: AtomicU64::new(self.shared.epoch.elapsed().as_micros() as u64),
            counters: Counters::default(),
            state: Mutex::new(SessionState {
                graph,
                events: Vec::new(),
                latency: LatencyRecorder::new(),
                scratch: Vec::new(),
                processed: 0,
            }),
            done: Condvar::new(),
        });
        {
            let mut sessions = self.shared.sessions.lock().expect("session map poisoned");
            if sessions.contains_key(&id) {
                return Err(RfipadError::SessionExists(id));
            }
            sessions.insert(id, Arc::clone(&sess));
        }
        self.shared.sessions_opened.fetch_add(1, Ordering::Relaxed);
        let em = crate::telemetry::engine_metrics();
        em.sessions_opened.inc();
        em.sessions_open.add(1);
        obs::debug!("session opened"; session = sess.id, worker = sess.worker);
        Ok(SessionHandle {
            shared: Arc::clone(&self.shared),
            inner: sess,
        })
    }

    /// Convenience: open a session, drain a [`ReportSource`] through it
    /// in batches of [`DEFAULT_INGEST_BATCH`], and close. Returns every
    /// event the stream produced. Batching is invisible to the result:
    /// under the lossless default backpressure the events are identical to
    /// feeding one report at a time.
    ///
    /// # Errors
    ///
    /// Session and engine faults as in [`Engine::open_session`] /
    /// [`SessionHandle::ingest`]; a source that dies mid-stream surfaces
    /// as [`RfipadError::Source`] (the session is still closed cleanly).
    pub fn ingest(
        &self,
        id: impl Into<String>,
        pipeline: OnlinePipeline,
        source: &mut dyn ReportSource,
    ) -> Result<Vec<PipelineEvent>, RfipadError> {
        let session = self.open_session(id, pipeline)?;
        let fed = session.ingest_source(source);
        let events = session.close()?;
        fed?;
        Ok(events)
    }

    /// Evicts every session idle longer than `idle_eviction_factor ×
    /// letter_gap_s` (wall-clock). Evicted sessions are flushed by their
    /// worker; their handles can still [`SessionHandle::drain_events`] /
    /// [`SessionHandle::close`], but feeds fail with
    /// [`RfipadError::SessionClosed`]. Returns the evicted ids.
    pub fn sweep_idle(&self) -> Vec<String> {
        let now_us = self.shared.epoch.elapsed().as_micros() as u64;
        let factor = self.shared.config.idle_eviction_factor;
        let mut evicted = Vec::new();
        let mut sessions = self.shared.sessions.lock().expect("session map poisoned");
        sessions.retain(|id, sess| {
            let timeout_us = factor * sess.letter_gap_s * 1e6;
            if !timeout_us.is_finite() {
                return true;
            }
            let idle_us = now_us.saturating_sub(sess.last_fed_us.load(Ordering::Relaxed));
            if (idle_us as f64) < timeout_us {
                return true;
            }
            let _ = begin_finish(&self.shared, sess);
            evicted.push(id.clone());
            false
        });
        drop(sessions);
        self.shared
            .sessions_evicted
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        if !evicted.is_empty() {
            let em = crate::telemetry::engine_metrics();
            em.sessions_evicted.add(evicted.len() as u64);
            em.sessions_open.add(-(evicted.len() as i64));
            for id in &evicted {
                remove_session_series(id);
                obs::info!("idle session evicted"; session = id);
            }
        }
        evicted
    }

    /// A consistent snapshot of engine-wide and per-session counters.
    pub fn stats(&self) -> EngineStats {
        engine_stats(&self.shared)
    }

    /// The bound address of the metrics endpoint, if one was requested
    /// via [`EngineBuilder::metrics_addr`].
    pub fn metrics_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics.as_ref().map(|s| s.addr())
    }

    /// Prometheus text exposition of the process-global metrics registry,
    /// with this engine's per-session gauges refreshed first. The same
    /// body `GET /metrics` serves when the endpoint is enabled.
    pub fn metrics_text(&self) -> String {
        render_metrics(&self.shared, obs::serve::SinkFormat::Prometheus)
    }

    /// JSON snapshot: an [`EngineStats`] superset — engine-wide and
    /// per-session statistics under `"engine"`, the full registry under
    /// `"metrics"`. The same body `GET /stats.json` serves when the
    /// endpoint is enabled.
    pub fn metrics_json(&self) -> String {
        render_metrics(&self.shared, obs::serve::SinkFormat::Json)
    }

    /// Flushes every open session, stops the workers, and joins them.
    /// Equivalent to dropping the engine, but explicit.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.down.swap(true, Ordering::SeqCst) {
            return;
        }
        // The endpoint stays up through the flush so `/readyz` reports
        // "shutting down" (503) while sessions drain; it stops below.
        let drained: Vec<Arc<SessionInner>> = {
            let mut sessions = self.shared.sessions.lock().expect("session map poisoned");
            sessions.drain().map(|(_, s)| s).collect()
        };
        for sess in &drained {
            let _ = begin_finish(&self.shared, sess);
        }
        for sess in &drained {
            wait_finished(sess);
        }
        self.shared
            .sessions_closed
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        if !drained.is_empty() {
            let em = crate::telemetry::engine_metrics();
            em.sessions_closed.add(drained.len() as u64);
            em.sessions_open.add(-(drained.len() as i64));
            for sess in &drained {
                remove_session_series(&sess.id);
            }
        }
        self.metrics = None; // flush done: stop serving
        obs::info!("engine shut down"; sessions_flushed = drained.len());
        // Closing the mailboxes ends the worker loops.
        self.shared
            .mailboxes
            .lock()
            .expect("engine mailboxes poisoned")
            .clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn engine_stats(shared: &Shared) -> EngineStats {
    let mut sessions: Vec<SessionStats> = {
        let map = shared.sessions.lock().expect("session map poisoned");
        map.values().map(|s| session_stats(s)).collect()
    };
    sessions.sort_by(|a, b| a.id.cmp(&b.id));
    EngineStats {
        workers: shared.config.workers,
        sessions_open: sessions.len(),
        sessions_opened: shared.sessions_opened.load(Ordering::Relaxed),
        sessions_closed: shared.sessions_closed.load(Ordering::Relaxed),
        sessions_evicted: shared.sessions_evicted.load(Ordering::Relaxed),
        reports_in: shared.totals.reports_in.load(Ordering::Relaxed),
        reports_dropped: shared.totals.reports_dropped.load(Ordering::Relaxed),
        events_out: shared.totals.events_out.load(Ordering::Relaxed),
        sessions,
    }
}

/// Session-labelled gauge families published at scrape time.
const SESSION_GAUGES: [(&str, &str); 3] = [
    (
        "rfipad_session_queue_depth",
        "Reports currently queued for the session.",
    ),
    (
        "rfipad_session_pending_events",
        "Events produced but not yet drained by the session handle.",
    ),
    (
        "rfipad_session_reports_dropped",
        "Reports dropped from the session queue by backpressure.",
    ),
];

/// Publishes per-session queue/drop gauges onto the global registry.
/// Runs at scrape time rather than on the hot path: gauge registration
/// takes the registry lock, which feed/drain must never wait on.
fn refresh_session_gauges(shared: &Shared) {
    let r = obs::registry();
    let map = shared.sessions.lock().expect("session map poisoned");
    for sess in map.values() {
        let labels = [("session", sess.id.as_str())];
        let set = |(name, help): (&str, &str), value: i64| {
            r.gauge(name, help, &labels).set(value);
        };
        set(SESSION_GAUGES[0], sess.queue_rx.len() as i64);
        let pending = sess
            .state
            .lock()
            .expect("session state poisoned")
            .events
            .len();
        set(SESSION_GAUGES[1], pending as i64);
        set(
            SESSION_GAUGES[2],
            sess.counters.reports_dropped.load(Ordering::Relaxed) as i64,
        );
    }
}

/// Drops a dead session's labelled series from the registry so closed
/// sessions do not linger in the exposition.
fn remove_session_series(id: &str) {
    let r = obs::registry();
    for (name, _) in SESSION_GAUGES {
        r.remove_matching(name, "session", id);
    }
}

/// Queue saturation watermark for readiness, percent of the configured
/// per-session queue capacity: a session queued beyond this flips
/// `/readyz` to 503 so a load balancer can stop routing new work here.
const READY_QUEUE_WATERMARK_PCT: usize = 90;

/// Answers the health and debug routes of the metrics endpoint:
/// `/healthz` (process liveness), `/readyz` (engine accepting and queues
/// below the watermark), `/debug/journal` (recent log events as JSON),
/// and `/debug/trace/<session>` (a session's flight-recorder dump).
fn probe_routes(shared: &Shared, path: &str) -> Option<obs::serve::RouteResponse> {
    use obs::serve::RouteResponse;
    match path {
        "/healthz" => Some(RouteResponse::ok_text("ok\n")),
        "/readyz" => Some(readyz(shared)),
        "/debug/journal" => Some(RouteResponse::ok_json(obs::logging::journal_json())),
        _ => path.strip_prefix("/debug/trace/").map(|raw| {
            let session = percent_decode(raw);
            match obs::trace::lookup(&session) {
                Some(rec) => RouteResponse::ok_json(rec.to_json()),
                None => RouteResponse::not_found(format!(
                    "no flight recorder for session {session:?}\n"
                )),
            }
        }),
    }
}

/// Decodes `%XX` escapes in a debug-route path segment: every served
/// session's engine id is `c<conn>#<session>`, and `#` must be quoted as
/// `%23` to survive a URL path.
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let decoded = (bytes[i] == b'%' && i + 2 < bytes.len())
            .then(|| {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok()?;
                u8::from_str_radix(hex, 16).ok()
            })
            .flatten();
        match decoded {
            Some(b) => {
                out.push(b);
                i += 3;
            }
            None => {
                out.push(bytes[i]);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The readiness probe: 503 once shutdown began, or while any session's
/// queue is past the saturation watermark; 200 otherwise.
fn readyz(shared: &Shared) -> obs::serve::RouteResponse {
    use obs::serve::RouteResponse;
    if shared.down.load(Ordering::SeqCst) {
        return RouteResponse::unavailable("engine shutting down\n");
    }
    let capacity = shared.config.queue_capacity;
    let watermark = capacity * READY_QUEUE_WATERMARK_PCT / 100;
    let sessions = shared.sessions.lock().expect("session map poisoned");
    for sess in sessions.values() {
        let depth = sess.queue_rx.len();
        if depth > watermark {
            return RouteResponse::unavailable(format!(
                "session {:?} queue saturated: {depth} of {capacity} slots\n",
                sess.id
            ));
        }
    }
    RouteResponse::ok_text("ready\n")
}

/// Renders one of the two sinks with this engine's session gauges fresh.
fn render_metrics(shared: &Shared, format: obs::serve::SinkFormat) -> String {
    refresh_session_gauges(shared);
    match format {
        obs::serve::SinkFormat::Prometheus => obs::registry().render_prometheus(),
        obs::serve::SinkFormat::Json => stats_json(shared),
    }
}

/// The engine's JSON sink: an [`EngineStats`] superset with the full
/// registry snapshot attached.
fn stats_json(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let stats = engine_stats(shared);
    let mut out = String::from("{\"engine\":{");
    let _ = write!(
        out,
        "\"workers\":{},\"sessions_open\":{},\"sessions_opened\":{},\
         \"sessions_closed\":{},\"sessions_evicted\":{},\"reports_in\":{},\
         \"reports_dropped\":{},\"events_out\":{},\"sessions\":[",
        stats.workers,
        stats.sessions_open,
        stats.sessions_opened,
        stats.sessions_closed,
        stats.sessions_evicted,
        stats.reports_in,
        stats.reports_dropped,
        stats.events_out,
    );
    for (i, s) in stats.sessions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"worker\":{},\"reports_in\":{},\"reports_dropped\":{},\
             \"events_out\":{},\"out_of_order\":{},\"pending_events\":{},\
             \"queue_depth\":{},\"closed\":{},\"push_latency\":{{\"count\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}}}",
            obs::expo::escape_json(&s.id),
            s.worker,
            s.reports_in,
            s.reports_dropped,
            s.events_out,
            s.out_of_order,
            s.pending_events,
            s.queue_depth,
            s.closed,
            s.push_latency.count,
            s.push_latency.p50_ns,
            s.push_latency.p99_ns,
            s.push_latency.max_ns,
        );
    }
    out.push_str("]},\"metrics\":");
    out.push_str(&obs::registry().render_json());
    out.push('}');
    out
}

fn session_stats(sess: &SessionInner) -> SessionStats {
    let state = sess.state.lock().expect("session state poisoned");
    SessionStats {
        id: sess.id.clone(),
        worker: sess.worker,
        reports_in: sess.counters.reports_in.load(Ordering::Relaxed),
        reports_dropped: sess.counters.reports_dropped.load(Ordering::Relaxed),
        events_out: sess.counters.events_out.load(Ordering::Relaxed),
        out_of_order: state.graph.out_of_order_count(),
        pending_events: state.events.len(),
        queue_depth: sess.queue_rx.len(),
        push_latency: state.latency.snapshot(),
        closed: sess.closed.load(Ordering::SeqCst),
    }
}

/// Counters for one open session.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SessionStats {
    /// The session id.
    pub id: String,
    /// Which worker drains this session.
    pub worker: usize,
    /// Reports accepted into the queue.
    pub reports_in: u64,
    /// Reports evicted from a full queue under
    /// [`Backpressure::DropOldest`].
    pub reports_dropped: u64,
    /// Pipeline events produced.
    pub events_out: u64,
    /// Reports whose timestamps ran backwards (see
    /// [`crate::pipeline::OutOfOrderPolicy`]).
    pub out_of_order: u64,
    /// Events produced but not yet drained by the handle.
    pub pending_events: usize,
    /// Reports currently queued.
    pub queue_depth: usize,
    /// Push-latency percentiles.
    pub push_latency: LatencySnapshot,
    /// Whether the session stopped accepting feeds (closing or evicted).
    pub closed: bool,
}

/// Engine-wide counters plus a per-session breakdown.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Sessions currently open.
    pub sessions_open: usize,
    /// Sessions opened over the engine's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed cleanly (including at shutdown).
    pub sessions_closed: u64,
    /// Sessions evicted by [`Engine::sweep_idle`].
    pub sessions_evicted: u64,
    /// Reports accepted across all sessions, living and dead.
    pub reports_in: u64,
    /// Reports dropped by backpressure across all sessions.
    pub reports_dropped: u64,
    /// Events produced across all sessions.
    pub events_out: u64,
    /// Open sessions, sorted by id.
    pub sessions: Vec<SessionStats>,
}

/// A frozen, serializable snapshot of one session's recognition state,
/// taken by [`SessionHandle::checkpoint`] and consumed by
/// [`Engine::restore_session`].
///
/// The checkpoint captures the session's [`PipelineCheckpoint`] — buffer,
/// reported spans, pending strokes, clocks — but *not* the recognizer
/// (layout, calibration, grammar), which the restoring side supplies via
/// a freshly built [`OnlinePipeline`]. Undrained events and counters stay
/// with the original session; drain them before migrating.
///
/// [`SessionCheckpoint::to_json`] / [`SessionCheckpoint::from_json`]
/// round-trip the snapshot through a versioned, self-contained JSON
/// document bit-exactly, so it can cross a process boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    id: String,
    pipeline: PipelineCheckpoint,
}

/// Version stamp of the [`SessionCheckpoint`] JSON envelope (the wrapped
/// pipeline checkpoint carries its own).
const SESSION_CHECKPOINT_VERSION: u64 = 1;

impl SessionCheckpoint {
    /// The id of the session the checkpoint was taken from (informational
    /// — [`Engine::restore_session`] names the restored session itself).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The wrapped mid-stream pipeline state.
    pub fn pipeline(&self) -> &PipelineCheckpoint {
        &self.pipeline
    }

    /// Serializes the checkpoint. The output is bit-stable: serializing
    /// the same checkpoint twice yields identical strings.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"version\":{},\"id\":\"{}\",\"pipeline\":{}}}",
            SESSION_CHECKPOINT_VERSION,
            obs::expo::escape_json(&self.id),
            self.pipeline.to_json(),
        )
    }

    /// Parses a checkpoint serialized by [`SessionCheckpoint::to_json`].
    ///
    /// # Errors
    ///
    /// [`RfipadError::Checkpoint`] on malformed JSON, an unknown version,
    /// or unknown / missing fields — a corrupted or foreign document is
    /// rejected rather than half-restored.
    pub fn from_json(json: &str) -> Result<Self, RfipadError> {
        let reject = |msg: String| RfipadError::Checkpoint(msg);
        let body = json
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| reject("session checkpoint is not a JSON object".into()))?;
        let mut version = None;
        let mut id = None;
        let mut pipeline = None;
        for field in crate::metrics::split_top_level(body) {
            let (key, value) = field
                .split_once(':')
                .ok_or_else(|| reject(format!("field without ':': {field:?}")))?;
            match key.trim().trim_matches('"') {
                "version" => {
                    version = Some(
                        value
                            .trim()
                            .parse::<u64>()
                            .map_err(|e| reject(format!("bad session checkpoint version: {e}")))?,
                    );
                }
                "id" => {
                    id = Some(
                        crate::metrics::unescape_json_string(value.trim())
                            .map_err(|e| reject(format!("bad session id: {e}")))?,
                    );
                }
                "pipeline" => pipeline = Some(PipelineCheckpoint::from_json(value.trim())?),
                other => {
                    return Err(reject(format!(
                        "unknown session checkpoint field {other:?}"
                    )));
                }
            }
        }
        match (version, id, pipeline) {
            (Some(SESSION_CHECKPOINT_VERSION), Some(id), Some(pipeline)) => {
                Ok(Self { id, pipeline })
            }
            (Some(v), _, _) if v != SESSION_CHECKPOINT_VERSION => Err(reject(format!(
                "unsupported session checkpoint version {v} (expected \
                 {SESSION_CHECKPOINT_VERSION})"
            ))),
            _ => Err(reject("incomplete session checkpoint".into())),
        }
    }
}

/// A feeder's handle to one open session.
///
/// The handle is the session's producer side: [`SessionHandle::ingest`]
/// enqueues reports (applying the engine's backpressure policy),
/// [`SessionHandle::drain_events`] collects recognitions produced so far,
/// and [`SessionHandle::close`] flushes and tears down. Dropping the
/// handle without closing leaves the session open until idle eviction or
/// engine shutdown reaps it.
pub struct SessionHandle {
    shared: Arc<Shared>,
    inner: Arc<SessionInner>,
}

impl fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionHandle")
            .field("id", &self.inner.id)
            .field("worker", &self.inner.worker)
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// The session id.
    pub fn id(&self) -> &str {
        &self.inner.id
    }

    /// Ingests one report. Blocks or drops per the engine's
    /// [`Backpressure`] policy when the session queue is full; the receipt
    /// says what happened (`accepted` is 1, `dropped` counts any earlier
    /// reports evicted to make room).
    ///
    /// # Errors
    ///
    /// [`RfipadError::SessionClosed`] once the session was closed or
    /// evicted; [`RfipadError::EngineDown`] after engine shutdown.
    pub fn ingest(&self, report: TagReport) -> Result<IngestReceipt, RfipadError> {
        self.ingest_item(QueueItem::one(report))
    }

    /// Ingests a whole batch as one queue item: one channel round-trip,
    /// one worker wakeup, and one latency record for the entire batch.
    /// Under [`Backpressure::Block`] the session's recognitions are
    /// bit-identical to ingesting the same reports one at a time. The
    /// receipt's `accepted` is the batch length; an empty batch is a no-op
    /// (but still fails on a closed session or a downed engine).
    ///
    /// Under [`Backpressure::DropOldest`] a full queue evicts whole queued
    /// *items*, so one eviction may drop an entire earlier batch — every
    /// dropped report is counted in the receipt and in
    /// [`SessionStats::reports_dropped`].
    ///
    /// # Errors
    ///
    /// As for [`SessionHandle::ingest`].
    pub fn ingest_batch(&self, batch: ReportBatch) -> Result<IngestReceipt, RfipadError> {
        self.ingest_item(QueueItem::batch(batch))
    }

    fn ingest_item(&self, item: QueueItem) -> Result<IngestReceipt, RfipadError> {
        let sess = &self.inner;
        let em = crate::telemetry::engine_metrics();
        if self.shared.down.load(Ordering::SeqCst) {
            return Err(RfipadError::EngineDown);
        }
        if sess.closed.load(Ordering::SeqCst) {
            return Err(RfipadError::SessionClosed(sess.id.clone()));
        }
        let n = item.reports();
        if n == 0 {
            return Ok(IngestReceipt::default());
        }
        let mut evicted_here = 0u64;
        match self.shared.config.backpressure {
            Backpressure::Block => {
                if sess.queue_tx.send(item).is_err() {
                    return Err(RfipadError::EngineDown);
                }
            }
            Backpressure::DropOldest => {
                let mut item = item;
                loop {
                    match sess.queue_tx.try_send(item) {
                        Ok(()) => break,
                        Err(TrySendError::Full(i)) => {
                            item = i;
                            // Evict the oldest queued item (the worker may
                            // beat us to it, which is just as good).
                            if let Ok(evicted) = sess.queue_rx.try_recv() {
                                let dropped = evicted.reports() as u64;
                                evicted_here += dropped;
                                sess.counters
                                    .reports_dropped
                                    .fetch_add(dropped, Ordering::Relaxed);
                                self.shared
                                    .totals
                                    .reports_dropped
                                    .fetch_add(dropped, Ordering::Relaxed);
                                em.reports_dropped.add(dropped);
                            }
                        }
                        Err(TrySendError::Disconnected(_)) => {
                            return Err(RfipadError::EngineDown);
                        }
                    }
                }
            }
        }
        sess.counters
            .reports_in
            .fetch_add(n as u64, Ordering::Relaxed);
        self.shared
            .totals
            .reports_in
            .fetch_add(n as u64, Ordering::Relaxed);
        em.reports_in.add(n as u64);
        sess.last_fed_us.store(
            self.shared.epoch.elapsed().as_micros() as u64,
            Ordering::Relaxed,
        );
        schedule(&self.shared, sess).map(|_| IngestReceipt {
            accepted: n as u64,
            dropped: evicted_here,
        })
    }

    /// Drains a [`ReportSource`] into the session in batches of
    /// [`DEFAULT_INGEST_BATCH`] reports — the recommended bulk path.
    /// Returns the accumulated receipt.
    ///
    /// # Errors
    ///
    /// Ingest errors as in [`SessionHandle::ingest`]; a source that dies
    /// mid-stream surfaces its typed error as [`RfipadError::Source`]
    /// (after everything before the fault was ingested).
    pub fn ingest_source(
        &self,
        source: &mut dyn ReportSource,
    ) -> Result<IngestReceipt, RfipadError> {
        self.ingest_source_batched(source, DEFAULT_INGEST_BATCH)
    }

    /// Drains a [`ReportSource`] into the session in batches of up to
    /// `batch_size` reports, one [`SessionHandle::ingest_batch`] per
    /// refill. Returns the accumulated receipt. Under
    /// [`Backpressure::Block`] the events are identical for every
    /// `batch_size` — batching only amortizes the per-item queue and
    /// telemetry costs.
    ///
    /// # Errors
    ///
    /// As for [`SessionHandle::ingest_source`]; `batch_size == 0` is
    /// rejected as [`RfipadError::InvalidConfig`].
    pub fn ingest_source_batched(
        &self,
        source: &mut dyn ReportSource,
        batch_size: usize,
    ) -> Result<IngestReceipt, RfipadError> {
        if batch_size == 0 {
            return Err(RfipadError::InvalidConfig(
                "ingest_source_batched batch_size must be at least 1".into(),
            ));
        }
        let mut receipt = IngestReceipt::default();
        loop {
            let mut batch = ReportBatch::with_capacity(batch_size);
            if source.next_batch(batch_size, &mut batch) == 0 {
                break;
            }
            receipt += self.ingest_batch(batch)?;
        }
        match source.take_error() {
            Some(e) => Err(e.into()),
            None => Ok(receipt),
        }
    }

    /// Binds the session's stage graph to a trace: sampled stage pushes
    /// and queue waits then emit child spans into `recorder`, parented
    /// under `parent`. Installed by the serving layer at OPEN time.
    pub(crate) fn bind_trace(
        &self,
        recorder: Arc<obs::trace::FlightRecorder>,
        trace: obs::trace::TraceId,
        parent: obs::trace::SpanId,
    ) {
        let mut state = self.inner.state.lock().expect("session state poisoned");
        state.graph.bind_trace(Some(crate::stage::StageTrace {
            recorder,
            trace,
            parent,
        }));
    }

    /// Collects the events produced so far (recognitions already drained
    /// are not repeated).
    pub fn drain_events(&self) -> Vec<PipelineEvent> {
        let mut state = self.inner.state.lock().expect("session state poisoned");
        std::mem::take(&mut state.events)
    }

    /// This session's counters.
    pub fn stats(&self) -> SessionStats {
        session_stats(&self.inner)
    }

    /// Whether the session still accepts feeds (it stops after close,
    /// eviction, or engine shutdown).
    pub fn is_open(&self) -> bool {
        !self.inner.closed.load(Ordering::SeqCst) && !self.shared.down.load(Ordering::SeqCst)
    }

    /// Snapshots the session's recognition state for migration: waits
    /// until the worker has drained every report accepted so far, then
    /// freezes the pipeline state into a [`SessionCheckpoint`].
    ///
    /// The session stays open and keeps accepting feeds afterwards; the
    /// checkpoint is a copy, not a detach. The caller must not feed the
    /// session concurrently with this call — quiescence is defined
    /// against the reports already accepted, so a racing feeder makes
    /// "drained" a moving target (the snapshot would still be taken at
    /// *some* consistent prefix of the stream, just not a predictable
    /// one).
    ///
    /// # Errors
    ///
    /// [`RfipadError::SessionClosed`] once the session was closed or
    /// evicted; [`RfipadError::EngineDown`] after engine shutdown.
    pub fn checkpoint(&self) -> Result<SessionCheckpoint, RfipadError> {
        let sess = &self.inner;
        loop {
            if self.shared.down.load(Ordering::SeqCst) {
                return Err(RfipadError::EngineDown);
            }
            if sess.closed.load(Ordering::SeqCst) {
                return Err(RfipadError::SessionClosed(sess.id.clone()));
            }
            {
                let state = sess.state.lock().expect("session state poisoned");
                let accounted =
                    state.processed + sess.counters.reports_dropped.load(Ordering::Relaxed);
                if accounted == sess.counters.reports_in.load(Ordering::Relaxed) {
                    return Ok(SessionCheckpoint {
                        id: sess.id.clone(),
                        pipeline: state.graph.checkpoint(),
                    });
                }
            }
            std::thread::yield_now();
        }
    }

    /// Closes the session: waits for every queued report to be processed
    /// and the pipeline to flush, then returns all undrained events.
    ///
    /// # Errors
    ///
    /// [`RfipadError::EngineDown`] if the workers are gone before the
    /// session could be flushed (a session already flushed — e.g. by
    /// eviction or shutdown — still closes cleanly and returns its
    /// events).
    pub fn close(self) -> Result<Vec<PipelineEvent>, RfipadError> {
        self.close_with_stats().map(|(events, _)| events)
    }

    /// Like [`close`](Self::close), but also returns the session's final
    /// counters, captured after the queue fully drained and the pipeline
    /// flushed. This is the only way to observe the complete push-latency
    /// distribution of a batched feed: [`stats`](Self::stats) taken while
    /// the worker is still draining misses the tail (and, for a small
    /// replay, possibly every sample).
    ///
    /// # Errors
    ///
    /// [`RfipadError::EngineDown`] under the same conditions as
    /// [`close`](Self::close).
    pub fn close_with_stats(self) -> Result<(Vec<PipelineEvent>, SessionStats), RfipadError> {
        let sess = &self.inner;
        let kicked = begin_finish(&self.shared, sess);
        if kicked.is_err() && !sess.finished.load(Ordering::SeqCst) {
            return kicked.map(|_| (Vec::new(), session_stats(sess)));
        }
        wait_finished(sess);
        let stats = session_stats(sess);
        let events = {
            let mut state = sess.state.lock().expect("session state poisoned");
            std::mem::take(&mut state.events)
        };
        let mut sessions = self.shared.sessions.lock().expect("session map poisoned");
        if sessions.remove(&sess.id).is_some() {
            self.shared.sessions_closed.fetch_add(1, Ordering::Relaxed);
            let em = crate::telemetry::engine_metrics();
            em.sessions_closed.inc();
            em.sessions_open.add(-1);
            remove_session_series(&sess.id);
            obs::debug!("session closed"; session = sess.id, events = events.len());
        }
        drop(sessions);
        Ok((events, stats))
    }
}

/// Zeroes the wall-clock `response_time_s` of every event in place.
///
/// Everything else a [`PipelineEvent`] carries is a pure function of the
/// report stream, so after normalization two replays of the same reports
/// — single-stream or through the engine under [`Backpressure::Block`] —
/// compare bit-identical with `==`.
pub fn normalize_events(events: &mut [PipelineEvent]) {
    for event in events {
        match event {
            PipelineEvent::StrokeDetected {
                response_time_s, ..
            }
            | PipelineEvent::LetterRecognized {
                response_time_s, ..
            } => *response_time_s = 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use rfid_gen2::report::TagId;
    use rfid_gen2::source::LiveSource;
    use std::f64::consts::TAU;

    fn obs(tag: TagId, time: f64, phase: f64, rss: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), rss)
    }

    fn layout() -> ArrayLayout {
        ArrayLayout::new(5, 5, (0..25).map(TagId).collect())
    }

    /// Recording with a column-2 downward sweep during [2, 4) and silence
    /// until 7 s — same shape as the pipeline module's fixture, so the
    /// serial run produces one stroke and one letter.
    fn recording() -> Vec<TagReport> {
        let l = layout();
        let mut out = Vec::new();
        for step in 0..350 {
            let t = step as f64 * 0.02;
            for r in 0..5usize {
                for c in 0..5usize {
                    let id = l.at(r, c);
                    let base = (r * 5 + c) as f64 * 0.37 + 0.4;
                    let cross = 2.2 + 0.36 * r as f64;
                    let near = (t - cross).abs() < 0.5 && (2.0..4.0).contains(&t);
                    let col_factor = 1.0 / (1.0 + (c as f64 - 2.0).powi(2));
                    let (wiggle, dip) = if near {
                        (
                            0.9 * col_factor * ((t - cross) * 18.0).sin(),
                            -7.0 * col_factor * (-(t - cross) * (t - cross) / 0.01).exp(),
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    out.push(obs(
                        id,
                        t + (r * 5 + c) as f64 * 1e-4,
                        base + wiggle,
                        -45.0 + dip,
                    ));
                }
            }
        }
        out
    }

    fn pipeline() -> OnlinePipeline {
        let l = layout();
        let static_part: Vec<TagReport> =
            recording().into_iter().filter(|o| o.time < 2.0).collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&l, &static_part, &config).expect("cal");
        let recognizer = Recognizer::builder()
            .layout(l)
            .calibration(cal)
            .config(config)
            .build()
            .expect("recognizer");
        OnlinePipeline::builder()
            .recognizer(recognizer)
            .letter_gap_s(1.5)
            .build()
            .expect("pipeline")
    }

    use crate::recognizer::Recognizer;

    /// A tiny 1×3 quiet pipeline — cheap pushes for concurrency tests that
    /// do not care about recognitions.
    fn quiet_pipeline() -> OnlinePipeline {
        let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| {
                (0..3).map(move |i| {
                    obs(
                        TagId(i),
                        j as f64 * 0.05 + i as f64 * 0.01,
                        1.0 + i as f64,
                        -45.0,
                    )
                })
            })
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config).expect("cal");
        let recognizer = Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()
            .expect("recognizer");
        OnlinePipeline::builder()
            .recognizer(recognizer)
            .build()
            .expect("pipeline")
    }

    fn quiet_reports(n: usize) -> Vec<TagReport> {
        (0..n)
            .map(|i| {
                obs(
                    TagId((i % 3) as u64),
                    i as f64 * 0.01,
                    1.0 + (i % 3) as f64,
                    -45.0,
                )
            })
            .collect()
    }

    fn serial_events() -> Vec<PipelineEvent> {
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording() {
            events.extend(p.push(o));
        }
        events.extend(p.finish());
        normalize_events(&mut events);
        events
    }

    #[test]
    fn builder_validates() {
        assert!(matches!(
            Engine::builder().queue_capacity(0).build(),
            Err(RfipadError::InvalidConfig(_))
        ));
        assert!(matches!(
            Engine::builder().idle_eviction_factor(0.0).build(),
            Err(RfipadError::InvalidConfig(_))
        ));
        assert!(matches!(
            Engine::builder().idle_eviction_factor(f64::NAN).build(),
            Err(RfipadError::InvalidConfig(_))
        ));
        let engine = Engine::builder().build().expect("default engine");
        assert!(engine.config().workers >= 1);
    }

    #[test]
    fn single_session_matches_serial_replay() {
        let expected = serial_events();
        assert!(
            expected
                .iter()
                .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. })),
            "fixture must produce a letter for the comparison to mean anything"
        );
        let engine = Engine::builder().workers(2).build().expect("engine");
        let session = engine.open_session("solo", pipeline()).expect("open");
        for o in recording() {
            session.ingest(o).expect("feed");
        }
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    #[test]
    fn concurrent_sessions_each_match_serial_replay() {
        let expected = serial_events();
        let engine = Arc::new(Engine::builder().workers(2).build().expect("engine"));
        let feeders: Vec<_> = (0..3)
            .map(|i| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || {
                    let session = engine
                        .open_session(format!("s{i}"), pipeline())
                        .expect("open");
                    for o in recording() {
                        session.ingest(o).expect("feed");
                    }
                    let mut events = session.close().expect("close");
                    normalize_events(&mut events);
                    events
                })
            })
            .collect();
        for f in feeders {
            assert_eq!(f.join().expect("feeder"), expected);
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_open, 0);
        assert_eq!(stats.sessions_opened, 3);
        assert_eq!(stats.sessions_closed, 3);
        assert_eq!(stats.reports_dropped, 0);
    }

    #[test]
    fn ingest_drains_a_boxed_source() {
        let expected = serial_events();
        let engine = Engine::builder().workers(1).build().expect("engine");
        let mut source: Box<dyn ReportSource + Send> = Box::new(LiveSource::new(recording()));
        let mut events = engine
            .ingest("trace", pipeline(), &mut source)
            .expect("ingest");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    #[test]
    fn ingest_batch_matches_serial_replay() {
        let expected = serial_events();
        let engine = Engine::builder().workers(2).build().expect("engine");
        let session = engine.open_session("batched", pipeline()).expect("open");
        let reports = recording();
        for chunk in reports.chunks(64) {
            let receipt = session
                .ingest_batch(chunk.iter().copied().collect())
                .expect("ingest_batch");
            assert_eq!(receipt.accepted, chunk.len() as u64);
            assert_eq!(receipt.dropped, 0, "lossless backpressure never drops");
        }
        let stats = session.stats();
        assert_eq!(stats.reports_in, reports.len() as u64);
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    #[test]
    fn batched_ingest_close_reports_nonzero_push_latency() {
        // Regression: stats taken mid-drain can miss every latency sample
        // for a short batched replay (the worker hasn't touched the queue
        // yet), reporting p50 = p99 = 0. close_with_stats captures the
        // counters after the drain, when every batch's latency is in.
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("latency", pipeline()).expect("open");
        let reports = recording();
        for chunk in reports.chunks(64) {
            session
                .ingest_batch(chunk.iter().copied().collect())
                .expect("ingest_batch");
        }
        let (mut events, stats) = session.close_with_stats().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, serial_events());
        assert_eq!(stats.reports_in, reports.len() as u64);
        assert_eq!(stats.queue_depth, 0, "closed session has drained");
        assert_eq!(
            stats.push_latency.count,
            reports.len().div_ceil(64) as u64,
            "one latency sample per ingested batch"
        );
        assert!(
            stats.push_latency.p50_ns > 0,
            "p50 {:?}",
            stats.push_latency
        );
        assert!(stats.push_latency.p99_ns >= stats.push_latency.p50_ns);
        assert!(stats.push_latency.max_ns >= stats.push_latency.p99_ns);
    }

    #[test]
    fn ingest_batch_and_ingest_interleave_in_order() {
        let expected = serial_events();
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("mixed", pipeline()).expect("open");
        for (i, chunk) in recording().chunks(17).enumerate() {
            if i % 2 == 0 {
                session
                    .ingest_batch(chunk.iter().copied().collect())
                    .expect("feed_batch");
            } else {
                for &o in chunk {
                    session.ingest(o).expect("feed");
                }
            }
        }
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    #[test]
    fn ingest_batch_empty_is_noop() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine
            .open_session("empty", quiet_pipeline())
            .expect("open");
        assert_eq!(
            session.ingest_batch(ReportBatch::new()).expect("ingest"),
            IngestReceipt::default()
        );
        assert_eq!(session.stats().reports_in, 0);
        session.close().expect("close");
    }

    #[test]
    fn ingest_source_batched_matches_serial() {
        let expected = serial_events();
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("src", pipeline()).expect("open");
        assert!(matches!(
            session.ingest_source_batched(&mut LiveSource::new(Vec::new()), 0),
            Err(RfipadError::InvalidConfig(_))
        ));
        let mut source = LiveSource::new(recording());
        let receipt = session
            .ingest_source_batched(&mut source, 48)
            .expect("ingest_source_batched");
        assert_eq!(receipt.accepted, recording().len() as u64);
        assert_eq!(receipt.dropped, 0);
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    #[test]
    fn drop_oldest_counts_every_report_in_an_evicted_batch() {
        let engine = Engine::builder()
            .workers(1)
            .queue_capacity(2)
            .backpressure(Backpressure::DropOldest)
            .build()
            .expect("engine");
        let session = engine
            .open_session("lossy-batch", quiet_pipeline())
            .expect("open");
        let (dropped, receipt) = {
            // Stall the worker so the 2-item queue genuinely fills. The
            // worker may pull one batch off the queue before stalling, so
            // either one or two of the four 3-report batches get evicted —
            // always whole batches, so the drop count is a multiple of 3.
            let _stall = session.inner.state.lock().expect("state");
            let mut receipt = IngestReceipt::default();
            for chunk in quiet_reports(12).chunks(3) {
                receipt += session
                    .ingest_batch(chunk.iter().copied().collect())
                    .expect("ingest_batch");
            }
            (
                session
                    .inner
                    .counters
                    .reports_dropped
                    .load(Ordering::Relaxed),
                receipt,
            )
        };
        assert!(
            dropped == 3 || dropped == 6,
            "dropped {dropped} of 12, expected one or two whole batches"
        );
        // The receipts account for every report: all 12 were accepted onto
        // the queue, and the evictions the callers performed sum to the
        // session's drop counter.
        assert_eq!(receipt.accepted, 12);
        assert_eq!(receipt.dropped, dropped);
        session.close().expect("close");
        let stats = engine.stats();
        assert_eq!(stats.reports_in, 12);
        assert_eq!(stats.reports_dropped, dropped);
    }

    #[test]
    fn duplicate_session_id_rejected() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let _a = engine.open_session("pad", quiet_pipeline()).expect("open");
        assert!(matches!(
            engine.open_session("pad", quiet_pipeline()),
            Err(RfipadError::SessionExists(id)) if id == "pad"
        ));
    }

    #[test]
    fn drop_oldest_evicts_and_counts() {
        let engine = Engine::builder()
            .workers(1)
            .queue_capacity(4)
            .backpressure(Backpressure::DropOldest)
            .build()
            .expect("engine");
        let session = engine
            .open_session("lossy", quiet_pipeline())
            .expect("open");
        let dropped = {
            // Stall the worker by holding the state lock, so the queue
            // genuinely fills and eviction is forced. The worker may have
            // pulled the first report before stalling, so 5 or 6 of the 10
            // feeds evict an older one — never fewer.
            let _stall = session.inner.state.lock().expect("state");
            for o in quiet_reports(10) {
                session.ingest(o).expect("feed");
            }
            session
                .inner
                .counters
                .reports_dropped
                .load(Ordering::Relaxed)
        };
        assert!((5..=6).contains(&dropped), "dropped {dropped} of 10");
        let events = session.close().expect("close");
        assert!(events.is_empty()); // quiet stream: no recognitions
        let stats = engine.stats();
        assert_eq!(stats.reports_in, 10);
        assert_eq!(stats.reports_dropped, dropped);
    }

    #[test]
    fn block_backpressure_bounds_queue_without_losing_reports() {
        let engine = Arc::new(
            Engine::builder()
                .workers(1)
                .queue_capacity(4)
                .build()
                .expect("engine"),
        );
        let session = Arc::new(
            engine
                .open_session("tight", quiet_pipeline())
                .expect("open"),
        );
        let feeder = {
            let session = Arc::clone(&session);
            let stall = session.inner.state.lock().expect("state");
            let handle = std::thread::spawn({
                let session = Arc::clone(&session);
                move || {
                    for o in quiet_reports(32) {
                        session.ingest(o).expect("feed");
                    }
                }
            });
            // Give the feeder time to hit the full queue, then check the
            // bound held while the worker was stalled.
            while session.inner.queue_rx.len() < 4 {
                std::thread::yield_now();
            }
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(session.inner.queue_rx.len(), 4);
            assert!(!handle.is_finished(), "feeder must block on a full queue");
            drop(stall);
            handle
        };
        feeder.join().expect("feeder");
        let session = Arc::try_unwrap(session).expect("sole handle");
        session.close().expect("close");
        let stats = engine.stats();
        assert_eq!(stats.reports_in, 32);
        assert_eq!(stats.reports_dropped, 0);
    }

    #[test]
    fn idle_sessions_are_swept() {
        let engine = Engine::builder()
            .workers(1)
            .idle_eviction_factor(0.02) // 0.02 × 1.5 s gap = 30 ms idle budget
            .build()
            .expect("engine");
        let session = engine.open_session("idle", quiet_pipeline()).expect("open");
        session
            .ingest(quiet_reports(1).pop().expect("one"))
            .expect("feed");
        assert!(engine.sweep_idle().is_empty(), "fresh session must survive");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(engine.sweep_idle(), vec!["idle".to_string()]);
        assert!(matches!(
            session.ingest(quiet_reports(1).pop().expect("one")),
            Err(RfipadError::SessionClosed(_))
        ));
        assert!(!session.is_open());
        // The handle still collects what the session produced.
        session.close().expect("close after eviction");
        let stats = engine.stats();
        assert_eq!(stats.sessions_evicted, 1);
        assert_eq!(stats.sessions_open, 0);
    }

    #[test]
    fn shutdown_flushes_and_stops() {
        let engine = Engine::builder().workers(2).build().expect("engine");
        let session = engine.open_session("late", quiet_pipeline()).expect("open");
        for o in quiet_reports(20) {
            session.ingest(o).expect("feed");
        }
        engine.shutdown();
        assert!(matches!(
            session.ingest(quiet_reports(1).pop().expect("one")),
            Err(RfipadError::EngineDown)
        ));
        // Shutdown flushed the pipeline; close just collects.
        session.close().expect("close after shutdown");
    }

    #[test]
    fn open_after_shutdown_fails() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let shared = Arc::clone(&engine.shared);
        engine.shutdown();
        let revived = Engine {
            shared,
            workers: Vec::new(),
            metrics: None,
        };
        assert!(matches!(
            revived.open_session("ghost", quiet_pipeline()),
            Err(RfipadError::EngineDown)
        ));
        std::mem::forget(revived); // avoid double shutdown bookkeeping in drop
    }

    #[test]
    fn stats_track_latency_and_queue() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine
            .open_session("meter", quiet_pipeline())
            .expect("open");
        for o in quiet_reports(50) {
            session.ingest(o).expect("feed");
        }
        // Drain fully so the latency window is populated.
        let _ = session.drain_events();
        loop {
            let stats = session.stats();
            if stats.queue_depth == 0 && stats.push_latency.count == 50 {
                assert!(stats.push_latency.p50_ns <= stats.push_latency.p99_ns);
                assert!(stats.push_latency.p99_ns <= stats.push_latency.max_ns);
                assert_eq!(stats.reports_in, 50);
                break;
            }
            std::thread::yield_now();
        }
        session.close().expect("close");
    }

    #[test]
    fn latency_recorder_percentiles_are_ordered() {
        let rec = LatencyRecorder::new();
        assert_eq!(rec.snapshot().count, 0);
        for us in [5u64, 1, 9, 3, 7, 2, 8, 4, 6, 100] {
            rec.record(Duration::from_micros(us));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.count, 10);
        assert_eq!(snap.max_ns, 100_000);
        assert!(snap.p50_ns <= snap.p99_ns);
        assert!(snap.p99_ns <= snap.max_ns);
    }

    #[test]
    fn probes_transition_with_engine_state() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let shared = Arc::clone(&engine.shared);
        let probe = |path: &str| probe_routes(&shared, path).expect("routed");
        assert_eq!(probe("/healthz").status, 200);
        assert_eq!(probe("/healthz").body, "ok\n");
        assert_eq!(probe("/readyz").status, 200);
        assert_eq!(probe("/readyz").body, "ready\n");
        let journal = probe("/debug/journal");
        assert_eq!(journal.status, 200);
        assert!(
            journal.body.starts_with("{\"entries\":["),
            "{}",
            journal.body
        );
        // The session id is %-decoded: `%23` names `c<conn>#<session>`.
        let missing = probe("/debug/trace/c9%23nope");
        assert_eq!(missing.status, 404);
        assert!(missing.body.contains("c9#nope"), "{}", missing.body);
        assert!(probe_routes(&shared, "/metrics").is_none());

        engine.shutdown();
        // Liveness stays green after shutdown; readiness does not.
        assert_eq!(probe("/healthz").status, 200);
        let down = probe("/readyz");
        assert_eq!(down.status, 503);
        assert!(down.body.contains("shutting down"), "{}", down.body);
    }

    #[test]
    fn readyz_reports_saturated_queues() {
        let engine = Engine::builder()
            .workers(1)
            .queue_capacity(4)
            .backpressure(Backpressure::DropOldest)
            .build()
            .expect("engine");
        let session = engine.open_session("busy", quiet_pipeline()).expect("open");
        let inner = engine
            .shared
            .sessions
            .lock()
            .expect("session map")
            .get("busy")
            .cloned()
            .expect("inner");
        {
            // Stall the one worker by holding the session's state lock,
            // then flood: the queue saturates past the 90% watermark.
            let _stall = inner.state.lock().expect("state");
            for r in quiet_reports(16) {
                session.ingest(r).expect("ingest");
            }
            let busy = readyz(&engine.shared);
            assert_eq!(busy.status, 503);
            assert!(busy.body.contains("saturated"), "{}", busy.body);
        }
        // Released: the worker drains and readiness recovers.
        while session.stats().queue_depth > 0 {
            std::thread::yield_now();
        }
        assert_eq!(readyz(&engine.shared).status, 200);
        session.close().expect("close");
        engine.shutdown();
    }

    #[test]
    fn metrics_sinks_cover_engine_and_sessions() {
        let engine = Engine::builder()
            .workers(1)
            .metrics_addr("127.0.0.1:0")
            .build()
            .expect("engine");
        let session = engine
            .open_session("meter-ep", quiet_pipeline())
            .expect("open");
        for o in quiet_reports(10) {
            session.ingest(o).expect("feed");
        }
        // In-process sinks.
        let text = engine.metrics_text();
        obs::expo::validate(&text).expect("valid exposition");
        assert!(text.contains("rfipad_engine_reports_in_total"));
        assert!(text.contains("rfipad_session_queue_depth{session=\"meter-ep\"}"));
        let json = engine.metrics_json();
        assert!(json.contains("\"engine\":{"));
        assert!(json.contains("\"id\":\"meter-ep\""));
        assert!(json.contains("\"metrics\":{"));
        // Over HTTP.
        let addr = engine.metrics_local_addr().expect("endpoint address");
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        use std::io::{Read as _, Write as _};
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "{response}");
        assert!(response.contains("rfipad_engine_sessions_opened_total"));
        session.close().expect("close");
        // Closed sessions drop their labelled series at the next render.
        let text = engine.metrics_text();
        assert!(!text.contains("session=\"meter-ep\""));
    }

    #[test]
    fn checkpoint_restore_resumes_mid_stream() {
        let expected = serial_events();
        let reports = recording();
        let split = reports.len() / 2; // mid-stroke: t ≈ 3.5 s of the [2, 4) sweep
        let engine = Engine::builder().workers(2).build().expect("engine");
        let session = engine
            .open_session("migrate-src", pipeline())
            .expect("open");
        for o in &reports[..split] {
            session.ingest(*o).expect("feed");
        }
        let checkpoint = session.checkpoint().expect("checkpoint");
        assert_eq!(checkpoint.id(), "migrate-src");
        // The checkpoint survives a serialization round-trip bit-exactly.
        let wire = checkpoint.to_json();
        let parsed = SessionCheckpoint::from_json(&wire).expect("parse");
        assert_eq!(parsed, checkpoint);
        assert_eq!(parsed.to_json(), wire);
        // Events produced before the migration stay with the source.
        let mut events = session.drain_events();
        // Resume on a fresh session (fresh recognizer, restored state) and
        // feed the rest of the stream there.
        let restored = engine
            .restore_session("migrate-dst", pipeline(), &parsed)
            .expect("restore");
        for o in &reports[split..] {
            restored.ingest(*o).expect("feed");
        }
        events.extend(restored.close().expect("close restored"));
        normalize_events(&mut events);
        assert_eq!(events, expected);
        session.close().expect("close source");
    }

    #[test]
    fn session_checkpoint_json_rejects_corruption() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("cp", quiet_pipeline()).expect("open");
        for o in quiet_reports(30) {
            session.ingest(o).expect("feed");
        }
        let wire = session.checkpoint().expect("checkpoint").to_json();
        assert!(matches!(
            SessionCheckpoint::from_json("not json"),
            Err(RfipadError::Checkpoint(_))
        ));
        // The first "version" in the document is the session envelope's.
        let foreign = wire.replacen("\"version\":1", "\"version\":7", 1);
        assert!(matches!(
            SessionCheckpoint::from_json(&foreign),
            Err(RfipadError::Checkpoint(_))
        ));
        let extra = format!("{{\"surprise\":true,{}", &wire[1..]);
        assert!(matches!(
            SessionCheckpoint::from_json(&extra),
            Err(RfipadError::Checkpoint(_))
        ));
        session.close().expect("close");
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("src", pipeline()).expect("open");
        let checkpoint = session.checkpoint().expect("checkpoint");
        // Same recognizer, different letter gap: a different pipeline
        // configuration must refuse the snapshot.
        let other = OnlinePipeline::builder()
            .recognizer(pipeline().recognizer().clone())
            .letter_gap_s(2.0)
            .build()
            .expect("pipeline");
        assert!(matches!(
            engine.restore_session("dst", other, &checkpoint),
            Err(RfipadError::Checkpoint(_))
        ));
        session.close().expect("close");
    }

    #[test]
    fn checkpoint_fails_once_the_session_is_gone() {
        let engine = Engine::builder()
            .workers(1)
            .idle_eviction_factor(0.02)
            .build()
            .expect("engine");
        let session = engine.open_session("gone", quiet_pipeline()).expect("open");
        session
            .ingest(quiet_reports(1).pop().expect("one"))
            .expect("feed");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(engine.sweep_idle(), vec!["gone".to_string()]);
        assert!(matches!(
            session.checkpoint(),
            Err(RfipadError::SessionClosed(_))
        ));
        session.close().expect("close after eviction");
        engine.shutdown();
    }

    #[test]
    fn checkpoint_fails_after_shutdown() {
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("down", quiet_pipeline()).expect("open");
        engine.shutdown();
        assert!(matches!(session.checkpoint(), Err(RfipadError::EngineDown)));
    }

    /// Every ingest entry point — per-report, batched, and both source
    /// drains — replays the golden recording to identical events.
    #[test]
    fn ingest_entry_points_match_serial_replay() {
        let expected = serial_events();
        let engine = Engine::builder().workers(1).build().expect("engine");
        let session = engine.open_session("mixed", pipeline()).expect("open");
        let reports = recording();
        let (head, tail) = reports.split_at(reports.len() / 2);
        for o in head {
            session.ingest(*o).expect("ingest");
        }
        let receipt = session
            .ingest_batch(tail.iter().copied().collect())
            .expect("ingest_batch");
        assert_eq!(receipt.accepted, tail.len() as u64);
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);

        let session = engine.open_session("src", pipeline()).expect("open");
        let receipt = session
            .ingest_source(&mut LiveSource::new(recording()))
            .expect("ingest_source");
        assert_eq!(receipt.accepted, recording().len() as u64);
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);

        let session = engine
            .open_session("src-batched", pipeline())
            .expect("open");
        let receipt = session
            .ingest_source_batched(&mut LiveSource::new(recording()), 32)
            .expect("ingest_source_batched");
        assert_eq!(receipt.accepted, recording().len() as u64);
        let mut events = session.close().expect("close");
        normalize_events(&mut events);
        assert_eq!(events, expected);
    }

    /// Lifecycle race: ingestors hammering sessions while a sweeper
    /// evicts them and the owners close them. Nothing may panic, every
    /// error must be a typed lifecycle error, and the engine's drop
    /// accounting must exactly match the receipts the ingestors were
    /// handed (a dropped report is counted once, an accepted one never
    /// lost).
    #[test]
    fn concurrent_ingest_close_and_sweep_conserve_receipts() {
        let em = crate::telemetry::engine_metrics();
        let reg_in_before = em.reports_in.get();
        let reg_dropped_before = em.reports_dropped.get();

        let engine = std::sync::Arc::new(
            Engine::builder()
                .workers(2)
                .queue_capacity(8)
                .backpressure(Backpressure::DropOldest)
                // Sessions become sweepable within ~letter_gap_s µs of
                // their last feed — the sweeper races every round.
                .idle_eviction_factor(1e-6)
                .build()
                .expect("engine"),
        );

        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sweeper = {
            let engine = std::sync::Arc::clone(&engine);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut evicted = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    evicted += engine.sweep_idle().len();
                    std::thread::yield_now();
                }
                evicted
            })
        };

        let ingestors: Vec<_> = (0..4)
            .map(|t| {
                let engine = std::sync::Arc::clone(&engine);
                std::thread::spawn(move || {
                    let mut receipt = IngestReceipt::default();
                    for round in 0..20 {
                        let session = match engine
                            .open_session(format!("race-{t}-{round}"), quiet_pipeline())
                        {
                            Ok(s) => s,
                            Err(RfipadError::EngineDown) => break,
                            Err(e) => panic!("open: {e}"),
                        };
                        for chunk in quiet_reports(48).chunks(12) {
                            match session.ingest_batch(chunk.iter().copied().collect()) {
                                Ok(r) => receipt.absorb(r),
                                // Swept mid-round: the id is gone, move on.
                                Err(RfipadError::SessionClosed(_)) => break,
                                Err(e) => panic!("ingest: {e}"),
                            }
                        }
                        match session.close() {
                            Ok(_) | Err(RfipadError::SessionClosed(_)) => {}
                            Err(e) => panic!("close: {e}"),
                        }
                    }
                    receipt
                })
            })
            .collect();

        let mut total = IngestReceipt::default();
        for handle in ingestors {
            total.absorb(handle.join().expect("ingestor panicked"));
        }
        stop.store(true, Ordering::Relaxed);
        sweeper.join().expect("sweeper panicked");

        // Receipts mirror the engine's own accounting exactly…
        let stats = engine.stats();
        assert_eq!(stats.reports_in, total.accepted, "accepted conserved");
        assert_eq!(stats.reports_dropped, total.dropped, "dropped conserved");
        // …and the registry mirror kept every increment (>= because the
        // counters are process-global and other tests run concurrently).
        assert!(em.reports_in.get() - reg_in_before >= total.accepted);
        assert!(em.reports_dropped.get() - reg_dropped_before >= total.dropped);
        match std::sync::Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => panic!("engine still referenced after joins"),
        }
    }

    /// Out-of-order clamp counts outlive the session that produced them:
    /// the registry is the durable sink once eviction destroys the
    /// per-session statistics.
    #[test]
    fn clamp_counts_survive_session_eviction() {
        let clamped = || {
            obs::registry()
                .counter(
                    "rfipad_pipeline_out_of_order_total",
                    "Reports that arrived with a stale timestamp, by applied policy.",
                    &[("policy", "clamp")],
                )
                .get()
        };
        let before = clamped();

        let engine = Engine::builder()
            .workers(1)
            .idle_eviction_factor(1e-6)
            .build()
            .expect("engine");
        let session = engine
            .open_session("clamp-evict", quiet_pipeline())
            .expect("open");
        // Feed forward, then stale: timestamps run backwards at the seam.
        let mut reports = quiet_reports(30);
        let stale: Vec<TagReport> = reports
            .iter()
            .map(|r| TagReport {
                time: r.time - 5.0,
                ..*r
            })
            .collect();
        reports.extend(stale);
        let receipt = session
            .ingest_batch(reports.iter().copied().collect())
            .expect("ingest");
        assert_eq!(receipt.accepted, reports.len() as u64);

        // Wait until every stale report has been clamped, then let the
        // sweeper destroy the session.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while session.stats().out_of_order < 30 {
            assert!(
                std::time::Instant::now() < deadline,
                "clamps never recorded"
            );
            std::thread::yield_now();
        }
        let session_clamps = session.stats().out_of_order;
        std::thread::sleep(std::time::Duration::from_millis(5));
        let evicted = engine.sweep_idle();
        assert_eq!(evicted, vec!["clamp-evict".to_string()]);
        assert!(!session.is_open(), "session is gone");

        // The per-session count died with the session; the registry
        // mirror kept every clamp.
        while clamped() - before < session_clamps {
            assert!(
                std::time::Instant::now() < deadline,
                "registry lost clamp counts after eviction"
            );
            std::thread::yield_now();
        }
        engine.shutdown();
    }

    #[test]
    fn normalize_strips_wall_clock_only() {
        let mut events = vec![PipelineEvent::LetterRecognized {
            letter: Some('L'),
            strokes: Vec::new(),
            response_time_s: 0.25,
        }];
        normalize_events(&mut events);
        assert_eq!(
            events[0],
            PipelineEvent::LetterRecognized {
                letter: Some('L'),
                strokes: Vec::new(),
                response_time_s: 0.0,
            }
        );
    }
}
