//! Pipeline configuration.

use crate::error::RfipadError;
use serde::{Deserialize, Serialize};

/// Tunable parameters of the RFIPad pipeline. Defaults follow the paper:
/// 100 ms frames, 5-frame (0.5 s) windows, diversity suppression on, and
/// Otsu binarization of the accumulative-phase image.
///
/// The struct is `#[non_exhaustive]`: downstream code starts from
/// [`RfipadConfig::default`] and overrides fields by assignment, so new
/// knobs can land without breaking callers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RfipadConfig {
    /// Frame length in seconds (paper: 100 ms).
    pub frame_len_s: f64,
    /// Frames per segmentation window (paper: 5 → 0.5 s).
    pub window_frames: usize,
    /// Multiplier on the calibrated static `std(rms(w))` level used as the
    /// stroke-activity threshold `thre` of Eq. 12.
    pub threshold_scale: f64,
    /// Absolute floor for the activity threshold (radians-RMS units),
    /// protecting against a perfectly quiet calibration.
    pub threshold_floor: f64,
    /// Minimum number of consecutive active frames for a stroke (shorter
    /// bursts are discarded as noise). 3 frames = 0.3 s at the default
    /// frame length, just under the fastest plausible stroke.
    pub min_stroke_frames: usize,
    /// Whether the Eq. 6–10 diversity suppression runs (the Fig. 16
    /// ablation switches this off).
    pub suppress_diversity: bool,
    /// Whether binarization uses Otsu's method (`true`, the paper) or the
    /// fixed threshold below (ablation).
    pub use_otsu: bool,
    /// Fixed binarization threshold on the normalized (0–1) image when
    /// `use_otsu` is false.
    pub fixed_threshold: f64,
    /// Multiplier on the calibrated static frame-RMS level; frames whose
    /// multi-tag RMS exceeds it count as active even when the window
    /// variance criterion (Eq. 12) is blind — e.g. a hand moving with
    /// steady influence.
    pub rms_level_scale: f64,
    /// Absolute floor of the RMS-level threshold (excess-RMS units). The
    /// excess RMS of a quiet pad is ≈0 in any environment, so the floor
    /// sets the minimum signal a stroke must inject.
    pub rms_level_floor: f64,
    /// Multiplier κ on each tag's deviation bias when subtracting the
    /// per-tag noise floor from frame RMS (excess-RMS segmentation).
    pub noise_floor_kappa: f64,
    /// Half-window of the moving-average smoother applied to RSS before
    /// trough detection.
    pub trough_smooth_half: usize,
    /// Minimum RSS trough prominence (dB) for the direction estimator.
    pub trough_min_prominence_db: f64,
}

impl RfipadConfig {
    /// Validates ranges, returning an error describing the first problem.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if any field is out of range.
    pub fn validate(&self) -> Result<(), RfipadError> {
        if self.frame_len_s <= 0.0 {
            return Err(RfipadError::InvalidConfig("frame_len_s must be > 0".into()));
        }
        if self.window_frames == 0 {
            return Err(RfipadError::InvalidConfig(
                "window_frames must be ≥ 1".into(),
            ));
        }
        if self.threshold_scale <= 0.0 {
            return Err(RfipadError::InvalidConfig(
                "threshold_scale must be > 0".into(),
            ));
        }
        if self.min_stroke_frames == 0 {
            return Err(RfipadError::InvalidConfig(
                "min_stroke_frames must be ≥ 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.fixed_threshold) {
            return Err(RfipadError::InvalidConfig(
                "fixed_threshold must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// The paper's configuration with diversity suppression disabled — the
    /// baseline of Fig. 16.
    pub fn without_suppression(&self) -> Self {
        Self {
            suppress_diversity: false,
            ..self.clone()
        }
    }
}

impl Default for RfipadConfig {
    fn default() -> Self {
        Self {
            frame_len_s: 0.1,
            window_frames: 5,
            threshold_scale: 3.0,
            threshold_floor: 0.05,
            min_stroke_frames: 3,
            suppress_diversity: true,
            use_otsu: true,
            fixed_threshold: 0.5,
            rms_level_scale: 2.5,
            rms_level_floor: 0.9,
            noise_floor_kappa: 1.3,
            trough_smooth_half: 2,
            trough_min_prominence_db: 1.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = RfipadConfig::default();
        c.validate().expect("default valid");
        assert_eq!(c.frame_len_s, 0.1);
        assert_eq!(c.window_frames, 5);
        assert!(c.suppress_diversity);
        assert!(c.use_otsu);
    }

    #[test]
    fn invalid_fields_rejected() {
        let c = RfipadConfig {
            frame_len_s: 0.0,
            ..RfipadConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RfipadConfig {
            window_frames: 0,
            ..RfipadConfig::default()
        };
        assert!(c.validate().is_err());

        let c = RfipadConfig {
            fixed_threshold: 1.5,
            ..RfipadConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn without_suppression_flips_only_that_flag() {
        let c = RfipadConfig::default();
        let b = c.without_suppression();
        assert!(!b.suppress_diversity);
        assert_eq!(b.frame_len_s, c.frame_len_s);
        assert_eq!(b.use_otsu, c.use_otsu);
    }
}
