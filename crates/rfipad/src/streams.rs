//! Per-tag signal streams assembled from the reader's report stream.
//!
//! Tag reads arrive serialized by the Gen2 MAC, one tag at a time. This
//! module regroups them into per-tag phase and RSS time series, applying
//! phase de-periodicity (unwrapping, §III-A3) and — when a calibration is
//! supplied — the Eq. 8 tag-diversity suppression that re-centres every
//! tag's phase around zero.

use crate::calibration::{wrap_to_pi, Calibration};
use crate::layout::ArrayLayout;
use crate::tagmap::TagIdMap;
use rfid_gen2::report::{TagId, TagReport};
use serde::{Deserialize, Serialize};
use sigproc::series::TimeSeries;
use sigproc::unwrap::StreamingUnwrapper;
use std::f64::consts::TAU;
use std::sync::Arc;

/// Per-tag phase and RSS time series over one recording.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TagStreams {
    phase: TagIdMap<TagId, TimeSeries>,
    rss: TagIdMap<TagId, TimeSeries>,
    start: Option<f64>,
    end: Option<f64>,
}

impl TagStreams {
    /// Builds streams from tag reports.
    ///
    /// With `calibration = Some(..)` the phase stream of tag *i* is the
    /// unwrapped `θᵢⱼ − θ̃ᵢ` (Eq. 8): continuous and starting in `(−π, π]`.
    /// With `None` (the paper's no-suppression baseline) it is the raw
    /// unwrapped phase, whose centre value keeps the tag's hardware offset.
    ///
    /// Reports for tags outside `layout` are ignored (a public-area
    /// reader hears unrelated tags too).
    pub fn build<'a>(
        layout: &ArrayLayout,
        calibration: Option<&Calibration>,
        observations: impl IntoIterator<Item = &'a TagReport>,
    ) -> Self {
        let mut builder = TagStreamsBuilder::new();
        for obs in observations {
            builder.push(layout, calibration, obs);
        }
        builder.into_streams()
    }

    /// The suppressed (or raw) phase series of a tag, empty if never read.
    pub fn phase(&self, id: TagId) -> Option<&TimeSeries> {
        self.phase.get(&id)
    }

    /// The RSS series of a tag.
    pub fn rss(&self, id: TagId) -> Option<&TimeSeries> {
        self.rss.get(&id)
    }

    /// All phase series in layout order for a given layout.
    pub fn phase_series(&self, layout: &ArrayLayout) -> Vec<TimeSeries> {
        layout
            .tags()
            .iter()
            .map(|id| self.phase.get(id).cloned().unwrap_or_default())
            .collect()
    }

    /// Earliest observation time.
    pub fn start(&self) -> Option<f64> {
        self.start
    }

    /// Latest observation time.
    pub fn end(&self) -> Option<f64> {
        self.end
    }

    /// Number of tags with at least one read.
    pub fn tag_count(&self) -> usize {
        self.phase.len()
    }

    /// Total reads across all tags.
    pub fn total_reads(&self) -> usize {
        self.phase.values().map(TimeSeries::len).sum()
    }
}

/// Incremental counterpart of [`TagStreams::build`]: appends one report at
/// a time while carrying the per-tag unwrap state and Eq. 8 re-centring
/// offsets across pushes, so the accumulated [`TagStreams`] is identical to
/// a one-shot batch build over the same reports in the same order.
///
/// This is what lets `OnlinePipeline` keep its streams cached between frame
/// ticks instead of rebuilding them from the whole retained buffer. Note
/// the offsets are chosen at each tag's *first* sample — rebuilding from a
/// trimmed buffer may legitimately pick different offsets, which is why the
/// pipeline invalidates (rather than patches) its cache on trims.
/// The accumulated streams live behind an [`Arc`] so downstream consumers
/// (the stage graph's tick payloads) can hold a cheap reference to the
/// snapshot at a tick without cloning the series. Pushes mutate in place
/// via [`Arc::make_mut`] — O(1) while no snapshot is outstanding, a deep
/// copy-on-write only if one is still held across a push.
#[derive(Debug, Clone, Default)]
pub struct TagStreamsBuilder {
    // One map for all per-tag push state: a report costs a single probe
    // here instead of one per field.
    tags: TagIdMap<TagId, TagPushState>,
    streams: Arc<TagStreams>,
}

/// Per-tag incremental state carried across pushes: the unwrap window and
/// the Eq. 8 re-centring offset chosen at the tag's first sample.
#[derive(Debug, Clone, Default)]
struct TagPushState {
    unwrapper: StreamingUnwrapper,
    offset: Option<f64>,
}

impl TagStreamsBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one report. Returns the `(tag, time, calibrated phase)`
    /// sample that was appended, or `None` if the report's tag is outside
    /// `layout` and was ignored.
    ///
    /// `layout` and `calibration` must be the same on every push; they are
    /// passed per call (rather than stored) so the builder can live beside
    /// the recognizer that owns them.
    pub fn push(
        &mut self,
        layout: &ArrayLayout,
        calibration: Option<&Calibration>,
        obs: &TagReport,
    ) -> Option<(TagId, f64, f64)> {
        if !layout.contains(obs.tag) {
            return None;
        }
        let state = self.tags.entry(obs.tag).or_default();
        let unwrapped = state.unwrapper.push(obs.phase);
        let value = match calibration {
            Some(cal) => {
                let mean = cal.mean_phase(obs.tag).expect("layout tag calibrated");
                // Re-centre: choose the 2π offset once (at the first
                // sample) so the suppressed stream starts in (−π, π]
                // and stays continuous afterwards.
                let offset = *state.offset.get_or_insert_with(|| {
                    let first = unwrapped - mean;
                    first - wrap_to_pi(first)
                });
                unwrapped - mean - offset
            }
            None => unwrapped,
        };
        let out = Arc::make_mut(&mut self.streams);
        out.phase.entry(obs.tag).or_default().push(obs.time, value);
        out.rss
            .entry(obs.tag)
            .or_default()
            .push(obs.time, obs.rss_dbm);
        out.start = Some(out.start.map_or(obs.time, |s: f64| s.min(obs.time)));
        out.end = Some(out.end.map_or(obs.time, |e: f64| e.max(obs.time)));
        Some((obs.tag, obs.time, value))
    }

    /// Resets the builder to empty while keeping every allocation (hash-map
    /// tables, per-tag series buffers) for reuse, so rebuilding over a
    /// trimmed buffer avoids re-growing the same structures.
    ///
    /// Per-tag series entries are kept (emptied) rather than removed;
    /// consumers walk tags in layout order and treat missing and empty
    /// series alike. One observable difference: [`TagStreams::tag_count`]
    /// still counts tags seen before the reset — use a fresh builder where
    /// that distinction matters.
    pub fn clear(&mut self) {
        self.tags.clear();
        let streams = Arc::make_mut(&mut self.streams);
        for series in streams.phase.values_mut() {
            series.clear();
        }
        for series in streams.rss.values_mut() {
            series.clear();
        }
        streams.start = None;
        streams.end = None;
    }

    /// The streams accumulated so far.
    pub fn streams(&self) -> &TagStreams {
        &self.streams
    }

    /// A shared handle to the streams accumulated so far. Holding it across
    /// a later [`push`](Self::push) is allowed but forces that push to
    /// copy-on-write; drop the handle when done with the snapshot.
    pub fn shared_streams(&self) -> Arc<TagStreams> {
        Arc::clone(&self.streams)
    }

    /// Consumes the builder, returning the accumulated streams.
    pub fn into_streams(self) -> TagStreams {
        Arc::try_unwrap(self.streams).unwrap_or_else(|shared| (*shared).clone())
    }
}

/// Convenience: raw wrapped phase in `[0, 2π)` for tests and experiments.
pub fn wrap_phase(p: f64) -> f64 {
    p.rem_euclid(TAU)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RfipadConfig;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(1, 2, vec![TagId(0), TagId(1)])
    }

    fn obs(tag: TagId, time: f64, phase: f64) -> TagReport {
        TagReport::synthetic(tag, time, wrap_phase(phase), -45.0)
    }

    fn calibration_with_means(m0: f64, m1: f64) -> Calibration {
        // Build via static observations with tiny jitter around the means.
        let mut observations = Vec::new();
        for j in 0..30 {
            observations.push(obs(
                TagId(0),
                j as f64 * 0.05,
                m0 + 0.001 * (j as f64).sin(),
            ));
            observations.push(obs(
                TagId(1),
                j as f64 * 0.05 + 0.01,
                m1 + 0.001 * (j as f64).cos(),
            ));
        }
        Calibration::from_observations(&layout(), &observations, &RfipadConfig::default())
            .expect("calibration")
    }

    #[test]
    fn suppression_centres_streams_at_zero() {
        let cal = calibration_with_means(1.0, 5.0);
        let observations: Vec<TagReport> = (0..20)
            .flat_map(|j| {
                vec![
                    obs(TagId(0), j as f64 * 0.1, 1.0 + 0.05 * (j as f64).sin()),
                    obs(
                        TagId(1),
                        j as f64 * 0.1 + 0.05,
                        5.0 + 0.05 * (j as f64).cos(),
                    ),
                ]
            })
            .collect();
        let streams = TagStreams::build(&layout(), Some(&cal), &observations);
        for id in [TagId(0), TagId(1)] {
            let series = streams.phase(id).expect("present");
            for (_, v) in series.iter() {
                assert!(v.abs() < 0.3, "suppressed value {v} for {id}");
            }
        }
    }

    #[test]
    fn without_suppression_centres_differ() {
        let observations: Vec<TagReport> = (0..20)
            .flat_map(|j| {
                vec![
                    obs(TagId(0), j as f64 * 0.1, 1.0),
                    obs(TagId(1), j as f64 * 0.1 + 0.05, 5.0),
                ]
            })
            .collect();
        let streams = TagStreams::build(&layout(), None, &observations);
        let m0 = streams.phase(TagId(0)).unwrap().values()[0];
        let m1 = streams.phase(TagId(1)).unwrap().values()[0];
        assert!((m0 - m1).abs() > 1.0, "raw centres {m0} vs {m1}");
    }

    #[test]
    fn wrapped_ramp_is_unwrapped() {
        let cal = calibration_with_means(0.1, 0.1);
        // Tag 0's true phase ramps 0.1 → 9; reported wrapped.
        let observations: Vec<TagReport> = (0..90)
            .map(|j| obs(TagId(0), j as f64 * 0.05, 0.1 + j as f64 * 0.1))
            .chain((0..30).map(|j| obs(TagId(1), 4.5 + j as f64 * 0.01, 0.1)))
            .collect();
        let streams = TagStreams::build(&layout(), Some(&cal), &observations);
        let series = streams.phase(TagId(0)).expect("present");
        // Continuous: no ±2π jumps between consecutive samples.
        for pair in series.values().windows(2) {
            assert!((pair[1] - pair[0]).abs() < 1.0);
        }
        // Total travel ≈ 8.9 rad.
        let travel = series.values().last().unwrap() - series.values()[0];
        assert!((travel - 8.9).abs() < 0.1, "travel {travel}");
    }

    #[test]
    fn foreign_tags_ignored() {
        let observations = vec![obs(TagId(0), 0.0, 1.0), obs(TagId(77), 0.1, 2.0)];
        let streams = TagStreams::build(&layout(), None, &observations);
        assert_eq!(streams.tag_count(), 1);
        assert!(streams.phase(TagId(77)).is_none());
    }

    #[test]
    fn span_and_counts() {
        let observations = vec![
            obs(TagId(0), 1.0, 0.5),
            obs(TagId(1), 1.5, 0.5),
            obs(TagId(0), 2.0, 0.5),
        ];
        let streams = TagStreams::build(&layout(), None, &observations);
        assert_eq!(streams.start(), Some(1.0));
        assert_eq!(streams.end(), Some(2.0));
        assert_eq!(streams.total_reads(), 3);
    }

    #[test]
    fn phase_series_in_layout_order_with_gaps() {
        let observations = vec![obs(TagId(1), 0.0, 1.0)];
        let streams = TagStreams::build(&layout(), None, &observations);
        let series = streams.phase_series(&layout());
        assert_eq!(series.len(), 2);
        assert!(series[0].is_empty());
        assert_eq!(series[1].len(), 1);
    }

    #[test]
    fn incremental_builder_matches_batch_build() {
        let cal = calibration_with_means(1.0, 5.0);
        let observations: Vec<TagReport> = (0..40)
            .flat_map(|j| {
                vec![
                    obs(TagId(0), j as f64 * 0.1, 1.0 + j as f64 * 0.2),
                    obs(TagId(1), j as f64 * 0.1 + 0.05, 5.0 - j as f64 * 0.15),
                    obs(TagId(99), j as f64 * 0.1 + 0.07, 0.0), // foreign
                ]
            })
            .collect();
        let batch = TagStreams::build(&layout(), Some(&cal), &observations);
        let mut builder = TagStreamsBuilder::new();
        for o in &observations {
            let accepted = builder.push(&layout(), Some(&cal), o);
            assert_eq!(accepted.is_some(), o.tag != TagId(99));
            if let Some((tag, t, v)) = accepted {
                assert_eq!(tag, o.tag);
                assert_eq!(t, o.time);
                let series = builder.streams().phase(tag).expect("just pushed");
                assert_eq!(*series.values().last().expect("nonempty"), v);
            }
        }
        assert_eq!(builder.streams(), &batch);
        assert_eq!(builder.into_streams(), batch);
    }

    #[test]
    fn shared_snapshot_survives_later_pushes() {
        // A snapshot held across a push sees the state at snapshot time;
        // the builder copies on write and keeps accumulating.
        let mut builder = TagStreamsBuilder::new();
        builder.push(&layout(), None, &obs(TagId(0), 0.0, 1.0));
        let snapshot = builder.shared_streams();
        builder.push(&layout(), None, &obs(TagId(0), 1.0, 2.0));
        assert_eq!(snapshot.total_reads(), 1);
        assert_eq!(builder.streams().total_reads(), 2);
        assert_eq!(builder.shared_streams().total_reads(), 2);
    }

    #[test]
    fn rss_stream_recorded() {
        let observations = vec![obs(TagId(0), 0.0, 1.0)];
        let streams = TagStreams::build(&layout(), None, &observations);
        assert_eq!(streams.rss(TagId(0)).unwrap().values(), &[-45.0]);
    }
}
