//! RSS-based direction estimation (§III-B).
//!
//! Phase trends differ wildly from tag to tag (monotone, axially or
//! circularly symmetric — the paper's Fig. 8), so RFIPad infers the travel
//! direction from RSS instead: each tag shows a distinct *trough* when the
//! hand passes directly over it, and the order of the troughs across the
//! foreground tags gives the tag sequence — hence the direction.
//!
//! The two-stage estimator: (1) per tag, smooth the RSS and pick the most
//! prominent trough inside the stroke span; (2) regress the trough-ordered
//! tag positions against trough time and compare the fitted travel vector
//! with the shape's canonical direction.

use crate::config::RfipadConfig;
use crate::layout::ArrayLayout;
use crate::motion::RecognizedMotion;
use crate::streams::TagStreams;
use hand_kinematics::stroke::{Stroke, StrokeShape};
use serde::{Deserialize, Serialize};
use sigproc::filter::{deepest_trough, moving_average};

/// A per-tag trough observation: when the hand crossed the tag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagTrough {
    /// Grid cell of the tag.
    pub cell: (usize, usize),
    /// Time of the RSS minimum.
    pub time: f64,
    /// Trough prominence in dB.
    pub prominence_db: f64,
}

/// Direction estimation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionEstimate {
    /// The completed stroke (shape + direction).
    pub stroke: Stroke,
    /// The troughs the estimate is based on, in time order.
    pub troughs: Vec<TagTrough>,
    /// Fitted travel vector `(d_row/dt, d_col/dt)` in cells per second;
    /// zero when fewer than two troughs were found.
    pub velocity: (f64, f64),
}

/// Estimates stroke direction from RSS troughs.
#[derive(Debug, Clone, Default)]
pub struct DirectionEstimator {
    config: RfipadConfig,
}

impl DirectionEstimator {
    /// Creates an estimator.
    pub fn new(config: RfipadConfig) -> Self {
        Self { config }
    }

    /// Estimates the direction of a recognized motion over `[start, end)`.
    ///
    /// Falls back to the canonical direction (not reversed) when fewer than
    /// two usable troughs exist (e.g. a click, or too few reads).
    pub fn estimate(
        &self,
        motion: &RecognizedMotion,
        layout: &ArrayLayout,
        streams: &TagStreams,
        start: f64,
        end: f64,
    ) -> DirectionEstimate {
        let mut troughs = self.collect_troughs(motion, layout, streams, start, end);
        troughs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));

        let velocity = fit_velocity(&troughs);
        let reversed = if motion.shape.is_directional() {
            let canonical = canonical_velocity(motion.shape);
            let dot = velocity.0 * canonical.0 + velocity.1 * canonical.1;
            dot < 0.0
        } else {
            false
        };
        let stroke = if reversed {
            Stroke::reversed(motion.shape)
        } else {
            Stroke::new(motion.shape)
        };
        DirectionEstimate {
            stroke,
            troughs,
            velocity,
        }
    }

    /// Stage 1: the most prominent RSS trough of every foreground tag.
    fn collect_troughs(
        &self,
        motion: &RecognizedMotion,
        layout: &ArrayLayout,
        streams: &TagStreams,
        start: f64,
        end: f64,
    ) -> Vec<TagTrough> {
        let mut out = Vec::new();
        for (r, c) in motion.mask.foreground() {
            let id = layout.at(r, c);
            let Some(series) = streams.rss(id) else {
                continue;
            };
            // Pad the span slightly: the trough of an edge tag can sit right
            // at the segment boundary.
            let pad = 0.2;
            let span = series.slice_time(start - pad, end + pad);
            if span.len() < 5 {
                continue;
            }
            let smoothed = moving_average(span.values(), self.config.trough_smooth_half);
            if let Some(trough) = deepest_trough(&smoothed) {
                if trough.prominence >= self.config.trough_min_prominence_db {
                    out.push(TagTrough {
                        cell: (r, c),
                        time: span.times()[trough.index],
                        prominence_db: trough.prominence,
                    });
                }
            }
        }
        out
    }
}

impl DirectionEstimator {
    /// Phase-based direction baseline (the alternative §III-B argues
    /// *against*): each foreground tag's crossing time is estimated as the
    /// |Δphase|-weighted mean time of its phase activity, and the travel
    /// vector is regressed from those times. Phase trends are inconsistent
    /// across tags (Fig. 8), so this is less reliable than the RSS troughs
    /// — the ablation experiment quantifies by how much.
    pub fn estimate_phase_based(
        &self,
        motion: &RecognizedMotion,
        layout: &ArrayLayout,
        streams: &TagStreams,
        start: f64,
        end: f64,
    ) -> DirectionEstimate {
        let mut pseudo_troughs = Vec::new();
        for (r, c) in motion.mask.foreground() {
            let id = layout.at(r, c);
            let Some(series) = streams.phase(id) else {
                continue;
            };
            let part = series.slice_time(start, end);
            if part.len() < 3 {
                continue;
            }
            let times = part.times();
            let values = part.values();
            let mut weight = 0.0;
            let mut weighted_time = 0.0;
            for j in 1..part.len() {
                let delta = (values[j] - values[j - 1]).abs();
                weight += delta;
                weighted_time += delta * 0.5 * (times[j] + times[j - 1]);
            }
            if weight > 1e-9 {
                pseudo_troughs.push(TagTrough {
                    cell: (r, c),
                    time: weighted_time / weight,
                    prominence_db: weight,
                });
            }
        }
        pseudo_troughs.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite"));
        let velocity = fit_velocity(&pseudo_troughs);
        let reversed = if motion.shape.is_directional() {
            let canonical = canonical_velocity(motion.shape);
            velocity.0 * canonical.0 + velocity.1 * canonical.1 < 0.0
        } else {
            false
        };
        let stroke = if reversed {
            Stroke::reversed(motion.shape)
        } else {
            Stroke::new(motion.shape)
        };
        DirectionEstimate {
            stroke,
            troughs: pseudo_troughs,
            velocity,
        }
    }
}

/// Least-squares slope of (row, col) against trough time, cells/second.
fn fit_velocity(troughs: &[TagTrough]) -> (f64, f64) {
    if troughs.len() < 2 {
        return (0.0, 0.0);
    }
    let n = troughs.len() as f64;
    let mean_t = troughs.iter().map(|t| t.time).sum::<f64>() / n;
    let mean_r = troughs.iter().map(|t| t.cell.0 as f64).sum::<f64>() / n;
    let mean_c = troughs.iter().map(|t| t.cell.1 as f64).sum::<f64>() / n;
    let var_t: f64 = troughs
        .iter()
        .map(|t| (t.time - mean_t) * (t.time - mean_t))
        .sum();
    if var_t < 1e-9 {
        return (0.0, 0.0);
    }
    let cov_r: f64 = troughs
        .iter()
        .map(|t| (t.time - mean_t) * (t.cell.0 as f64 - mean_r))
        .sum();
    let cov_c: f64 = troughs
        .iter()
        .map(|t| (t.time - mean_t) * (t.cell.1 as f64 - mean_c))
        .sum();
    (cov_r / var_t, cov_c / var_t)
}

/// Canonical travel vector `(d_row, d_col)` of each directional shape.
fn canonical_velocity(shape: StrokeShape) -> (f64, f64) {
    match shape {
        StrokeShape::Click => (0.0, 0.0),
        StrokeShape::HLine => (0.0, 1.0),
        StrokeShape::VLine => (1.0, 0.0),
        StrokeShape::Slash => (-1.0, 1.0),
        StrokeShape::Backslash => (1.0, 1.0),
        // Arcs travel top → bottom in canonical form.
        StrokeShape::ArcLeft | StrokeShape::ArcRight => (1.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::report::{TagId, TagReport};
    use sigproc::grid::BinaryGrid;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(5, 5, (0..25).map(TagId).collect())
    }

    /// RSS streams where column 2's tags dip in sequence (top to bottom at
    /// one tag per 0.4 s).
    fn sweeping_streams(reverse: bool) -> TagStreams {
        let l = layout();
        let mut observations = Vec::new();
        for step in 0..200 {
            let t = step as f64 * 0.02; // 4 s, 50 Hz per tag
            for r in 0..5 {
                let id = l.at(r, 2);
                // The hand crosses row r at time 0.8 + 0.4·r (or reversed).
                let cross = if reverse {
                    0.8 + 0.4 * (4 - r) as f64
                } else {
                    0.8 + 0.4 * r as f64
                };
                let dip = -8.0 * (-(t - cross) * (t - cross) / 0.02).exp();
                observations.push(TagReport::synthetic(id, t, 1.0, -45.0 + dip));
            }
        }
        TagStreams::build(&l, None, &observations)
    }

    fn column_motion() -> RecognizedMotion {
        let mut mask = BinaryGrid::empty(5, 5);
        for r in 0..5 {
            mask.set(r, 2, true);
        }
        RecognizedMotion {
            shape: StrokeShape::VLine,
            mask,
            centroid: (2.0, 2.0),
            bbox: (0, 2, 4, 2),
        }
    }

    #[test]
    fn downward_sweep_is_canonical() {
        let streams = sweeping_streams(false);
        let est = DirectionEstimator::new(RfipadConfig::default());
        let d = est.estimate(&column_motion(), &layout(), &streams, 0.5, 3.0);
        assert_eq!(d.stroke, Stroke::new(StrokeShape::VLine));
        assert!(d.velocity.0 > 0.5, "row velocity {:?}", d.velocity);
        assert_eq!(d.troughs.len(), 5);
    }

    #[test]
    fn upward_sweep_is_reversed() {
        let streams = sweeping_streams(true);
        let est = DirectionEstimator::new(RfipadConfig::default());
        let d = est.estimate(&column_motion(), &layout(), &streams, 0.5, 3.0);
        assert_eq!(d.stroke, Stroke::reversed(StrokeShape::VLine));
        assert!(d.velocity.0 < -0.5);
    }

    #[test]
    fn troughs_ordered_by_time() {
        let streams = sweeping_streams(false);
        let est = DirectionEstimator::new(RfipadConfig::default());
        let d = est.estimate(&column_motion(), &layout(), &streams, 0.5, 3.0);
        for pair in d.troughs.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        // Trough order follows row order for a downward sweep.
        let rows: Vec<usize> = d.troughs.iter().map(|t| t.cell.0).collect();
        assert_eq!(rows, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn click_never_reversed() {
        let streams = sweeping_streams(false);
        let mut mask = BinaryGrid::empty(5, 5);
        mask.set(2, 2, true);
        let motion = RecognizedMotion {
            shape: StrokeShape::Click,
            mask,
            centroid: (2.0, 2.0),
            bbox: (2, 2, 2, 2),
        };
        let est = DirectionEstimator::new(RfipadConfig::default());
        let d = est.estimate(&motion, &layout(), &streams, 0.5, 3.0);
        assert!(!d.stroke.reversed);
    }

    #[test]
    fn no_troughs_defaults_to_canonical() {
        // Flat RSS: no troughs anywhere.
        let l = layout();
        let observations: Vec<TagReport> = (0..100)
            .flat_map(|step| {
                let t = step as f64 * 0.04;
                (0..25).map(move |i| TagReport::synthetic(TagId(i), t, 1.0, -45.0))
            })
            .collect();
        let streams = TagStreams::build(&l, None, &observations);
        let est = DirectionEstimator::new(RfipadConfig::default());
        let d = est.estimate(&column_motion(), &l, &streams, 0.5, 3.0);
        assert!(d.troughs.is_empty());
        assert_eq!(d.velocity, (0.0, 0.0));
        assert!(!d.stroke.reversed);
    }

    #[test]
    fn fit_velocity_needs_two_points() {
        let one = vec![TagTrough {
            cell: (0, 0),
            time: 1.0,
            prominence_db: 5.0,
        }];
        assert_eq!(fit_velocity(&one), (0.0, 0.0));
    }

    #[test]
    fn canonical_vectors_match_stroke_table() {
        // Spot-check against the travel conventions in hand-kinematics.
        assert_eq!(canonical_velocity(StrokeShape::HLine), (0.0, 1.0));
        assert_eq!(canonical_velocity(StrokeShape::Slash), (-1.0, 1.0));
    }
}
