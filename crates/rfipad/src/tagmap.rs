//! `TagId`-keyed hash maps with a cheap multiplicative hasher.
//!
//! Every report the pipeline ingests pays several `TagId` map probes
//! (layout membership, calibration mean, unwrap state, the two stream
//! series), and `std`'s default SipHash dominates each probe for a key
//! that is just one `u64`. [`TagIdMap`] swaps in a Fibonacci-multiply
//! hasher: one `wrapping_mul` spreads the id's bits into the high word,
//! which `HashMap` folds down for bucket selection. Tag ids come from the
//! deployment's own tag plate (not from untrusted input), so HashDoS
//! resistance buys nothing here.
//!
//! Only lookups get faster; nothing observable changes. No code iterates
//! these maps in an order-sensitive way (layout and stream walks go
//! through the row-major `tags()` list), so recognition output — and the
//! golden trace — stays bit-identical.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplies a `u64` key by 2⁶⁴/φ, the classic Fibonacci-hashing
/// constant, so consecutive ids land in well-separated buckets.
#[derive(Debug, Default, Clone, Copy)]
pub struct TagIdHasher(u64);

/// 2⁶⁴ divided by the golden ratio, rounded to odd.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

impl Hasher for TagIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    // Fallback for non-integer writes (unused by `TagId`'s derived Hash,
    // which calls `write_u64`): fold bytes with the same multiplier.
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FIB);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(FIB);
    }
}

/// A `HashMap` keyed by [`TagId`](rfid_gen2::report::TagId) (or any
/// `u64`-hashing key) using [`TagIdHasher`].
pub type TagIdMap<K, V> = HashMap<K, V, BuildHasherDefault<TagIdHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::report::TagId;

    #[test]
    fn map_roundtrip_and_distinct_hashes() {
        let mut map: TagIdMap<TagId, usize> = TagIdMap::default();
        for i in 0..64 {
            map.insert(TagId(i), i as usize);
        }
        assert_eq!(map.len(), 64);
        for i in 0..64 {
            assert_eq!(map.get(&TagId(i)), Some(&(i as usize)));
        }
        // Consecutive ids must not collapse onto one hash.
        let mut h0 = TagIdHasher::default();
        h0.write_u64(1);
        let mut h1 = TagIdHasher::default();
        h1.write_u64(2);
        assert_ne!(h0.finish(), h1.finish());
    }

    #[test]
    fn byte_fallback_matches_itself_only() {
        let mut a = TagIdHasher::default();
        a.write(b"abc");
        let mut b = TagIdHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
