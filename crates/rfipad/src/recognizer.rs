//! The complete offline recognizer: report stream → strokes → letter.

use crate::accumulate::accumulative_image;
use crate::calibration::Calibration;
use crate::config::RfipadConfig;
use crate::direction::DirectionEstimator;
use crate::error::RfipadError;
use crate::grammar::{GrammarTree, ObservedStroke};
use crate::layout::ArrayLayout;
use crate::motion::{MotionRecognizer, RecognizedMotion};
use crate::segmentation::{Segmentation, Segmenter, StrokeSpan};
use crate::streams::TagStreams;
use hand_kinematics::stroke::Stroke;
use rfid_gen2::report::TagReport;
use serde::{Deserialize, Serialize};

/// One fully recognized stroke.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecognizedStroke {
    /// Shape + direction.
    pub stroke: Stroke,
    /// Time span the stroke was detected over.
    pub span: StrokeSpan,
    /// The image evidence (mask, centroid, bbox).
    pub motion: RecognizedMotion,
}

impl RecognizedStroke {
    /// Converts to the grammar's observation form, normalizing grid
    /// coordinates into the unit pad box.
    pub fn to_observed(&self, layout: &ArrayLayout) -> ObservedStroke {
        let rows = (layout.rows() - 1).max(1) as f64;
        let cols = (layout.cols() - 1).max(1) as f64;
        let (min_r, min_c, max_r, max_c) = self.motion.bbox;
        ObservedStroke {
            stroke: self.stroke,
            centroid: (self.motion.centroid.0 / rows, self.motion.centroid.1 / cols),
            extent: ((max_r - min_r) as f64 / rows, (max_c - min_c) as f64 / cols),
        }
    }
}

/// Result of recognizing one session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionResult {
    /// Recognized strokes in time order.
    pub strokes: Vec<RecognizedStroke>,
    /// The deduced letter, if the stroke sequence matches the grammar.
    pub letter: Option<char>,
    /// Raw segmentation (spans + frame scores).
    pub segmentation: Segmentation,
}

/// Validating builder for [`Recognizer`], the supported way to construct
/// one.
///
/// ```no_run
/// # fn demo(layout: rfipad::ArrayLayout, cal: rfipad::Calibration)
/// #     -> Result<(), rfipad::RfipadError> {
/// let recognizer = rfipad::Recognizer::builder()
///     .layout(layout)
///     .calibration(cal)
///     .build()?; // config defaults to RfipadConfig::default()
/// # let _ = recognizer; Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "call .build() to obtain the recognizer"]
pub struct RecognizerBuilder {
    layout: Option<ArrayLayout>,
    calibration: Option<Calibration>,
    config: Option<RfipadConfig>,
}

impl RecognizerBuilder {
    /// The tag-array layout (required).
    pub fn layout(mut self, layout: ArrayLayout) -> Self {
        self.layout = Some(layout);
        self
    }

    /// The static calibration for that layout (required).
    pub fn calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = Some(calibration);
        self
    }

    /// Pipeline configuration (defaults to [`RfipadConfig::default`]).
    pub fn config(mut self, config: RfipadConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Validates the configuration and assembles the recognizer.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if layout or calibration is
    /// missing, or if the configuration fails [`RfipadConfig::validate`].
    pub fn build(self) -> Result<Recognizer, RfipadError> {
        let layout = self.layout.ok_or_else(|| {
            RfipadError::invalid_field("RecognizerBuilder", "layout", "required but not set")
        })?;
        let calibration = self.calibration.ok_or_else(|| {
            RfipadError::invalid_field("RecognizerBuilder", "calibration", "required but not set")
        })?;
        let config = self.config.unwrap_or_default();
        config.validate().map_err(|e| match e {
            RfipadError::InvalidConfig(msg) => {
                RfipadError::invalid_field("RecognizerBuilder", "config", msg)
            }
            other => other,
        })?;
        Ok(Recognizer {
            motion: MotionRecognizer::new(config.clone()),
            direction: DirectionEstimator::new(config.clone()),
            segmenter: Segmenter::new(config.clone()),
            grammar: GrammarTree::standard(),
            layout,
            calibration,
            config,
        })
    }
}

/// The full RFIPad recognizer.
#[derive(Debug, Clone)]
pub struct Recognizer {
    layout: ArrayLayout,
    calibration: Calibration,
    config: RfipadConfig,
    motion: MotionRecognizer,
    direction: DirectionEstimator,
    segmenter: Segmenter,
    grammar: GrammarTree,
}

impl Recognizer {
    /// Starts a validating builder ([`RecognizerBuilder`]).
    pub fn builder() -> RecognizerBuilder {
        RecognizerBuilder::default()
    }

    /// The layout in use.
    pub fn layout(&self) -> &ArrayLayout {
        &self.layout
    }

    /// The calibration in use.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// The configuration in use.
    pub fn config(&self) -> &RfipadConfig {
        &self.config
    }

    /// Builds calibrated (centred, unwrapped) streams from raw
    /// observations. Stream centring is always applied — segmentation
    /// cannot function on raw phase offsets; the `suppress_diversity`
    /// ablation instead disables the Eq. 9–10 weighting and noise-floor
    /// correction of the accumulative image (the paper's Fig. 7(a) vs
    /// 7(b) comparison).
    pub fn streams(&self, observations: &[TagReport]) -> TagStreams {
        TagStreams::build(&self.layout, Some(&self.calibration), observations)
    }

    /// Recognizes the motion drawn during an explicit time span.
    ///
    /// Shape comes primarily from the *temporal path* — the intensity
    /// centroids of overlapping sub-spans trace where the hand went, which
    /// separates arcs, lines, and clicks robustly — with the image-template
    /// classifier as fallback. Direction comes from the RSS-trough
    /// estimator (§III-B), falling back to the path's own travel direction
    /// when too few troughs exist.
    ///
    /// Returns `None` when the span contains no classifiable foreground.
    pub fn recognize_span(
        &self,
        streams: &TagStreams,
        span: StrokeSpan,
    ) -> Option<RecognizedStroke> {
        let cal = self.config.suppress_diversity.then_some(&self.calibration);
        let image = accumulative_image(&self.layout, streams, cal, span.start, span.end).ok()?;
        let mut motion = self.motion.recognize(&image)?;

        // Temporal path classification: intensity centroids of sub-spans
        // trace the pen at sub-cell accuracy. A genuinely compact image is
        // a click regardless of centroid jitter.
        let (min_r, min_c, max_r, max_c) = motion.bbox;
        let path = self.span_path(streams, span);
        let path_points: Vec<(f64, f64)> = path.iter().map(|s| s.point).collect();
        // The click verdict of the image stands only while the path agrees
        // the pen barely travelled — an edge stroke can light a compact
        // mask yet sweep several cells.
        let path_chord = match (path_points.first(), path_points.last()) {
            (Some(a), Some(b)) => ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt(),
            _ => 0.0,
        };
        let compact_click = motion.shape == hand_kinematics::stroke::StrokeShape::Click
            && max_r - min_r <= 1
            && max_c - min_c <= 1
            && path_chord < 1.2;
        let path_hint = if compact_click {
            None
        } else {
            crate::motion::classify_path(&path_points)
        };
        let path_reversed = match path_hint {
            Some((shape, reversed)) => {
                // Chord direction survives centroid noise at any stroke
                // length, but a *bow* needs well-sampled sub-windows: arc
                // verdicts from paths of quick strokes are noise, so the
                // image template keeps shape authority there.
                use hand_kinematics::stroke::StrokeShape::{ArcLeft, ArcRight};
                let path_arc = matches!(shape, ArcLeft | ArcRight);
                if !path_arc || span.duration() >= 1.05 {
                    motion.shape = shape;
                }
                reversed
            }
            None => false,
        };

        let mut direction =
            self.direction
                .estimate(&motion, &self.layout, streams, span.start, span.end);
        // Click promotion: a push toward one tag detunes exactly that tag
        // (one deep RSS trough) and lights a compact region; a sweep
        // crosses several tags and troughs each in turn. This signature is
        // robust even when the phase image is weak (e.g. the overhead LOS
        // geometry, where the reflection rides nearly in phase with the
        // direct path).
        let compact_region = max_r - min_r <= 2 && max_c - min_c <= 2;
        if motion.shape != hand_kinematics::stroke::StrokeShape::Click
            && direction.troughs.len() <= 1
            && compact_region
            && path_chord < 1.5
        {
            motion.shape = hand_kinematics::stroke::StrokeShape::Click;
            direction =
                self.direction
                    .estimate(&motion, &self.layout, streams, span.start, span.end);
        }
        let stroke = if direction.troughs.len() >= 2 {
            direction.stroke
        } else if path_reversed && motion.shape.is_directional() {
            Stroke::reversed(motion.shape)
        } else {
            Stroke::new(motion.shape)
        };
        Some(RecognizedStroke {
            stroke,
            span,
            motion,
        })
    }

    /// Intensity centroids of overlapping sub-spans of `span`: a coarse
    /// trace of the hand path over the pad, tagged with span fractions.
    /// Also the basis of the paper's Fig. 25 trajectory comparison.
    pub fn span_path(
        &self,
        streams: &TagStreams,
        span: StrokeSpan,
    ) -> Vec<crate::motion::PathSample> {
        // Each sub-window needs ≥ ~0.35 s so every tag gets a few reads at
        // Gen2 rates; shorter strokes get fewer, wider windows. Fewer than
        // three windows means no usable path — the caller falls back to
        // image-only classification.
        let duration = span.duration();
        let windows: Vec<(f64, f64)> = if duration >= 1.6 {
            vec![
                (0.0, 0.34),
                (0.165, 0.505),
                (0.33, 0.67),
                (0.495, 0.835),
                (0.66, 1.0),
            ]
        } else if duration >= 0.55 {
            vec![(0.0, 0.4), (0.2, 0.6), (0.4, 0.8), (0.6, 1.0)]
        } else {
            Vec::new()
        };
        let cal = self.config.suppress_diversity.then_some(&self.calibration);
        let mut path = Vec::with_capacity(windows.len());
        for (a, b) in windows {
            let Ok(img) = accumulative_image(
                &self.layout,
                streams,
                cal,
                span.start + a * duration,
                span.start + b * duration,
            ) else {
                continue;
            };
            let peak = sigproc::stats::max(img.data());
            if !peak.is_finite() || peak <= 0.0 {
                continue;
            }
            let mut wr = 0.0;
            let mut wc = 0.0;
            let mut total = 0.0;
            for r in 0..img.rows() {
                for c in 0..img.cols() {
                    let v = img.get(r, c);
                    if v >= 0.4 * peak {
                        wr += v * r as f64;
                        wc += v * c as f64;
                        total += v;
                    }
                }
            }
            if total > 0.0 {
                path.push(crate::motion::PathSample {
                    frac: 0.5 * (a + b),
                    point: (wr / total, wc / total),
                });
            }
        }
        path
    }

    /// Segments already-built streams (exposed for the online pipeline).
    pub fn segment(&self, streams: &TagStreams) -> Segmentation {
        self.segmenter
            .segment(&self.layout, streams, &self.calibration)
    }

    /// Segments an already-built frame sequence with the calibrated
    /// thresholds. Given the frames [`segment`](Self::segment) would build
    /// internally, the result is identical; the online pipeline uses this
    /// with incrementally maintained frames.
    pub fn segment_frames(&self, frames: &sigproc::frames::FrameSeq) -> Segmentation {
        self.segmenter.segment_frames(
            frames,
            self.calibration.activity_threshold(&self.config),
            self.calibration.rms_level_threshold(&self.config),
        )
    }

    /// Like [`segment_frames`](Self::segment_frames), but reuses `scratch`
    /// and `out` so the online hot path scores frames without allocating.
    pub fn segment_frames_into(
        &self,
        frames: &sigproc::frames::FrameSeq,
        scratch: &mut sigproc::kernel::Scratch,
        out: &mut Segmentation,
    ) {
        self.segmenter.segment_frames_into(
            frames,
            self.calibration.activity_threshold(&self.config),
            self.calibration.rms_level_threshold(&self.config),
            scratch,
            out,
        )
    }

    /// Per-stream noise floors in layout order — the `floors` argument the
    /// calibrated segmentation applies during framing.
    pub fn noise_floors(&self) -> Vec<f64> {
        self.calibration.noise_floors(&self.layout, &self.config)
    }

    /// Runs the full pipeline on a recording: segmentation, per-span motion
    /// and direction recognition, then grammar-based letter deduction.
    pub fn recognize_session(&self, observations: &[TagReport]) -> SessionResult {
        let streams = self.streams(observations);
        let segmentation = self
            .segmenter
            .segment(&self.layout, &streams, &self.calibration);
        let strokes: Vec<RecognizedStroke> = segmentation
            .spans
            .iter()
            .filter_map(|&span| self.recognize_span(&streams, span))
            .collect();
        let observed: Vec<ObservedStroke> = strokes
            .iter()
            .map(|s| s.to_observed(&self.layout))
            .collect();
        let letter = self.grammar.deduce_fuzzy(&observed);
        SessionResult {
            strokes,
            letter,
            segmentation,
        }
    }

    /// The grammar tree (for online prefix queries).
    pub fn grammar(&self) -> &GrammarTree {
        &self.grammar
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::report::TagId;
    use std::f64::consts::TAU;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(5, 5, (0..25).map(TagId).collect())
    }

    fn obs(tag: TagId, time: f64, phase: f64, rss: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), rss)
    }

    /// Synthetic recording: static 0–2 s, then the hand sweeps down column
    /// 2 during 2–4 s (phases of column-2 tags wiggle in sequence and their
    /// RSS dips in row order), then static 4–5 s.
    fn column_sweep_recording() -> Vec<TagReport> {
        let l = layout();
        let mut out = Vec::new();
        for step in 0..250 {
            let t = step as f64 * 0.02;
            for r in 0..5usize {
                for c in 0..5usize {
                    let id = l.at(r, c);
                    let base = (r * 5 + c) as f64 * 0.37 + 0.4;
                    // The hand crosses row r of column 2 at 2.2 + 0.36 r.
                    let cross = 2.2 + 0.36 * r as f64;
                    let near = (t - cross).abs() < 0.5 && (2.0..4.0).contains(&t);
                    let col_factor = 1.0 / (1.0 + (c as f64 - 2.0).powi(2));
                    let (wiggle, dip) = if near {
                        (
                            0.9 * col_factor * ((t - cross) * 18.0).sin(),
                            -7.0 * col_factor * (-(t - cross) * (t - cross) / 0.01).exp(),
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    out.push(obs(
                        id,
                        t + (r * 5 + c) as f64 * 1e-4,
                        base + wiggle,
                        -45.0 + dip,
                    ));
                }
            }
        }
        out
    }

    fn recognizer() -> Recognizer {
        let l = layout();
        // Calibrate on the static prefix.
        let recording = column_sweep_recording();
        let static_part: Vec<TagReport> =
            recording.iter().filter(|o| o.time < 2.0).copied().collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&l, &static_part, &config).expect("calibration");
        Recognizer::builder()
            .layout(l)
            .calibration(cal)
            .config(config)
            .build()
            .expect("valid config")
    }

    #[test]
    fn column_sweep_recognized_as_downward_bar() {
        let rec = recognizer();
        let recording = column_sweep_recording();
        let result = rec.recognize_session(&recording);
        assert_eq!(
            result.strokes.len(),
            1,
            "spans {:?}",
            result.segmentation.spans
        );
        let stroke = &result.strokes[0];
        assert_eq!(
            stroke.stroke,
            Stroke::new(hand_kinematics::stroke::StrokeShape::VLine),
            "got {:?}",
            stroke.stroke
        );
        // Centred on column 2.
        assert!((stroke.motion.centroid.1 - 2.0).abs() < 0.7);
        // Span roughly covers 2–4 s.
        assert!(stroke.span.start > 1.5 && stroke.span.start < 2.7);
        assert!(stroke.span.end > 3.3 && stroke.span.end < 4.5);
    }

    #[test]
    fn static_recording_recognizes_nothing() {
        let rec = recognizer();
        let recording: Vec<TagReport> = column_sweep_recording()
            .into_iter()
            .filter(|o| o.time < 2.0)
            .collect();
        let result = rec.recognize_session(&recording);
        assert!(result.strokes.is_empty());
        assert_eq!(result.letter, None);
    }

    #[test]
    fn invalid_config_rejected() {
        let rec = recognizer();
        let bad = RfipadConfig {
            frame_len_s: -1.0,
            ..RfipadConfig::default()
        };
        assert!(Recognizer::builder()
            .layout(rec.layout().clone())
            .calibration(rec.calibration().clone())
            .config(bad)
            .build()
            .is_err());
    }

    #[test]
    fn builder_requires_layout_and_calibration() {
        let rec = recognizer();
        assert!(Recognizer::builder().build().is_err());
        assert!(Recognizer::builder()
            .layout(rec.layout().clone())
            .build()
            .is_err());
        // Config is optional and defaults to the paper's parameters.
        let built = Recognizer::builder()
            .layout(rec.layout().clone())
            .calibration(rec.calibration().clone())
            .build()
            .expect("default config valid");
        assert_eq!(built.config(), &RfipadConfig::default());
    }

    #[test]
    fn observed_normalization() {
        let rec = recognizer();
        let recording = column_sweep_recording();
        let result = rec.recognize_session(&recording);
        let observed = result.strokes[0].to_observed(rec.layout());
        assert!((observed.centroid.1 - 0.5).abs() < 0.2, "{observed:?}");
        assert!(observed.extent.0 > 0.5, "vertical extent {observed:?}");
    }
}
