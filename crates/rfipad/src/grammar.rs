//! Tree-structure letter grammar and positional disambiguation (§III-C2).
//!
//! Recognized strokes are matched against the stroke-shape tree of Fig. 10:
//! walking the tree with the observed shape sequence yields the candidate
//! letters. Sequences shared by several letters (D/P, O/S, V/X) are
//! disambiguated by *where* the strokes were drawn — RFIPad knows the tag
//! positions each stroke covered, so the candidate whose canonical stroke
//! placements best match the observed geometry wins.

use hand_kinematics::letters;
use hand_kinematics::stroke::{Stroke, StrokeShape};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A stroke as the recognizer observed it: shape + direction + geometry in
/// normalized pad coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObservedStroke {
    /// The recognized directed stroke.
    pub stroke: Stroke,
    /// Foreground centroid `(row, col)` normalized to `[0, 1]`.
    pub centroid: (f64, f64),
    /// Normalized extent `(height, width)` of the foreground bounding box.
    pub extent: (f64, f64),
}

/// The grammar tree: shape sequences → candidate letters.
#[derive(Debug, Clone)]
pub struct GrammarTree {
    by_sequence: HashMap<Vec<StrokeShape>, Vec<char>>,
}

impl GrammarTree {
    /// Builds the standard A–Z grammar from the shared letter table.
    pub fn standard() -> Self {
        let mut by_sequence: HashMap<Vec<StrokeShape>, Vec<char>> = HashMap::new();
        for &letter in &letters::ALPHABET {
            let seq = letters::shape_sequence(letter).expect("alphabet letter");
            by_sequence.entry(seq).or_default().push(letter);
        }
        Self { by_sequence }
    }

    /// Letters whose full shape sequence equals `shapes`.
    pub fn exact_matches(&self, shapes: &[StrokeShape]) -> &[char] {
        self.by_sequence
            .get(shapes)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Letters whose shape sequence *starts with* `shapes` — what an online
    /// recognizer can still reach mid-letter.
    pub fn prefix_matches(&self, shapes: &[StrokeShape]) -> Vec<char> {
        let mut out: Vec<char> = self
            .by_sequence
            .iter()
            .filter(|(seq, _)| seq.len() >= shapes.len() && seq[..shapes.len()] == *shapes)
            .flat_map(|(_, ls)| ls.iter().copied())
            .collect();
        out.sort_unstable();
        out
    }

    /// Deduce the letter from a full observed stroke sequence, breaking ties
    /// with positional matching.
    ///
    /// Returns `None` when no letter has this shape sequence.
    pub fn deduce(&self, strokes: &[ObservedStroke]) -> Option<char> {
        let shapes: Vec<StrokeShape> = strokes.iter().map(|s| s.stroke.shape).collect();
        let candidates = self.exact_matches(&shapes);
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0]),
            _ => candidates.iter().copied().min_by(|&a, &b| {
                placement_cost(a, strokes)
                    .partial_cmp(&placement_cost(b, strokes))
                    .expect("finite costs")
            }),
        }
    }

    /// Error-tolerant deduction: ranks *every* letter with the same stroke
    /// count by placement cost plus penalties for shape and direction
    /// mismatches, accepting the best candidate with at most one shape
    /// error. Recovers letters whose single worst stroke was misclassified
    /// — the positional information RFIPad has per stroke carries the
    /// missing evidence, exactly as §III-C2's disambiguation argument goes.
    pub fn deduce_fuzzy(&self, strokes: &[ObservedStroke]) -> Option<char> {
        if strokes.is_empty() {
            return None;
        }
        // First try the sequence as observed…
        let direct = Self::best_same_count(strokes);
        if direct.is_some() {
            return direct.map(|(l, _)| l);
        }
        // …then tolerate one segmentation *insertion*: drop each stroke in
        // turn and take the best leave-one-out match (with a penalty so a
        // genuine full-length match always wins).
        if strokes.len() < 2 {
            return None;
        }
        (0..strokes.len())
            .filter_map(|skip| {
                let subset: Vec<ObservedStroke> = strokes
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, s)| *s)
                    .collect();
                Self::best_same_count(&subset).map(|(l, c)| (l, c + 0.5))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .map(|(letter, _)| letter)
    }

    /// Best candidate among letters with exactly `strokes.len()` strokes,
    /// tolerating at most one shape mismatch.
    fn best_same_count(strokes: &[ObservedStroke]) -> Option<(char, f64)> {
        /// Cost added per mismatched stroke shape.
        const SHAPE_PENALTY: f64 = 0.6;
        /// Maximum shape mismatches tolerated.
        const MAX_SHAPE_ERRORS: usize = 1;
        hand_kinematics::letters::ALPHABET
            .iter()
            .copied()
            .filter_map(|letter| {
                let seq = hand_kinematics::letters::shape_sequence(letter)?;
                if seq.len() != strokes.len() {
                    return None;
                }
                let mismatches = seq
                    .iter()
                    .zip(strokes)
                    .filter(|(expected, observed)| **expected != observed.stroke.shape)
                    .count();
                if mismatches > MAX_SHAPE_ERRORS {
                    return None;
                }
                let cost = placement_cost(letter, strokes) + SHAPE_PENALTY * mismatches as f64;
                cost.is_finite().then_some((letter, cost))
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
    }
}

impl Default for GrammarTree {
    fn default() -> Self {
        Self::standard()
    }
}

/// Mismatch between a candidate letter's canonical stroke placements and
/// the observed strokes: squared midpoint distance plus extent mismatch
/// plus a direction penalty. Lower is better.
pub fn placement_cost(letter: char, strokes: &[ObservedStroke]) -> f64 {
    let Some(placements) = letters::letter_strokes(letter) else {
        return f64::INFINITY;
    };
    if placements.len() != strokes.len() {
        return f64::INFINITY;
    }
    let mut cost = 0.0;
    for (expected, observed) in placements.iter().zip(strokes) {
        let mid = (
            0.5 * (expected.from.0 + expected.to.0),
            0.5 * (expected.from.1 + expected.to.1),
        );
        let dr = mid.0 - observed.centroid.0;
        let dc = mid.1 - observed.centroid.1;
        cost += dr * dr + dc * dc;

        let expected_extent = expected_extent(expected);
        let dh = expected_extent.0 - observed.extent.0;
        let dw = expected_extent.1 - observed.extent.1;
        cost += 0.5 * (dh * dh + dw * dw);

        if expected.stroke.reversed != observed.stroke.reversed {
            cost += 0.25;
        }
    }
    cost
}

/// Canonical bounding-box extent `(height, width)` of a placed stroke,
/// including the arc bulge.
fn expected_extent(p: &hand_kinematics::stroke::PlacedStroke) -> (f64, f64) {
    let wp = p.waypoints();
    let min_r = wp.iter().map(|w| w.0).fold(f64::INFINITY, f64::min);
    let max_r = wp.iter().map(|w| w.0).fold(f64::NEG_INFINITY, f64::max);
    let min_c = wp.iter().map(|w| w.1).fold(f64::INFINITY, f64::min);
    let max_c = wp.iter().map(|w| w.1).fold(f64::NEG_INFINITY, f64::max);
    (max_r - min_r, max_c - min_c)
}

/// Builds the observed strokes a *perfect* recognizer would produce for a
/// letter (used by tests and the grammar's own sanity experiments).
pub fn ideal_observation(letter: char) -> Option<Vec<ObservedStroke>> {
    let placements = letters::letter_strokes(letter)?;
    Some(
        placements
            .iter()
            .map(|p| ObservedStroke {
                stroke: p.stroke,
                centroid: (0.5 * (p.from.0 + p.to.0), 0.5 * (p.from.1 + p.to.1)),
                extent: expected_extent(p),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hand_kinematics::letters::ALPHABET;

    #[test]
    fn every_letter_deducible_from_ideal_observation() {
        let tree = GrammarTree::standard();
        for c in ALPHABET {
            let obs = ideal_observation(c).expect("letter");
            assert_eq!(tree.deduce(&obs), Some(c), "letter {c}");
        }
    }

    #[test]
    fn t_matches_exactly() {
        let tree = GrammarTree::standard();
        use StrokeShape::*;
        assert_eq!(tree.exact_matches(&[HLine, VLine]), &['T']);
    }

    #[test]
    fn ambiguous_sequences_have_multiple_candidates() {
        let tree = GrammarTree::standard();
        use StrokeShape::*;
        let dp = tree.exact_matches(&[VLine, ArcRight]);
        assert!(dp.contains(&'D') && dp.contains(&'P'), "{dp:?}");
        let os = tree.exact_matches(&[ArcLeft, ArcRight]);
        assert!(os.contains(&'O') && os.contains(&'S'));
        let vx = tree.exact_matches(&[Backslash, Slash]);
        assert!(vx.contains(&'V') && vx.contains(&'X'));
    }

    #[test]
    fn unknown_sequence_gives_none() {
        let tree = GrammarTree::standard();
        let bogus = [ObservedStroke {
            stroke: Stroke::new(StrokeShape::Click),
            centroid: (0.5, 0.5),
            extent: (0.0, 0.0),
        }];
        assert_eq!(tree.deduce(&bogus), None);
    }

    #[test]
    fn prefix_matching_narrows_online() {
        let tree = GrammarTree::standard();
        use StrokeShape::*;
        // After a single vertical bar, many letters remain…
        let after_bar = tree.prefix_matches(&[VLine]);
        assert!(after_bar.contains(&'H'));
        assert!(after_bar.contains(&'L'));
        assert!(after_bar.contains(&'E'));
        // …after "| −" fewer…
        let after_two = tree.prefix_matches(&[VLine, HLine]);
        assert!(after_two.len() < after_bar.len());
        // …and the empty prefix matches everything.
        assert_eq!(tree.prefix_matches(&[]).len(), 26);
    }

    #[test]
    fn d_vs_p_resolved_by_bowl_position() {
        let tree = GrammarTree::standard();
        // Ideal D and ideal P, fed back in, resolve correctly (covered by
        // every_letter test) — now perturb: a P drawn slightly low must
        // still resolve to P because its bowl is half-height.
        let mut obs = ideal_observation('P').unwrap();
        for o in &mut obs {
            o.centroid.0 += 0.08;
        }
        assert_eq!(tree.deduce(&obs), Some('P'));
    }

    #[test]
    fn direction_penalty_breaks_ties() {
        // Feed an O whose strokes are geometrically halfway toward S but
        // with O's canonical directions — direction agreement must keep it
        // an O.
        let tree = GrammarTree::standard();
        let o = ideal_observation('O').unwrap();
        let s = ideal_observation('S').unwrap();
        let blend: Vec<ObservedStroke> = o
            .iter()
            .zip(&s)
            .map(|(a, b)| ObservedStroke {
                stroke: a.stroke,
                centroid: (
                    0.55 * a.centroid.0 + 0.45 * b.centroid.0,
                    0.55 * a.centroid.1 + 0.45 * b.centroid.1,
                ),
                extent: (
                    0.55 * a.extent.0 + 0.45 * b.extent.0,
                    0.55 * a.extent.1 + 0.45 * b.extent.1,
                ),
            })
            .collect();
        assert_eq!(tree.deduce(&blend), Some('O'));
    }

    #[test]
    fn placement_cost_zero_for_perfect_match() {
        let obs = ideal_observation('H').unwrap();
        assert!(placement_cost('H', &obs) < 1e-9);
        assert!(placement_cost('H', &obs[..2]).is_infinite());
    }
}
