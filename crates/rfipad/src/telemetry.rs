//! Pipeline- and engine-layer metrics on the process-global registry.
//!
//! All handles are registered once (on first use) and cached in statics,
//! so the recognition hot path only ever performs relaxed atomic ops.
//! Stage histograms are process-wide aggregates across every live
//! pipeline — the "which stage is slow" view — while per-session state
//! stays in [`crate::engine`]'s own statistics.
//!
//! Naming follows DESIGN.md §Observability: `rfipad_stage_*`,
//! `rfipad_pipeline_*`, `rfipad_engine_*`, `rfipad_session_*`,
//! `rfipad_serve_*`, `rfipad_hop_*`.

use obs::{Counter, Gauge, Histogram};
use std::sync::{Arc, OnceLock};

/// Name of the per-stage push-duration histogram family. One series per
/// stage of the [`crate::stage::StageGraph`], labelled `stage=framing |
/// segmentation | motion | letter | grammar`. Values are recorded in
/// microseconds against [`obs::metrics::DEFAULT_DURATION_BOUNDS_US`].
pub const STAGE_PUSH_METRIC: &str = "rfipad_stage_push_seconds";

/// Cached handles for the stage graph's instrumentation. The graph times
/// every [`crate::stage::Stage::push`] it drives, so each histogram is the
/// wall time spent inside that stage across every live graph.
pub(crate) struct StageMetrics {
    /// Buffering, incremental streams/frames, and tick cuts (§III-A).
    pub framing: Arc<Histogram>,
    /// Stroke segmentation over a frame tick (Eq. 11–12).
    pub segmentation: Arc<Histogram>,
    /// Motion classification of confirmed spans (§III-C2).
    pub motion: Arc<Histogram>,
    /// Letter assembly: pending strokes and the idle-gap close decision.
    pub letter: Arc<Histogram>,
    /// Grammar deduction and event emission (§III-D).
    pub grammar: Arc<Histogram>,
    /// Reports consumed by pipelines.
    pub reports: Arc<Counter>,
    /// Stale reports clamped forward (OutOfOrderPolicy::Clamp).
    pub out_of_order_clamped: Arc<Counter>,
    /// Stale reports discarded (OutOfOrderPolicy::Drop).
    pub out_of_order_dropped: Arc<Counter>,
    /// Confirmed spans the motion classifier rejected as unclassifiable.
    pub rejected_spans: Arc<Counter>,
    /// Strokes reported.
    pub strokes: Arc<Counter>,
    /// Letters closed (recognized or not).
    pub letters: Arc<Counter>,
}

/// The lazily registered pipeline stage metrics.
pub(crate) fn stage_metrics() -> &'static StageMetrics {
    static METRICS: OnceLock<StageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        let stage = |name: &'static str| {
            r.histogram(
                STAGE_PUSH_METRIC,
                "Wall time per stage-graph push, recorded in microseconds.",
                &[("stage", name)],
                obs::metrics::DEFAULT_DURATION_BOUNDS_US,
            )
        };
        let ooo = |policy: &'static str| {
            r.counter(
                "rfipad_pipeline_out_of_order_total",
                "Reports that arrived with a stale timestamp, by applied policy.",
                &[("policy", policy)],
            )
        };
        StageMetrics {
            framing: stage("framing"),
            segmentation: stage("segmentation"),
            motion: stage("motion"),
            letter: stage("letter"),
            grammar: stage("grammar"),
            reports: r.counter(
                "rfipad_pipeline_reports_total",
                "Tag reports consumed by online pipelines.",
                &[],
            ),
            out_of_order_clamped: ooo("clamp"),
            out_of_order_dropped: ooo("drop"),
            rejected_spans: r.counter(
                "rfipad_pipeline_rejected_spans_total",
                "Confirmed spans the motion classifier could not classify.",
                &[],
            ),
            strokes: r.counter(
                "rfipad_pipeline_strokes_total",
                "Strokes reported by online pipelines.",
                &[],
            ),
            letters: r.counter(
                "rfipad_pipeline_letters_total",
                "Letters closed by online pipelines (recognized or not).",
                &[],
            ),
        }
    })
}

/// Name of the per-hop ingest-latency histogram family: one series per
/// hop of the end-to-end ingest path, labelled `hop=decode | queue |
/// stage:framing | stage:segmentation | stage:motion | stage:letter |
/// stage:grammar | emit`. Values are recorded in nanoseconds against
/// [`obs::metrics::DEFAULT_DURATION_BOUNDS_NS`].
pub const HOP_METRIC: &str = "rfipad_hop_seconds";

/// Cached handles for the per-hop latency breakdown of the ingest path
/// (DESIGN.md §11): wire decode, engine queue wait, the five stage pushes,
/// and event emission. The batch-granular hops (decode, queue, emit) are
/// recorded unsampled; the per-report stage hops ride the head sampler
/// (`obs::trace::sampler`) so the hot path stays inside the overhead
/// budget.
pub(crate) struct HopMetrics {
    /// Wire-frame decode time on the ingest server.
    pub decode: Arc<Histogram>,
    /// Time a queue item waited between enqueue and worker drain.
    pub queue: Arc<Histogram>,
    /// Per-stage push time, indexed like the stage graph (sampled).
    pub stages: [Arc<Histogram>; 5],
    /// Sink delivery time when a session's events are emitted.
    pub emit: Arc<Histogram>,
}

/// Stage names in graph order, shared by the hop series and the trace
/// span names (`stage:<name>`).
pub(crate) const STAGE_NAMES: [&str; 5] =
    ["framing", "segmentation", "motion", "letter", "grammar"];

/// The lazily registered per-hop latency histograms.
pub(crate) fn hop_metrics() -> &'static HopMetrics {
    static METRICS: OnceLock<HopMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        let hop = |name: &'static str| {
            r.histogram(
                HOP_METRIC,
                "Per-hop ingest latency, recorded in nanoseconds.",
                &[("hop", name)],
                obs::metrics::DEFAULT_DURATION_BOUNDS_NS,
            )
        };
        HopMetrics {
            decode: hop("decode"),
            queue: hop("queue"),
            stages: [
                hop("stage:framing"),
                hop("stage:segmentation"),
                hop("stage:motion"),
                hop("stage:letter"),
                hop("stage:grammar"),
            ],
            emit: hop("emit"),
        }
    })
}

/// Cached handles for segmentation-quality counters fed by
/// [`crate::metrics::score_segmentation`].
pub(crate) struct SegmentationMetrics {
    /// Detected spans matching no ground-truth stroke (paper Fig. 21).
    pub insertions: Arc<Counter>,
    /// Ground-truth strokes with no matching detection.
    pub underfills: Arc<Counter>,
}

/// The lazily registered segmentation-quality counters.
pub(crate) fn segmentation_metrics() -> &'static SegmentationMetrics {
    static METRICS: OnceLock<SegmentationMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        SegmentationMetrics {
            insertions: r.counter(
                "rfipad_segmentation_insertions_total",
                "Detected spans that match no ground-truth stroke.",
                &[],
            ),
            underfills: r.counter(
                "rfipad_segmentation_underfills_total",
                "Ground-truth strokes with no matching detected span.",
                &[],
            ),
        }
    })
}

/// Cached handles for engine-wide aggregates. Counters are process-wide:
/// they survive session eviction and engine shutdown, unlike the
/// per-session statistics that are lost when a session is swept (the
/// registry is the durable sink for drop/clamp totals).
pub(crate) struct EngineMetrics {
    /// Reports accepted into session queues.
    pub reports_in: Arc<Counter>,
    /// Reports dropped by DropOldest backpressure.
    pub reports_dropped: Arc<Counter>,
    /// Events emitted to session handles.
    pub events_out: Arc<Counter>,
    /// Sessions opened.
    pub sessions_opened: Arc<Counter>,
    /// Sessions closed (explicitly or by engine shutdown).
    pub sessions_closed: Arc<Counter>,
    /// Sessions evicted by the idle sweeper.
    pub sessions_evicted: Arc<Counter>,
    /// Push latency across all sessions, nanoseconds.
    pub push_latency: Arc<Histogram>,
    /// Currently open sessions.
    pub sessions_open: Arc<obs::Gauge>,
}

/// Cached handles for the TCP ingest server ([`crate::serve`]). Counters
/// are lifetime totals across every server in the process; the gauge
/// tracks live connections. Per-connection gauges
/// (`rfipad_serve_connection_*`) are registered at accept time and
/// removed when the connection ends, mirroring how engine sessions manage
/// their labelled series.
pub(crate) struct ServeMetrics {
    /// Connections accepted.
    pub connections_accepted: Arc<Counter>,
    /// Connections that ended for any reason (client close, error, idle
    /// disconnect, shutdown drain).
    pub connections_closed: Arc<Counter>,
    /// Connections dropped by the idle-disconnect deadline.
    pub idle_disconnects: Arc<Counter>,
    /// Frames decoded from clients, all types.
    pub frames_in: Arc<Counter>,
    /// ACK responses sent (frame fully accepted, nothing shed).
    pub acks_out: Arc<Counter>,
    /// SHED responses sent (batch accepted, older reports evicted).
    pub sheds_out: Arc<Counter>,
    /// ERROR responses sent.
    pub errors_out: Arc<Counter>,
    /// Reports accepted off the wire into engine sessions.
    pub reports_in: Arc<Counter>,
    /// Reports shed by backpressure while serving.
    pub reports_shed: Arc<Counter>,
    /// Currently open connections.
    pub connections_open: Arc<Gauge>,
}

/// The lazily registered ingest-server metrics.
pub(crate) fn serve_metrics() -> &'static ServeMetrics {
    static METRICS: OnceLock<ServeMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        ServeMetrics {
            connections_accepted: r.counter(
                "rfipad_serve_connections_accepted_total",
                "TCP ingest connections accepted.",
                &[],
            ),
            connections_closed: r.counter(
                "rfipad_serve_connections_closed_total",
                "TCP ingest connections ended, for any reason.",
                &[],
            ),
            idle_disconnects: r.counter(
                "rfipad_serve_idle_disconnects_total",
                "Connections dropped for exceeding the idle deadline.",
                &[],
            ),
            frames_in: r.counter(
                "rfipad_serve_frames_in_total",
                "Wire frames decoded from ingest clients.",
                &[],
            ),
            acks_out: r.counter(
                "rfipad_serve_acks_total",
                "ACK responses sent to ingest clients.",
                &[],
            ),
            sheds_out: r.counter(
                "rfipad_serve_sheds_total",
                "SHED responses sent to ingest clients.",
                &[],
            ),
            errors_out: r.counter(
                "rfipad_serve_errors_total",
                "Error responses sent to ingest clients.",
                &[],
            ),
            reports_in: r.counter(
                "rfipad_serve_reports_in_total",
                "Reports accepted off the wire into engine sessions.",
                &[],
            ),
            reports_shed: r.counter(
                "rfipad_serve_reports_shed_total",
                "Reports evicted by backpressure while serving.",
                &[],
            ),
            connections_open: r.gauge(
                "rfipad_serve_connections_open",
                "Currently open ingest connections.",
                &[],
            ),
        }
    })
}

/// The lazily registered engine metrics.
pub(crate) fn engine_metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = obs::registry();
        EngineMetrics {
            reports_in: r.counter(
                "rfipad_engine_reports_in_total",
                "Reports accepted into session queues.",
                &[],
            ),
            reports_dropped: r.counter(
                "rfipad_engine_reports_dropped_total",
                "Reports dropped by DropOldest backpressure.",
                &[],
            ),
            events_out: r.counter(
                "rfipad_engine_events_out_total",
                "Pipeline events emitted to session handles.",
                &[],
            ),
            sessions_opened: r.counter(
                "rfipad_engine_sessions_opened_total",
                "Sessions opened.",
                &[],
            ),
            sessions_closed: r.counter(
                "rfipad_engine_sessions_closed_total",
                "Sessions closed explicitly or at engine shutdown.",
                &[],
            ),
            sessions_evicted: r.counter(
                "rfipad_engine_sessions_evicted_total",
                "Idle sessions evicted by the sweeper.",
                &[],
            ),
            push_latency: r.histogram(
                "rfipad_engine_push_latency_ns",
                "Per-item push-processing latency across all sessions, nanoseconds.",
                &[],
                obs::metrics::DEFAULT_DURATION_BOUNDS_NS,
            ),
            sessions_open: r.gauge(
                "rfipad_engine_sessions_open",
                "Currently open sessions across all engines.",
                &[],
            ),
        }
    })
}
