//! Error types for the RFIPad pipeline.

use rfid_gen2::report::TagId;
use std::fmt;

/// Errors surfaced by the RFIPad recognition pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum RfipadError {
    /// The layout does not contain the referenced tag.
    UnknownTag(TagId),
    /// Calibration was attempted with too few static samples for a tag.
    InsufficientCalibration {
        /// The under-sampled tag.
        tag: TagId,
        /// Samples available.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// An observation stream was empty where data was required.
    EmptyStream,
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
}

impl fmt::Display for RfipadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfipadError::UnknownTag(id) => write!(f, "tag {id} is not in the array layout"),
            RfipadError::InsufficientCalibration { tag, got, need } => write!(
                f,
                "calibration for {tag} needs {need} static samples, got {got}"
            ),
            RfipadError::EmptyStream => write!(f, "observation stream is empty"),
            RfipadError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for RfipadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RfipadError::UnknownTag(TagId(3));
        assert!(e.to_string().contains("tag-0003"));
        let e = RfipadError::InsufficientCalibration {
            tag: TagId(1),
            got: 2,
            need: 10,
        };
        assert!(e.to_string().contains("needs 10"));
        assert!(!RfipadError::EmptyStream.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RfipadError>();
    }
}
