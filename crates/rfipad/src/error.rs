//! Error types for the RFIPad pipeline.

use rfid_gen2::report::TagId;
use std::fmt;

/// Errors surfaced by the RFIPad recognition pipeline and ingest engine.
///
/// The one error type engine code propagates: source failures and session
/// lifecycle faults convert into it via `From`, so a serving loop handles
/// a single enum.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RfipadError {
    /// The layout does not contain the referenced tag.
    UnknownTag(TagId),
    /// Calibration was attempted with too few static samples for a tag.
    InsufficientCalibration {
        /// The under-sampled tag.
        tag: TagId,
        /// Samples available.
        got: usize,
        /// Samples required.
        need: usize,
    },
    /// An observation stream was empty where data was required.
    EmptyStream,
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// A report source failed mid-stream (I/O or decode).
    Source(String),
    /// A session with this id is already open in the engine.
    SessionExists(String),
    /// The referenced engine session was closed or evicted.
    SessionClosed(String),
    /// The ingest engine's workers are gone (shut down or panicked).
    EngineDown,
    /// A pipeline or session checkpoint failed to serialize, parse, or
    /// restore (corrupted payload, unsupported version, or a checkpoint
    /// taken under a different pipeline configuration).
    Checkpoint(String),
}

impl fmt::Display for RfipadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RfipadError::UnknownTag(id) => write!(f, "tag {id} is not in the array layout"),
            RfipadError::InsufficientCalibration { tag, got, need } => write!(
                f,
                "calibration for {tag} needs {need} static samples, got {got}"
            ),
            RfipadError::EmptyStream => write!(f, "observation stream is empty"),
            RfipadError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RfipadError::Source(msg) => write!(f, "report source failed: {msg}"),
            RfipadError::SessionExists(id) => write!(f, "session {id:?} is already open"),
            RfipadError::SessionClosed(id) => write!(f, "session {id:?} is closed"),
            RfipadError::EngineDown => write!(f, "ingest engine is shut down"),
            RfipadError::Checkpoint(msg) => write!(f, "checkpoint rejected: {msg}"),
        }
    }
}

impl RfipadError {
    /// The one way builders report a bad field: every validating builder
    /// (`EngineBuilder`, `RecognizerBuilder`, `OnlinePipelineBuilder`,
    /// `StageGraphBuilder`, `IngestServerBuilder`) produces
    /// [`RfipadError::InvalidConfig`] messages of the form
    /// `Builder.field: reason`, so an error always names the offending
    /// field.
    pub(crate) fn invalid_field(
        builder: &str,
        field: &str,
        reason: impl std::fmt::Display,
    ) -> Self {
        RfipadError::InvalidConfig(format!("{builder}.{field}: {reason}"))
    }
}

impl std::error::Error for RfipadError {}

impl From<rfid_gen2::source::SourceError> for RfipadError {
    fn from(e: rfid_gen2::source::SourceError) -> Self {
        RfipadError::Source(e.to_string())
    }
}

impl From<rfid_gen2::trace::TraceError> for RfipadError {
    fn from(e: rfid_gen2::trace::TraceError) -> Self {
        RfipadError::Source(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RfipadError::UnknownTag(TagId(3));
        assert!(e.to_string().contains("tag-0003"));
        let e = RfipadError::InsufficientCalibration {
            tag: TagId(1),
            got: 2,
            need: 10,
        };
        assert!(e.to_string().contains("needs 10"));
        assert!(!RfipadError::EmptyStream.to_string().is_empty());
        let e = RfipadError::Checkpoint("version 9 unsupported".into());
        assert!(e.to_string().contains("checkpoint rejected"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RfipadError>();
    }
}
