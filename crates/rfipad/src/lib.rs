//! RFIPad: device-free in-air handwriting over a passive UHF RFID tag array.
//!
//! A faithful reproduction of *RFIPad: Enabling Cost-efficient and
//! Device-free In-air Handwriting using Passive Tags* (ICDCS 2017). A hand
//! moving over a plate of cheap passive tags perturbs the phase and RSS of
//! their backscattered signals; RFIPad turns those perturbations into touch-
//! screen operations and English letters — no wearable, no camera, no
//! training.
//!
//! # Pipeline
//!
//! 1. **Calibration** ([`calibration`]): per-tag static mean phase (tag
//!    diversity, Eq. 6–8) and deviation bias (location diversity, Eq. 9).
//! 2. **Streams** ([`streams`]): reader reports regrouped into per-tag
//!    series, phase unwrapped (de-periodicity) and suppressed.
//! 3. **Segmentation** ([`segmentation`]): Eq. 11–12 frame RMS / window std
//!    against a calibrated threshold separates strokes from adjustment
//!    intervals.
//! 4. **Motion recognition** ([`accumulate`], [`motion`]): accumulative
//!    phase-difference image (Eq. 5/10), Otsu binarization, shape
//!    classification.
//! 5. **Direction** ([`direction`]): two-stage RSS-trough ordering.
//! 6. **Letters** ([`grammar`], [`recognizer`]): tree-structure grammar
//!    with positional disambiguation (D/P, O/S, V/X).
//! 7. **Online engine** ([`pipeline`], [`stage`]): streaming recognition
//!    as a typed five-stage graph with response-time accounting and
//!    checkpoint/restore for session migration.
//! 8. **Multi-pad operation** ([`multipad`]): one reader serving several
//!    pads while its ordinary identification traffic passes through — the
//!    paper's cost-efficiency claim.
//!
//! # Example
//!
//! ```
//! use rfipad::prelude::*;
//! use rfid_gen2::report::{TagId, TagReport};
//!
//! // A 1×3 pad, calibrated from synthetic static reads.
//! let layout = ArrayLayout::new(1, 3, vec![TagId(0), TagId(1), TagId(2)]);
//! let config = RfipadConfig::default();
//! let static_obs: Vec<TagReport> = (0..40)
//!     .flat_map(|j| (0..3).map(move |i| TagReport::synthetic(
//!         TagId(i),
//!         j as f64 * 0.05 + i as f64 * 0.01,
//!         1.0 + i as f64,
//!         -45.0,
//!     )))
//!     .collect();
//! let calibration = Calibration::from_observations(&layout, &static_obs, &config)?;
//! let recognizer = Recognizer::builder()
//!     .layout(layout)
//!     .calibration(calibration)
//!     .config(config)
//!     .build()?;
//! let result = recognizer.recognize_session(&static_obs);
//! assert!(result.strokes.is_empty()); // nothing moved
//! # Ok::<(), rfipad::RfipadError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accumulate;
pub mod calibration;
pub mod config;
pub mod direction;
pub mod engine;
pub mod error;
pub mod grammar;
pub mod layout;
pub mod metrics;
pub mod motion;
pub mod multipad;
pub mod pipeline;
pub mod recognizer;
pub mod segmentation;
pub mod serve;
pub mod stage;
pub mod streams;
pub mod tagmap;
pub(crate) mod telemetry;
pub mod words;

pub use calibration::Calibration;
pub use config::RfipadConfig;
pub use engine::{
    Backpressure, Engine, EngineStats, IngestReceipt, SessionCheckpoint, SessionHandle,
    SessionStats,
};
pub use error::RfipadError;
pub use layout::ArrayLayout;
pub use multipad::{PadDispatcher, PadEvent, PadHandle};
pub use pipeline::{OnlinePipeline, PipelineEvent};
pub use recognizer::{RecognizedStroke, Recognizer, SessionResult};
pub use segmentation::{Segmentation, StrokeSpan};
pub use serve::{CollectingSink, EventSink, IngestServer, IngestServerBuilder};
pub use stage::{PipelineCheckpoint, Stage, StageGraph, StageGraphBuilder, StageState};
pub use streams::{TagStreams, TagStreamsBuilder};
pub use words::{DecodedWord, WordDecoder};

/// Convenient glob import for applications.
pub mod prelude {
    pub use crate::calibration::Calibration;
    pub use crate::config::RfipadConfig;
    pub use crate::engine::{
        Backpressure, Engine, IngestReceipt, SessionCheckpoint, SessionHandle,
    };
    pub use crate::error::RfipadError;
    pub use crate::grammar::GrammarTree;
    pub use crate::layout::ArrayLayout;
    pub use crate::metrics::ConfusionMatrix;
    pub use crate::pipeline::{OnlinePipeline, PipelineEvent};
    pub use crate::recognizer::{RecognizedStroke, Recognizer, SessionResult};
    pub use crate::segmentation::{Segmentation, StrokeSpan};
    pub use crate::stage::{PipelineCheckpoint, Stage, StageGraph};
    pub use crate::streams::TagStreams;
}
