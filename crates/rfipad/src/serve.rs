//! The TCP ingest server: remote readers stream report batches into
//! [`Engine`] sessions over the [`rfid_gen2::wire`] protocol.
//!
//! One listener thread accepts connections; each connection gets its own
//! thread speaking the lock-step frame protocol (handshake, then
//! OPEN/BATCH/CLOSE requests answered by ACK/SHED/CLOSED/ERROR). A single
//! connection multiplexes any number of sessions: every frame names the
//! session it targets, and the server maps connection-scoped session ids
//! onto engine sessions named `c<connection>#<session>` so ids never
//! collide across connections.
//!
//! Backpressure is the engine's, propagated to the wire: under
//! [`crate::engine::Backpressure::Block`] a full queue simply delays the
//! ACK (the client's lock-step send stalls — flow control for free), and
//! under [`crate::engine::Backpressure::DropOldest`] the response is a
//! SHED carrying exactly how many older reports were evicted, straight
//! from the engine's [`crate::engine::IngestReceipt`].
//!
//! Connections are read with a short poll timeout so every connection
//! thread notices server shutdown promptly, and a peer that goes silent
//! (or stalls mid-frame) longer than the idle deadline is disconnected.
//! Graceful [`IngestServer::shutdown`] stops the accept loop, signals
//! every connection, joins them, and closes each connection's remaining
//! sessions — their flushed events go to the configured [`EventSink`],
//! exactly as they would had the client sent CLOSE. The engine itself is
//! shared and stays up.
//!
//! ```no_run
//! # fn demo(engine: std::sync::Arc<rfipad::Engine>,
//! #         recognizer: rfipad::Recognizer) -> Result<(), rfipad::RfipadError> {
//! let server = rfipad::serve::IngestServer::builder()
//!     .addr("127.0.0.1:7011")
//!     .engine(engine)
//!     .pipeline_factory(move |_session| {
//!         rfipad::OnlinePipeline::builder()
//!             .recognizer(recognizer.clone())
//!             .build()
//!     })
//!     .build()?;
//! println!("serving on {}", server.local_addr());
//! # Ok(())
//! # }
//! ```

use crate::engine::Engine;
use crate::error::RfipadError;
use crate::pipeline::{OnlinePipeline, PipelineEvent};
use crate::telemetry::serve_metrics;
use rfid_gen2::wire::{
    check_handshake, decode_payload_v, encode_frame_v, handshake_bytes_for, Frame, TraceContext,
    WireError, DEFAULT_MAX_FRAME_LEN, ERR_ENGINE, ERR_MALFORMED, ERR_SESSION_EXISTS, ERR_TOO_LARGE,
    ERR_UNKNOWN_SESSION, ERR_UNSUPPORTED_VERSION, HANDSHAKE_LEN, WIRE_VERSION,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds the [`OnlinePipeline`] backing each session a client opens; the
/// argument is the client's session id.
pub type PipelineFactory = Arc<dyn Fn(&str) -> Result<OnlinePipeline, RfipadError> + Send + Sync>;

/// Where a served session's recognition events go when the session closes
/// (client CLOSE or shutdown drain). The wire protocol reports only event
/// *counts* to the client; the events themselves are a server-side
/// product.
pub trait EventSink: Send + Sync {
    /// Called once per closed session with everything its pipeline
    /// produced. `session` is the engine-side id
    /// (`c<connection>#<client id>`).
    fn on_events(&self, session: &str, events: Vec<PipelineEvent>);
}

/// Discards events; the default sink.
#[derive(Debug, Default)]
pub struct DiscardSink;

impl EventSink for DiscardSink {
    fn on_events(&self, _session: &str, _events: Vec<PipelineEvent>) {}
}

/// Collects events per session behind a mutex — the sink integration
/// tests and in-process consumers use.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<HashMap<String, Vec<PipelineEvent>>>,
}

impl CollectingSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns the events of every session collected so far.
    pub fn take(&self) -> HashMap<String, Vec<PipelineEvent>> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }
}

impl EventSink for CollectingSink {
    fn on_events(&self, session: &str, events: Vec<PipelineEvent>) {
        self.events
            .lock()
            .expect("sink poisoned")
            .entry(session.to_string())
            .or_default()
            .extend(events);
    }
}

/// Validating builder for [`IngestServer`], the supported way to start
/// one.
#[must_use = "call .build() to start the server"]
pub struct IngestServerBuilder {
    addr: String,
    engine: Option<Arc<Engine>>,
    pipeline_factory: Option<PipelineFactory>,
    event_sink: Arc<dyn EventSink>,
    read_timeout: Duration,
    idle_disconnect: Duration,
    max_frame_len: usize,
}

impl std::fmt::Debug for IngestServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestServerBuilder")
            .field("addr", &self.addr)
            .field("read_timeout", &self.read_timeout)
            .field("idle_disconnect", &self.idle_disconnect)
            .field("max_frame_len", &self.max_frame_len)
            .finish_non_exhaustive()
    }
}

impl Default for IngestServerBuilder {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            engine: None,
            pipeline_factory: None,
            event_sink: Arc::new(DiscardSink),
            read_timeout: Duration::from_millis(50),
            idle_disconnect: Duration::from_secs(30),
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        }
    }
}

impl IngestServerBuilder {
    /// Listen address (default `127.0.0.1:0`; like the metrics endpoint,
    /// there is no TLS or authentication — bind to loopback or a
    /// firewalled interface).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// The engine sessions are opened on (required). Shared: the server
    /// never shuts it down.
    pub fn engine(mut self, engine: Arc<Engine>) -> Self {
        self.engine = Some(engine);
        self
    }

    /// How to build the pipeline behind each opened session (required).
    pub fn pipeline_factory(
        mut self,
        factory: impl Fn(&str) -> Result<OnlinePipeline, RfipadError> + Send + Sync + 'static,
    ) -> Self {
        self.pipeline_factory = Some(Arc::new(factory));
        self
    }

    /// Where closed sessions' events go (default: discarded).
    pub fn event_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.event_sink = sink;
        self
    }

    /// Per-connection socket read poll interval: bounds how fast a
    /// connection thread notices shutdown (default 50 ms).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Disconnect a connection after this long without receiving a byte —
    /// between frames or stalled inside one (default 30 s).
    pub fn idle_disconnect(mut self, deadline: Duration) -> Self {
        self.idle_disconnect = deadline;
        self
    }

    /// Largest accepted frame payload, bytes (default 1 MiB).
    pub fn max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Validates the configuration, binds the listener, and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// [`RfipadError::InvalidConfig`] naming the offending field when a
    /// required field is missing, a timeout is zero or inconsistent, or
    /// the address fails to bind.
    pub fn build(self) -> Result<IngestServer, RfipadError> {
        let engine = self.engine.ok_or_else(|| {
            RfipadError::invalid_field("IngestServerBuilder", "engine", "required but not set")
        })?;
        let factory = self.pipeline_factory.ok_or_else(|| {
            RfipadError::invalid_field(
                "IngestServerBuilder",
                "pipeline_factory",
                "required but not set",
            )
        })?;
        if self.read_timeout.is_zero() {
            return Err(RfipadError::invalid_field(
                "IngestServerBuilder",
                "read_timeout",
                "must be positive",
            ));
        }
        if self.idle_disconnect < self.read_timeout {
            return Err(RfipadError::invalid_field(
                "IngestServerBuilder",
                "idle_disconnect",
                format!(
                    "must be at least the read_timeout ({:?})",
                    self.read_timeout
                ),
            ));
        }
        if self.max_frame_len < 64 {
            return Err(RfipadError::invalid_field(
                "IngestServerBuilder",
                "max_frame_len",
                "must be at least 64 bytes (one small frame)",
            ));
        }
        let listener = TcpListener::bind(&self.addr).map_err(|e| {
            RfipadError::invalid_field(
                "IngestServerBuilder",
                "addr",
                format!("bind failed on {}: {e}", self.addr),
            )
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RfipadError::Source(format!("listener nonblocking: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RfipadError::Source(format!("listener addr: {e}")))?;
        let shared = Arc::new(ServerShared {
            engine,
            factory,
            sink: self.event_sink,
            stop: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            read_timeout: self.read_timeout,
            idle_disconnect: self.idle_disconnect,
            max_frame_len: self.max_frame_len,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("rfipad-serve".into())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn ingest accept thread");
        obs::info!("ingest server listening"; addr = local_addr);
        Ok(IngestServer {
            local_addr,
            shared,
            accept: Some(accept),
        })
    }
}

/// State shared by the accept loop and every connection thread.
struct ServerShared {
    engine: Arc<Engine>,
    factory: PipelineFactory,
    sink: Arc<dyn EventSink>,
    stop: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<Vec<JoinHandle<()>>>,
    read_timeout: Duration,
    idle_disconnect: Duration,
    max_frame_len: usize,
}

/// A running TCP ingest server; [`IngestServer::shutdown`] (or drop)
/// drains it gracefully.
pub struct IngestServer {
    local_addr: std::net::SocketAddr,
    shared: Arc<ServerShared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for IngestServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestServer")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

impl IngestServer {
    /// Starts a validating builder ([`IngestServerBuilder`]).
    pub fn builder() -> IngestServerBuilder {
        IngestServerBuilder::default()
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Graceful shutdown: stop accepting, signal every connection, join
    /// them, and close their remaining sessions (flushed events go to the
    /// event sink). The engine is shared and is left running.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Connection threads observe the stop flag within one read
        // timeout, close their sessions, and exit.
        let conns: Vec<_> = {
            let mut guard = self.shared.conns.lock().expect("conn list poisoned");
            guard.drain(..).collect()
        };
        for conn in conns {
            let _ = conn.join();
        }
        obs::info!("ingest server drained"; addr = self.local_addr);
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.shared.stop.load(Ordering::SeqCst) {
            self.shutdown_inner();
        }
    }
}

/// Poll cadence of the nonblocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("rfipad-serve-c{conn_id}"))
                    .spawn(move || {
                        serve_metrics().connections_accepted.inc();
                        serve_metrics().connections_open.add(1);
                        let mut conn = Connection::new(conn_id, stream, conn_shared);
                        obs::debug!("ingest connection opened"; conn = conn_id, peer = peer);
                        conn.run();
                        conn.finish();
                        serve_metrics().connections_open.add(-1);
                        serve_metrics().connections_closed.inc();
                    })
                    .expect("spawn ingest connection thread");
                shared
                    .conns
                    .lock()
                    .expect("conn list poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                obs::warn!("ingest accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

/// Why a connection's read loop ended.
enum ConnEnd {
    /// The idle deadline passed with no bytes.
    Idle,
    /// The server is shutting down.
    Shutdown,
}

/// Outcome of one deadline-aware read of an exact byte span.
enum ReadOutcome {
    /// The span was filled.
    Full,
    /// Clean EOF before the first byte (only where a frame boundary is).
    CleanEof,
    /// Mid-span EOF: the peer died inside a frame.
    TruncatedAt(usize),
    /// The read loop ended without data (idle deadline or shutdown).
    End(ConnEnd),
    /// Transport fault.
    Fault(std::io::Error),
}

/// One client connection: its stream, its session map, and its labelled
/// gauges.
struct Connection {
    id: u64,
    stream: TcpStream,
    shared: Arc<ServerShared>,
    sessions: HashMap<String, crate::engine::SessionHandle>,
    // Per-connection series, registered once at accept time so the frame
    // loop never takes the registry lock.
    frames_gauge: Arc<obs::Gauge>,
    sessions_gauge: Arc<obs::Gauge>,
    frames_seen: u64,
    /// Wire version negotiated at handshake time: the minimum of the
    /// peer's advertised version and ours. Frames are decoded and
    /// encoded under this version for the connection's whole life.
    version: u16,
    /// Root-span bookkeeping per open session (only populated while
    /// telemetry is enabled).
    traces: HashMap<String, SessionTrace>,
    /// Wire-decode time of the most recent frame, consumed by the next
    /// dispatch that wants a `decode` hop span.
    last_decode: Option<Duration>,
}

/// Trace state for one served session: the root span opened at OPEN and
/// closed when the session's events reach the sink.
struct SessionTrace {
    recorder: Arc<obs::trace::FlightRecorder>,
    trace: obs::trace::TraceId,
    root: obs::trace::SpanId,
    /// Parent carried in from the client's wire trace context, if any.
    root_parent: Option<obs::trace::SpanId>,
    opened_us: u64,
}

/// Per-connection gauge families (`conn`-labelled).
const CONN_GAUGES: [(&str, &str); 2] = [
    (
        "rfipad_serve_connection_frames",
        "Frames decoded on the connection so far.",
    ),
    (
        "rfipad_serve_connection_sessions",
        "Sessions currently open on the connection.",
    ),
];

impl Connection {
    fn new(id: u64, stream: TcpStream, shared: Arc<ServerShared>) -> Self {
        let label = format!("c{id}");
        let r = obs::registry();
        let frames_gauge = r.gauge(CONN_GAUGES[0].0, CONN_GAUGES[0].1, &[("conn", &label)]);
        let sessions_gauge = r.gauge(CONN_GAUGES[1].0, CONN_GAUGES[1].1, &[("conn", &label)]);
        Self {
            id,
            stream,
            shared,
            sessions: HashMap::new(),
            frames_gauge,
            sessions_gauge,
            frames_seen: 0,
            version: WIRE_VERSION,
            traces: HashMap::new(),
            last_decode: None,
        }
    }

    /// Engine-side session id: connection-scoped so two connections can
    /// both open `"pad-1"`.
    fn engine_id(&self, session: &str) -> String {
        format!("c{}#{session}", self.id)
    }

    fn run(&mut self) {
        if self.stream.set_nodelay(true).is_err()
            || self
                .stream
                .set_read_timeout(Some(self.shared.read_timeout))
                .is_err()
            || self
                .stream
                .set_write_timeout(Some(Duration::from_secs(5)))
                .is_err()
        {
            return;
        }
        if !self.handshake() {
            return;
        }
        loop {
            match self.read_request() {
                Some(frame) => {
                    self.frames_seen += 1;
                    self.frames_gauge.set(self.frames_seen as i64);
                    serve_metrics().frames_in.inc();
                    if !self.dispatch(frame) {
                        return;
                    }
                }
                None => return,
            }
        }
    }

    /// Exchanges handshakes. `false` ends the connection.
    fn handshake(&mut self) -> bool {
        let mut hs = [0u8; HANDSHAKE_LEN];
        match self.read_full(&mut hs, true) {
            ReadOutcome::Full => {}
            ReadOutcome::End(ConnEnd::Idle) => {
                serve_metrics().idle_disconnects.inc();
                return false;
            }
            _ => return false,
        }
        match check_handshake(&hs) {
            Ok(peer) => {
                // Speak the highest version both sides understand; v1
                // peers keep a bit-identical wire exchange.
                self.version = peer.min(WIRE_VERSION);
            }
            Err(WireError::UnsupportedVersion(v)) => {
                obs::warn!("ingest handshake version rejected"; conn = self.id, version = v);
                self.respond(&Frame::Error {
                    code: ERR_UNSUPPORTED_VERSION,
                    message: format!("server speaks version {}", rfid_gen2::wire::WIRE_VERSION),
                });
                return false;
            }
            Err(e) => {
                // Wrong magic: not our protocol, answer nothing.
                obs::warn!("ingest handshake rejected: {e}"; conn = self.id);
                return false;
            }
        }
        self.stream
            .write_all(&handshake_bytes_for(self.version))
            .is_ok()
    }

    /// Reads one frame, answering protocol faults in-line. `None` ends
    /// the connection.
    fn read_request(&mut self) -> Option<Frame> {
        let mut prefix = [0u8; 4];
        match self.read_full(&mut prefix, true) {
            ReadOutcome::Full => {}
            ReadOutcome::CleanEof | ReadOutcome::End(ConnEnd::Shutdown) => return None,
            ReadOutcome::End(ConnEnd::Idle) => {
                serve_metrics().idle_disconnects.inc();
                obs::debug!("ingest connection idle-disconnected"; conn = self.id);
                return None;
            }
            ReadOutcome::TruncatedAt(n) => {
                self.respond(&Frame::Error {
                    code: ERR_MALFORMED,
                    message: format!("truncated frame length prefix ({n} of 4 bytes)"),
                });
                return None;
            }
            ReadOutcome::Fault(e) => {
                obs::debug!("ingest read failed: {e}"; conn = self.id);
                return None;
            }
        }
        let len = u32::from_be_bytes(prefix) as usize;
        if len > self.shared.max_frame_len {
            // The payload was never read, so the stream cannot be
            // resynchronized — refuse and disconnect.
            self.respond(&Frame::Error {
                code: ERR_TOO_LARGE,
                message: format!(
                    "frame payload of {len} bytes exceeds the {}-byte cap",
                    self.shared.max_frame_len
                ),
            });
            return None;
        }
        let mut payload = vec![0u8; len];
        match self.read_full(&mut payload, false) {
            ReadOutcome::Full => {}
            ReadOutcome::TruncatedAt(_) | ReadOutcome::End(_) | ReadOutcome::CleanEof => {
                // Mid-frame end of any kind (peer death, idle stall,
                // shutdown): the frame is unusable.
                self.respond(&Frame::Error {
                    code: ERR_MALFORMED,
                    message: format!("truncated frame payload (wanted {len} bytes)"),
                });
                return None;
            }
            ReadOutcome::Fault(e) => {
                obs::debug!("ingest read failed: {e}"; conn = self.id);
                return None;
            }
        }
        let decode_t0 = obs::telemetry_on().then(Instant::now);
        match decode_payload_v(&payload, self.version) {
            Ok(frame) => {
                self.last_decode = decode_t0.map(|t| t.elapsed());
                if let Some(d) = self.last_decode {
                    crate::telemetry::hop_metrics().decode.record_duration_ns(d);
                }
                Some(frame)
            }
            Err(e) => {
                self.respond(&Frame::Error {
                    code: ERR_MALFORMED,
                    message: e.to_string(),
                });
                None
            }
        }
    }

    /// Handles one decoded frame. `false` ends the connection.
    fn dispatch(&mut self, frame: Frame) -> bool {
        match frame {
            Frame::Open { session, trace } => self.handle_open(session, trace),
            Frame::Batch {
                session,
                seq,
                reports,
                trace,
            } => self.handle_batch(session, seq, reports, trace),
            Frame::Close { session } => self.handle_close(session),
            other => {
                // Server-to-client frame types are not requests.
                self.respond(&Frame::Error {
                    code: ERR_MALFORMED,
                    message: format!(
                        "frame type 0x{:02x} is not a client request",
                        other.type_byte()
                    ),
                });
                false
            }
        }
    }

    /// Starts the session's root trace span and binds a flight recorder
    /// into its stage graph. A no-op while telemetry is disabled, so the
    /// frozen-clock replay configuration is untouched.
    fn begin_trace(&mut self, session: &str, ctx: Option<TraceContext>) {
        if !obs::telemetry_on() {
            return;
        }
        let engine_id = self.engine_id(session);
        let recorder = obs::trace::recorder(&engine_id);
        let trace = ctx
            .as_ref()
            .filter(|c| c.trace != 0)
            .map(|c| obs::trace::TraceId(c.trace))
            .unwrap_or_else(obs::trace::next_trace_id);
        let root_parent = ctx
            .as_ref()
            .filter(|c| c.parent_span != 0)
            .map(|c| obs::trace::SpanId(c.parent_span));
        let root = obs::trace::next_span_id();
        if let Some(handle) = self.sessions.get(session) {
            handle.bind_trace(Arc::clone(&recorder), trace, root);
        }
        let opened_us = recorder.now_us();
        self.traces.insert(
            session.to_owned(),
            SessionTrace {
                recorder,
                trace,
                root,
                root_parent,
                opened_us,
            },
        );
    }

    /// Records the `decode` hop as a child span of the session's root,
    /// consuming the decode time stamped by `read_request`.
    fn record_decode_span(&mut self, session: &str, ctx: Option<TraceContext>) {
        let Some(d) = self.last_decode.take() else {
            return;
        };
        let Some(tr) = self.traces.get(session) else {
            return;
        };
        if !obs::trace::sampler().sample() {
            return;
        }
        // The batch may carry its own parent span from the client; fall
        // back to the session root when it does not.
        let parent = ctx
            .as_ref()
            .filter(|c| c.parent_span != 0)
            .map(|c| obs::trace::SpanId(c.parent_span))
            .unwrap_or(tr.root);
        let end_us = tr.recorder.now_us();
        obs::trace::finish_span(
            &tr.recorder,
            obs::trace::SpanEvent {
                trace: tr.trace,
                span: obs::trace::next_span_id(),
                parent: Some(parent),
                name: "decode".to_owned(),
                start_us: end_us.saturating_sub(d.as_micros() as u64),
                end_us,
            },
        );
    }

    /// Delivers a closed session's events to the sink, timing the emit
    /// hop and closing the session's root span.
    fn deliver(&mut self, session: &str, engine_id: &str, events: Vec<crate::PipelineEvent>) {
        let t0 = obs::telemetry_on().then(Instant::now);
        self.shared.sink.on_events(engine_id, events);
        let tr = self.traces.remove(session);
        let Some(d) = t0.map(|t| t.elapsed()) else {
            return;
        };
        crate::telemetry::hop_metrics().emit.record_duration_ns(d);
        let Some(tr) = tr else { return };
        let end_us = tr.recorder.now_us();
        obs::trace::finish_span(
            &tr.recorder,
            obs::trace::SpanEvent {
                trace: tr.trace,
                span: obs::trace::next_span_id(),
                parent: Some(tr.root),
                name: "emit".to_owned(),
                start_us: end_us.saturating_sub(d.as_micros() as u64),
                end_us,
            },
        );
        // The root span covers the session's whole served lifetime.
        obs::trace::finish_span(
            &tr.recorder,
            obs::trace::SpanEvent {
                trace: tr.trace,
                span: tr.root,
                parent: tr.root_parent,
                name: "session".to_owned(),
                start_us: tr.opened_us,
                end_us,
            },
        );
    }

    fn handle_open(&mut self, session: String, trace: Option<TraceContext>) -> bool {
        if self.sessions.contains_key(&session) {
            return self.respond(&Frame::Error {
                code: ERR_SESSION_EXISTS,
                message: format!("session {session:?} is already open on this connection"),
            });
        }
        let pipeline = match (self.shared.factory)(&session) {
            Ok(p) => p,
            Err(e) => {
                return self.respond(&Frame::Error {
                    code: ERR_ENGINE,
                    message: format!("pipeline factory failed: {e}"),
                })
            }
        };
        match self
            .shared
            .engine
            .open_session(self.engine_id(&session), pipeline)
        {
            Ok(handle) => {
                self.sessions.insert(session.clone(), handle);
                self.sessions_gauge.set(self.sessions.len() as i64);
                self.begin_trace(&session, trace);
                self.respond(&Frame::Ack {
                    session,
                    seq: 0,
                    accepted: 0,
                })
            }
            Err(e @ RfipadError::SessionExists(_)) => self.respond(&Frame::Error {
                code: ERR_SESSION_EXISTS,
                message: e.to_string(),
            }),
            Err(e) => self.respond(&Frame::Error {
                code: ERR_ENGINE,
                message: e.to_string(),
            }),
        }
    }

    fn handle_batch(
        &mut self,
        session: String,
        seq: u32,
        reports: rfid_gen2::report::ReportBatch,
        trace: Option<TraceContext>,
    ) -> bool {
        let Some(handle) = self.sessions.get(&session) else {
            return self.respond(&Frame::Error {
                code: ERR_UNKNOWN_SESSION,
                message: format!("session {session:?} is not open on this connection"),
            });
        };
        match handle.ingest_batch(reports) {
            Ok(receipt) => {
                self.record_decode_span(&session, trace);
                let m = serve_metrics();
                m.reports_in.add(receipt.accepted);
                if receipt.dropped == 0 {
                    self.respond(&Frame::Ack {
                        session,
                        seq,
                        accepted: receipt.accepted,
                    })
                } else {
                    m.reports_shed.add(receipt.dropped);
                    self.respond(&Frame::Shed {
                        session,
                        seq,
                        accepted: receipt.accepted,
                        dropped: receipt.dropped,
                    })
                }
            }
            Err(e @ RfipadError::SessionClosed(_)) => {
                // Swept by idle eviction: flush what it produced and make
                // the id reusable.
                if let Some(handle) = self.sessions.remove(&session) {
                    self.sessions_gauge.set(self.sessions.len() as i64);
                    let engine_id = self.engine_id(&session);
                    if let Ok(events) = handle.close() {
                        self.deliver(&session, &engine_id, events);
                    } else {
                        self.traces.remove(&session);
                    }
                }
                self.respond(&Frame::Error {
                    code: ERR_UNKNOWN_SESSION,
                    message: e.to_string(),
                })
            }
            Err(e @ RfipadError::EngineDown) => {
                self.respond(&Frame::Error {
                    code: ERR_ENGINE,
                    message: e.to_string(),
                });
                false
            }
            Err(e) => self.respond(&Frame::Error {
                code: ERR_ENGINE,
                message: e.to_string(),
            }),
        }
    }

    fn handle_close(&mut self, session: String) -> bool {
        let Some(handle) = self.sessions.remove(&session) else {
            return self.respond(&Frame::Error {
                code: ERR_UNKNOWN_SESSION,
                message: format!("session {session:?} is not open on this connection"),
            });
        };
        self.sessions_gauge.set(self.sessions.len() as i64);
        let engine_id = self.engine_id(&session);
        match handle.close() {
            Ok(events) => {
                let count = events.len() as u64;
                self.deliver(&session, &engine_id, events);
                self.respond(&Frame::Closed {
                    session,
                    events: count,
                })
            }
            Err(e) => {
                self.traces.remove(&session);
                self.respond(&Frame::Error {
                    code: ERR_ENGINE,
                    message: e.to_string(),
                })
            }
        }
    }

    /// Sends one response frame. `false` means the peer is unreachable
    /// and the connection should end.
    fn respond(&mut self, frame: &Frame) -> bool {
        let m = serve_metrics();
        match frame {
            Frame::Ack { .. } => m.acks_out.inc(),
            Frame::Shed { .. } => m.sheds_out.inc(),
            Frame::Error { .. } => m.errors_out.inc(),
            _ => {}
        }
        self.stream
            .write_all(&encode_frame_v(frame, self.version))
            .is_ok()
    }

    /// Fills `buf` from the stream under the connection's poll timeout,
    /// idle deadline, and the server's stop flag. `allow_clean_eof`
    /// distinguishes a frame boundary (where EOF and shutdown are clean)
    /// from mid-frame (where they are not).
    fn read_full(&mut self, buf: &mut [u8], allow_clean_eof: bool) -> ReadOutcome {
        let mut filled = 0usize;
        let deadline = Instant::now() + self.shared.idle_disconnect;
        while filled < buf.len() {
            if self.shared.stop.load(Ordering::SeqCst) && (allow_clean_eof || filled == 0) {
                return ReadOutcome::End(ConnEnd::Shutdown);
            }
            match self.stream.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 && allow_clean_eof => return ReadOutcome::CleanEof,
                Ok(0) => return ReadOutcome::TruncatedAt(filled),
                Ok(n) => filled += n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if self.shared.stop.load(Ordering::SeqCst) {
                        return ReadOutcome::End(ConnEnd::Shutdown);
                    }
                    if Instant::now() >= deadline {
                        return ReadOutcome::End(ConnEnd::Idle);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return ReadOutcome::Fault(e),
            }
        }
        ReadOutcome::Full
    }

    /// Ends the connection: closes every session it still owns, flushing
    /// their events to the sink, and retires its labelled series.
    fn finish(&mut self) {
        let sessions = std::mem::take(&mut self.sessions);
        for (client_id, handle) in sessions {
            let engine_id = self.engine_id(&client_id);
            match handle.close() {
                Ok(events) => self.deliver(&client_id, &engine_id, events),
                Err(e) => obs::debug!("drain close failed: {e}"; session = engine_id),
            }
        }
        self.traces.clear();
        let label = format!("c{}", self.id);
        let r = obs::registry();
        for (name, _) in CONN_GAUGES {
            r.remove_matching(name, "conn", &label);
        }
        obs::debug!("ingest connection closed"; conn = self.id, frames = self.frames_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use crate::recognizer::Recognizer;
    use rfid_gen2::report::{TagId, TagReport};
    use rfid_gen2::wire::{read_frame, IngestClient, WIRE_MAGIC};

    fn obs_report(tag: TagId, time: f64, phase: f64, rss: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(std::f64::consts::TAU), rss)
    }

    /// Tiny 1×3 quiet pipeline, same shape as the engine tests use.
    fn quiet_pipeline() -> Result<OnlinePipeline, RfipadError> {
        let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| {
                (0..3).map(move |i| {
                    obs_report(
                        TagId(i),
                        j as f64 * 0.05 + i as f64 * 0.01,
                        1.0 + i as f64,
                        -45.0,
                    )
                })
            })
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config)?;
        let recognizer = Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()?;
        OnlinePipeline::builder().recognizer(recognizer).build()
    }

    fn quiet_reports(n: usize) -> Vec<TagReport> {
        (0..n)
            .map(|i| {
                obs_report(
                    TagId((i % 3) as u64),
                    i as f64 * 0.01,
                    1.0 + (i % 3) as f64,
                    -45.0,
                )
            })
            .collect()
    }

    fn server_with(sink: Arc<dyn EventSink>) -> (IngestServer, Arc<Engine>) {
        let engine = Arc::new(Engine::builder().workers(2).build().expect("engine"));
        let server = IngestServer::builder()
            .engine(Arc::clone(&engine))
            .pipeline_factory(|_| quiet_pipeline())
            .event_sink(sink)
            .read_timeout(Duration::from_millis(5))
            .idle_disconnect(Duration::from_secs(5))
            .build()
            .expect("server");
        (server, engine)
    }

    #[test]
    fn builder_validates_every_field() {
        let engine = Arc::new(Engine::builder().build().expect("engine"));
        let err = IngestServer::builder().build().unwrap_err();
        assert!(
            err.to_string().contains("IngestServerBuilder.engine"),
            "{err}"
        );
        let err = IngestServer::builder()
            .engine(Arc::clone(&engine))
            .build()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("IngestServerBuilder.pipeline_factory"),
            "{err}"
        );
        let err = IngestServer::builder()
            .engine(Arc::clone(&engine))
            .pipeline_factory(|_| quiet_pipeline())
            .read_timeout(Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("IngestServerBuilder.read_timeout"),
            "{err}"
        );
        let err = IngestServer::builder()
            .engine(Arc::clone(&engine))
            .pipeline_factory(|_| quiet_pipeline())
            .read_timeout(Duration::from_secs(1))
            .idle_disconnect(Duration::from_millis(10))
            .build()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("IngestServerBuilder.idle_disconnect"),
            "{err}"
        );
        let err = IngestServer::builder()
            .engine(Arc::clone(&engine))
            .pipeline_factory(|_| quiet_pipeline())
            .max_frame_len(8)
            .build()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains("IngestServerBuilder.max_frame_len"),
            "{err}"
        );
        let err = IngestServer::builder()
            .engine(engine)
            .pipeline_factory(|_| quiet_pipeline())
            .addr("256.0.0.1:1")
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("IngestServerBuilder.addr"),
            "{err}"
        );
    }

    #[test]
    fn open_batch_close_round_trip_reaches_the_sink() {
        let sink = Arc::new(CollectingSink::new());
        let (server, _engine) = server_with(Arc::clone(&sink) as Arc<dyn EventSink>);
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        client.open("pad").expect("open");
        let reports = quiet_reports(64);
        let delivery = client.send_reports("pad", &reports, 32).expect("send");
        assert_eq!(delivery.accepted, 64);
        assert_eq!(delivery.dropped, 0);
        let events = client.close("pad").expect("close");
        drop(client);
        server.shutdown();
        let collected = sink.take();
        let key = collected
            .keys()
            .find(|k| k.ends_with("#pad"))
            .expect("session drained to sink")
            .clone();
        assert_eq!(collected[&key].len() as u64, events);
    }

    #[test]
    fn duplicate_open_and_unknown_session_keep_the_connection_usable() {
        let (server, _engine) = server_with(Arc::new(DiscardSink));
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        client.open("pad").expect("open");
        let err = client.open("pad").unwrap_err();
        assert!(
            matches!(err, WireError::Remote { code, .. } if code == ERR_SESSION_EXISTS),
            "{err}"
        );
        let err = client
            .send_batch("ghost", 1, quiet_reports(3).into_iter().collect())
            .unwrap_err();
        assert!(
            matches!(err, WireError::Remote { code, .. } if code == ERR_UNKNOWN_SESSION),
            "{err}"
        );
        // The connection survived both errors: the open session still works.
        let delivery = client
            .send_batch("pad", 2, quiet_reports(3).into_iter().collect())
            .expect("send");
        assert_eq!(delivery.accepted, 3);
        client.close("pad").expect("close");
        server.shutdown();
    }

    #[test]
    fn version_mismatch_answers_a_typed_error_and_disconnects() {
        let (server, _engine) = server_with(Arc::new(DiscardSink));
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut bad = [0u8; HANDSHAKE_LEN];
        bad[..4].copy_from_slice(&WIRE_MAGIC);
        bad[4..].copy_from_slice(&99u16.to_be_bytes());
        stream.write_all(&bad).expect("write handshake");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(frame, Frame::Error { code, .. } if code == ERR_UNSUPPORTED_VERSION),
            "{frame:?}"
        );
        // The server hangs up after the rejection.
        let mut byte = [0u8; 1];
        assert_eq!(stream.read(&mut byte).unwrap_or(0), 0);
        server.shutdown();
    }

    #[test]
    fn oversized_and_malformed_frames_answer_typed_errors() {
        let (server, _engine) = server_with(Arc::new(DiscardSink));
        // Oversized frame: refused before the payload is read.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(&handshake_bytes_for(WIRE_VERSION))
            .expect("handshake out");
        let mut echo = [0u8; HANDSHAKE_LEN];
        stream.read_exact(&mut echo).expect("handshake back");
        stream
            .write_all(&u32::MAX.to_be_bytes())
            .expect("write prefix");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(frame, Frame::Error { code, .. } if code == ERR_TOO_LARGE),
            "{frame:?}"
        );
        // Undecodable payload: a typed malformed error.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .write_all(&handshake_bytes_for(WIRE_VERSION))
            .expect("handshake out");
        stream.read_exact(&mut echo).expect("handshake back");
        stream
            .write_all(&[0, 0, 0, 2, 0xEE, 0xEE])
            .expect("write garbage");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("read")
            .expect("frame");
        assert!(
            matches!(frame, Frame::Error { code, .. } if code == ERR_MALFORMED),
            "{frame:?}"
        );
        server.shutdown();
    }

    #[test]
    fn idle_connections_are_disconnected() {
        let engine = Arc::new(Engine::builder().workers(1).build().expect("engine"));
        let server = IngestServer::builder()
            .engine(engine)
            .pipeline_factory(|_| quiet_pipeline())
            .read_timeout(Duration::from_millis(5))
            .idle_disconnect(Duration::from_millis(60))
            .build()
            .expect("server");
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        client.open("pad").expect("open");
        // Go silent past the idle deadline; the server hangs up.
        std::thread::sleep(Duration::from_millis(250));
        let mut byte = [0u8; 1];
        assert_eq!(client.stream().read(&mut byte).unwrap_or(0), 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_sessions_the_client_never_closed() {
        let sink = Arc::new(CollectingSink::new());
        let (server, engine) = server_with(Arc::clone(&sink) as Arc<dyn EventSink>);
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        client.open("left").expect("open left");
        client.open("right").expect("open right");
        client
            .send_reports("left", &quiet_reports(16), 8)
            .expect("send");
        let open_before = engine.stats().sessions_open;
        assert_eq!(open_before, 2);
        server.shutdown();
        let collected = sink.take();
        assert!(
            collected.keys().any(|k| k.ends_with("#left")),
            "{collected:?}"
        );
        assert!(
            collected.keys().any(|k| k.ends_with("#right")),
            "{collected:?}"
        );
        // The drain closed the engine sessions; the engine itself is alive.
        assert_eq!(engine.stats().sessions_open, 0);
        let mut byte = [0u8; 1];
        assert_eq!(client.stream().read(&mut byte).unwrap_or(0), 0);
    }

    #[test]
    fn sessions_multiplex_per_connection_without_id_collisions() {
        let sink = Arc::new(CollectingSink::new());
        let (server, _engine) = server_with(Arc::clone(&sink) as Arc<dyn EventSink>);
        let mut a = IngestClient::connect(server.local_addr()).expect("connect a");
        let mut b = IngestClient::connect(server.local_addr()).expect("connect b");
        // Both connections use the same client-side id; the server scopes
        // them to their connections.
        a.open("pad").expect("open a");
        b.open("pad").expect("open b");
        a.send_reports("pad", &quiet_reports(8), 8).expect("send a");
        b.send_reports("pad", &quiet_reports(8), 8).expect("send b");
        a.close("pad").expect("close a");
        b.close("pad").expect("close b");
        server.shutdown();
        let collected = sink.take();
        let pads: Vec<_> = collected.keys().filter(|k| k.ends_with("#pad")).collect();
        assert_eq!(pads.len(), 2, "{collected:?}");
    }

    #[test]
    fn v1_clients_negotiate_down_and_round_trip() {
        let sink = Arc::new(CollectingSink::new());
        let (server, _engine) = server_with(Arc::clone(&sink) as Arc<dyn EventSink>);
        let stream = TcpStream::connect(server.local_addr()).expect("connect");
        let mut client =
            IngestClient::from_stream_versioned(stream, 1).expect("v1 handshake accepted");
        assert_eq!(client.negotiated_version(), 1);
        client.open("pad").expect("open");
        let delivery = client
            .send_reports("pad", &quiet_reports(64), 32)
            .expect("send");
        assert_eq!(delivery.accepted, 64);
        assert_eq!(delivery.dropped, 0);
        let events = client.close("pad").expect("close");
        drop(client);
        server.shutdown();
        let collected = sink.take();
        let key = collected
            .keys()
            .find(|k| k.ends_with("#pad"))
            .expect("v1 session drained to sink")
            .clone();
        assert_eq!(collected[&key].len() as u64, events);
    }

    #[test]
    fn traced_sessions_leave_flight_recorder_dumps() {
        let (server, _engine) = server_with(Arc::new(DiscardSink));
        let mut client = IngestClient::connect(server.local_addr()).expect("connect");
        assert_eq!(client.negotiated_version(), WIRE_VERSION);
        // A client-supplied trace context wins over a server-minted id.
        client
            .open_traced(
                "traced-pad",
                Some(TraceContext {
                    trace: 0xfeed_f00d,
                    parent_span: 0x77,
                }),
            )
            .expect("open");
        client
            .send_reports("traced-pad", &quiet_reports(32), 16)
            .expect("send");
        client.close("traced-pad").expect("close");
        server.shutdown();
        // The recorder outlives the session for post-mortem debugging.
        let key = obs::trace::sessions()
            .into_iter()
            .find(|s| s.ends_with("#traced-pad"))
            .expect("recorder registered");
        let rec = obs::trace::lookup(&key).expect("recorder kept after close");
        let spans = rec.snapshot();
        let root = spans
            .iter()
            .find(|s| s.name == "session")
            .expect("root span closed at delivery");
        assert_eq!(root.trace.0, 0xfeed_f00d);
        assert_eq!(root.parent.map(|p| p.0), Some(0x77));
        assert!(
            spans
                .iter()
                .any(|s| s.name == "emit" && s.parent == Some(root.span)),
            "{spans:?}"
        );
        // The dump is line-parseable back into span events.
        let dump = rec.to_json();
        assert!(dump.starts_with("{\"dropped\":"), "{dump}");
        let parsed = dump
            .lines()
            .filter_map(|l| obs::trace::SpanEvent::from_json(l.trim().trim_end_matches(',')))
            .count();
        assert_eq!(parsed, spans.len());
    }
}
