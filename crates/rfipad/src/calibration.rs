//! Static calibration: tag diversity and deviation bias.
//!
//! Before recognition, RFIPad records each tag's signal in the static
//! environment. From those samples it derives, per tag:
//!
//! - the average phase θ̃ᵢ (Eq. 6) subtracted later to cancel the hardware
//!   phase offsets θ_T, θ_R, θ_tag — the *tag diversity* suppression of
//!   Eq. 8;
//! - the *deviation bias* bᵢ — the standard deviation of the static phase —
//!   from which the Eq. 9 weighting function is built to suppress *location
//!   diversity* (tags in rich multipath jitter more and are down-weighted);
//! - the static activity level used to set the stroke-detection threshold
//!   of Eq. 12.
//!
//! Phases live on the circle, so means and deviations are circular.

use crate::config::RfipadConfig;
use crate::error::RfipadError;
use crate::layout::ArrayLayout;
use crate::tagmap::TagIdMap;
use rfid_gen2::report::{TagId, TagReport};
use serde::{Deserialize, Serialize};
use sigproc::frames::FrameSeq;
use sigproc::series::TimeSeries;
use sigproc::stats;
use std::collections::HashMap;
use std::f64::consts::{PI, TAU};

/// Minimum static samples per tag for a trustworthy calibration (the paper
/// interrogates each tag 100 times; we require a tenth of that).
pub const MIN_SAMPLES_PER_TAG: usize = 10;

/// Floor on the deviation bias: the reader cannot resolve phase deviations
/// below its quantization step (≈ 0.0015 rad), so no tag's measured bias is
/// meaningful below it. Without this floor, near-noiseless calibrations
/// would turn floating-point dust into enormous weight swings.
pub const MIN_DEVIATION_BIAS: f64 = rfid_gen2::report::PHASE_STEP;

/// Wraps a phase difference into `(-π, π]`.
pub fn wrap_to_pi(phase: f64) -> f64 {
    let mut p = phase.rem_euclid(TAU);
    if p > PI {
        p -= TAU;
    }
    p
}

/// Circular mean of phases in radians.
fn circular_mean(phases: &[f64]) -> f64 {
    let (s, c) = phases
        .iter()
        .fold((0.0, 0.0), |(s, c), &p| (s + p.sin(), c + p.cos()));
    s.atan2(c).rem_euclid(TAU)
}

/// Circular standard deviation: `sqrt(-2 ln R)` with `R` the mean resultant
/// length.
fn circular_std(phases: &[f64]) -> f64 {
    let n = phases.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let (s, c) = phases
        .iter()
        .fold((0.0, 0.0), |(s, c), &p| (s + p.sin(), c + p.cos()));
    let r = ((s / n).powi(2) + (c / n).powi(2)).sqrt().clamp(1e-12, 1.0);
    (-2.0 * r.ln()).sqrt()
}

/// Per-tag static statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagCalibration {
    /// Circular mean static phase θ̃ᵢ (Eq. 6).
    pub mean_phase: f64,
    /// Deviation bias bᵢ: circular std of static phase (Fig. 5).
    pub deviation_bias: f64,
    /// Mean static RSS in dBm (reference for trough depths).
    pub mean_rss: f64,
    /// Static samples used.
    pub samples: usize,
}

/// The complete static calibration of a pad.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    per_tag: TagIdMap<TagId, TagCalibration>,
    /// Mean deviation bias across the array (weighting normalizer).
    mean_bias: f64,
    /// Median `std(rms(w))` of static windows — the quiet-floor for Eq. 12.
    static_window_std: f64,
    /// Median per-frame multi-tag RMS of the static recording — the
    /// quiet-floor for the RMS-level criterion.
    static_frame_rms: f64,
}

impl Calibration {
    /// Builds a calibration from observations recorded with no hand present.
    ///
    /// # Errors
    ///
    /// - [`RfipadError::EmptyStream`] if `observations` is empty;
    /// - [`RfipadError::UnknownTag`] if a report references a tag outside
    ///   the layout;
    /// - [`RfipadError::InsufficientCalibration`] if any layout tag has
    ///   fewer than [`MIN_SAMPLES_PER_TAG`] samples.
    pub fn from_observations(
        layout: &ArrayLayout,
        observations: &[TagReport],
        config: &RfipadConfig,
    ) -> Result<Self, RfipadError> {
        if observations.is_empty() {
            return Err(RfipadError::EmptyStream);
        }
        let mut phases: HashMap<TagId, Vec<f64>> = HashMap::new();
        let mut rss: HashMap<TagId, Vec<f64>> = HashMap::new();
        for obs in observations {
            if !layout.contains(obs.tag) {
                return Err(RfipadError::UnknownTag(obs.tag));
            }
            phases.entry(obs.tag).or_default().push(obs.phase);
            rss.entry(obs.tag).or_default().push(obs.rss_dbm);
        }

        let mut per_tag = TagIdMap::default();
        per_tag.reserve(layout.len());
        for &id in layout.tags() {
            let tag_phases = phases.get(&id).map(Vec::as_slice).unwrap_or(&[]);
            if tag_phases.len() < MIN_SAMPLES_PER_TAG {
                return Err(RfipadError::InsufficientCalibration {
                    tag: id,
                    got: tag_phases.len(),
                    need: MIN_SAMPLES_PER_TAG,
                });
            }
            per_tag.insert(
                id,
                TagCalibration {
                    mean_phase: circular_mean(tag_phases),
                    deviation_bias: circular_std(tag_phases).max(MIN_DEVIATION_BIAS),
                    mean_rss: stats::mean(rss.get(&id).map(Vec::as_slice).unwrap_or(&[])),
                    samples: tag_phases.len(),
                },
            );
        }
        let mean_bias = stats::mean(
            &per_tag
                .values()
                .map(|c| c.deviation_bias)
                .collect::<Vec<_>>(),
        )
        .max(1e-9);

        // Quiet-floor estimation: frame the *suppressed* static phases
        // exactly the way the segmenter will and record the typical
        // std(rms(w)).
        let (static_window_std, static_frame_rms) =
            Self::compute_static_floors(layout, &per_tag, observations, config);

        Ok(Self {
            per_tag,
            mean_bias,
            static_window_std,
            static_frame_rms,
        })
    }

    fn compute_static_floors(
        layout: &ArrayLayout,
        per_tag: &TagIdMap<TagId, TagCalibration>,
        observations: &[TagReport],
        config: &RfipadConfig,
    ) -> (f64, f64) {
        let mut streams: HashMap<TagId, TimeSeries> = HashMap::new();
        for obs in observations {
            let mean = per_tag[&obs.tag].mean_phase;
            streams
                .entry(obs.tag)
                .or_default()
                .push(obs.time, wrap_to_pi(obs.phase - mean));
        }
        let start = observations
            .iter()
            .map(|o| o.time)
            .fold(f64::INFINITY, f64::min);
        let end = observations
            .iter()
            .map(|o| o.time)
            .fold(f64::NEG_INFINITY, f64::max);
        if end - start < config.frame_len_s * config.window_frames as f64 {
            return (0.0, 0.0);
        }
        let mut series: Vec<TimeSeries> = Vec::with_capacity(layout.len());
        let mut floors: Vec<f64> = Vec::with_capacity(layout.len());
        for id in layout.tags() {
            series.push(streams.remove(id).unwrap_or_default());
            floors.push(config.noise_floor_kappa * per_tag[id].deviation_bias);
        }
        let frames =
            FrameSeq::build_with_floors(&series, Some(&floors), start, end, config.frame_len_s);
        let stds: Vec<f64> = frames
            .windows(config.window_frames)
            .iter()
            .map(|w| w.rms_std())
            .collect();
        (stats::median(&stds), stats::median(&frames.rms_values()))
    }

    /// Per-tag statistics.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::UnknownTag`] for tags outside the calibration.
    pub fn tag(&self, id: TagId) -> Result<&TagCalibration, RfipadError> {
        self.per_tag.get(&id).ok_or(RfipadError::UnknownTag(id))
    }

    /// θ̃ᵢ for a tag.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::UnknownTag`] for tags outside the calibration.
    pub fn mean_phase(&self, id: TagId) -> Result<f64, RfipadError> {
        self.tag(id).map(|c| c.mean_phase)
    }

    /// The Eq. 9 weight `wᵢ = bᵢ / Σbⱼ` (up to the array-size constant we
    /// report it relative to the mean bias: `wᵢ ∝ bᵢ / mean(b)`).
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::UnknownTag`] for tags outside the calibration.
    pub fn weight(&self, id: TagId) -> Result<f64, RfipadError> {
        self.tag(id)
            .map(|c| c.deviation_bias.max(0.1 * self.mean_bias) / self.mean_bias)
    }

    /// The Eq. 10 multiplier `wᵢ⁻¹`: tags with high deviation bias are
    /// weakened, quiet tags boosted. Floored at 10% of the mean bias to
    /// keep a near-perfect tag from dominating the image.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::UnknownTag`] for tags outside the calibration.
    pub fn inverse_weight(&self, id: TagId) -> Result<f64, RfipadError> {
        self.weight(id).map(|w| 1.0 / w)
    }

    /// The Eq. 12 activity threshold: `threshold_scale` × the static quiet
    /// floor, but no lower than `threshold_floor`.
    pub fn activity_threshold(&self, config: &RfipadConfig) -> f64 {
        (config.threshold_scale * self.static_window_std).max(config.threshold_floor)
    }

    /// The RMS-level activity threshold complementing Eq. 12:
    /// `rms_level_scale` × the static excess-RMS floor, but at least
    /// `rms_level_floor`.
    pub fn rms_level_threshold(&self, config: &RfipadConfig) -> f64 {
        (config.rms_level_scale * self.static_frame_rms).max(config.rms_level_floor)
    }

    /// Per-tag noise floors (κ · deviation bias) in layout order, for the
    /// excess-RMS framing.
    pub fn noise_floors(&self, layout: &ArrayLayout, config: &RfipadConfig) -> Vec<f64> {
        layout
            .tags()
            .iter()
            .map(|id| {
                config.noise_floor_kappa
                    * self
                        .per_tag
                        .get(id)
                        .map(|c| c.deviation_bias)
                        .unwrap_or(0.0)
            })
            .collect()
    }

    /// Median static frame RMS the level threshold derives from.
    pub fn static_frame_rms(&self) -> f64 {
        self.static_frame_rms
    }

    /// Mean deviation bias across the array.
    pub fn mean_bias(&self) -> f64 {
        self.mean_bias
    }

    /// Median static `std(rms(w))` the threshold is derived from.
    pub fn static_window_std(&self) -> f64 {
        self.static_window_std
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(1, 2, vec![TagId(0), TagId(1)])
    }

    fn static_obs(tag: TagId, base_phase: f64, jitter: f64, n: usize) -> Vec<TagReport> {
        (0..n)
            .map(|j| {
                TagReport::synthetic(
                    tag,
                    j as f64 * 0.05,
                    (base_phase + jitter * ((j as f64 * 2.399).sin())).rem_euclid(TAU),
                    -45.0,
                )
            })
            .collect()
    }

    #[test]
    fn circular_mean_handles_wraparound() {
        // Samples straddling 0/2π must average near 0, not π.
        let phases = [0.1, TAU - 0.1, 0.05, TAU - 0.05];
        let m = circular_mean(&phases);
        assert!(!(0.1..=TAU - 0.1).contains(&m), "mean {m}");
    }

    #[test]
    fn circular_std_small_for_tight_cluster() {
        let phases: Vec<f64> = (0..100).map(|i| 1.0 + 0.01 * (i as f64).sin()).collect();
        assert!(circular_std(&phases) < 0.05);
    }

    #[test]
    fn calibration_from_distinct_tags() {
        let mut obs = static_obs(TagId(0), 1.0, 0.02, 40);
        obs.extend(static_obs(TagId(1), 4.0, 0.2, 40));
        let cal =
            Calibration::from_observations(&layout(), &obs, &RfipadConfig::default()).unwrap();
        assert!((cal.mean_phase(TagId(0)).unwrap() - 1.0).abs() < 0.05);
        assert!((cal.mean_phase(TagId(1)).unwrap() - 4.0).abs() < 0.15);
        // Tag 1 jitters 10× more → larger bias, larger weight, smaller
        // inverse weight.
        let b0 = cal.tag(TagId(0)).unwrap().deviation_bias;
        let b1 = cal.tag(TagId(1)).unwrap().deviation_bias;
        assert!(b1 > 3.0 * b0, "biases {b0} {b1}");
        assert!(cal.inverse_weight(TagId(0)).unwrap() > cal.inverse_weight(TagId(1)).unwrap());
    }

    #[test]
    fn empty_observations_rejected() {
        assert_eq!(
            Calibration::from_observations(&layout(), &[], &RfipadConfig::default()),
            Err(RfipadError::EmptyStream)
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        let obs = static_obs(TagId(7), 1.0, 0.02, 40);
        assert!(matches!(
            Calibration::from_observations(&layout(), &obs, &RfipadConfig::default()),
            Err(RfipadError::UnknownTag(TagId(7)))
        ));
    }

    #[test]
    fn undersampled_tag_rejected() {
        let mut obs = static_obs(TagId(0), 1.0, 0.02, 40);
        obs.extend(static_obs(TagId(1), 2.0, 0.02, 3));
        assert!(matches!(
            Calibration::from_observations(&layout(), &obs, &RfipadConfig::default()),
            Err(RfipadError::InsufficientCalibration {
                tag: TagId(1),
                got: 3,
                need: 10
            })
        ));
    }

    #[test]
    fn activity_threshold_respects_floor() {
        let mut obs = static_obs(TagId(0), 1.0, 1e-6, 40);
        obs.extend(static_obs(TagId(1), 2.0, 1e-6, 40));
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout(), &obs, &config).unwrap();
        assert!(cal.activity_threshold(&config) >= config.threshold_floor);
    }

    #[test]
    fn noisier_environment_raises_threshold() {
        let config = RfipadConfig::default();
        let quiet = {
            let mut obs = static_obs(TagId(0), 1.0, 0.02, 60);
            obs.extend(static_obs(TagId(1), 2.0, 0.02, 60));
            Calibration::from_observations(&layout(), &obs, &config).unwrap()
        };
        let noisy = {
            let mut obs = static_obs(TagId(0), 1.0, 0.4, 60);
            obs.extend(static_obs(TagId(1), 2.0, 0.4, 60));
            Calibration::from_observations(&layout(), &obs, &config).unwrap()
        };
        assert!(noisy.activity_threshold(&config) >= quiet.activity_threshold(&config));
    }

    #[test]
    fn wrap_to_pi_range() {
        for i in -20..20 {
            let w = wrap_to_pi(i as f64 * 0.7);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
        assert!((wrap_to_pi(TAU + 0.3) - 0.3).abs() < 1e-12);
        assert!((wrap_to_pi(-0.3) + 0.3).abs() < 1e-12);
    }
}
