//! Evaluation metrics: accuracy, FPR/FNR, confusion matrices, and the
//! segmentation insertion/underfill rates of the paper's Fig. 22.

use crate::segmentation::StrokeSpan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A confusion matrix over string labels.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: BTreeMap<(String, String), u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(truth, predicted)` outcome.
    pub fn record(&mut self, truth: impl Into<String>, predicted: impl Into<String>) {
        *self
            .counts
            .entry((truth.into(), predicted.into()))
            .or_default() += 1;
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Correct predictions (diagonal).
    pub fn correct(&self) -> u64 {
        self.counts
            .iter()
            .filter(|((t, p), _)| t == p)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Overall accuracy; 0.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Accuracy restricted to one ground-truth label.
    pub fn accuracy_for(&self, truth: &str) -> f64 {
        let total: u64 = self
            .counts
            .iter()
            .filter(|((t, _), _)| t == truth)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let correct = self
            .counts
            .get(&(truth.to_string(), truth.to_string()))
            .copied()
            .unwrap_or(0);
        correct as f64 / total as f64
    }

    /// All ground-truth labels seen.
    pub fn truth_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.counts.keys().map(|(t, _)| t.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Count for a specific `(truth, predicted)` pair.
    pub fn count(&self, truth: &str, predicted: &str) -> u64 {
        self.counts
            .get(&(truth.to_string(), predicted.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for ((t, p), c) in &other.counts {
            *self.counts.entry((t.clone(), p.clone())).or_default() += c;
        }
    }

    /// Serializes the matrix as one JSON object:
    /// `{"counts":[{"truth":"a","predicted":"b","count":2}, ...]}`.
    ///
    /// The serde stand-in under `vendor/` cannot serialize, so the codec is
    /// hand-rolled here, the same way `rfid_gen2::trace` persists reports.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counts\":[");
        for (i, ((t, p), c)) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"truth\":\"{}\",\"predicted\":\"{}\",\"count\":{c}}}",
                obs::expo::escape_json(t),
                obs::expo::escape_json(p)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a matrix from the [`ConfusionMatrix::to_json`] format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let body = json.trim();
        let inner = body
            .strip_prefix("{\"counts\":[")
            .and_then(|s| s.strip_suffix("]}"))
            .ok_or_else(|| "expected {\"counts\":[...]} wrapper".to_string())?;
        let mut matrix = ConfusionMatrix::new();
        if inner.trim().is_empty() {
            return Ok(matrix);
        }
        for record in split_top_level(inner) {
            let record = record.trim();
            let entry = record
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| format!("expected object, got {record:?}"))?;
            let mut truth = None;
            let mut predicted = None;
            let mut count: Option<u64> = None;
            for field in split_top_level(entry) {
                let (key, value) = field
                    .split_once(':')
                    .ok_or_else(|| format!("field without ':' in {entry:?}"))?;
                match key.trim().trim_matches('"') {
                    "truth" => truth = Some(unescape_json_string(value.trim())?),
                    "predicted" => predicted = Some(unescape_json_string(value.trim())?),
                    "count" => {
                        count = Some(
                            value
                                .trim()
                                .parse()
                                .map_err(|e| format!("bad count in {entry:?}: {e}"))?,
                        )
                    }
                    other => return Err(format!("unknown field {other:?}")),
                }
            }
            let (truth, predicted, count) = match (truth, predicted, count) {
                (Some(t), Some(p), Some(c)) => (t, p, c),
                _ => return Err(format!("incomplete entry {entry:?}")),
            };
            *matrix.counts.entry((truth, predicted)).or_default() += count;
        }
        Ok(matrix)
    }
}

/// Splits on commas that sit outside quoted strings and outside nested
/// `{}`/`[]` — the boundaries between records in an array, or between
/// fields inside one record. String contents (including escaped quotes and
/// brace characters in label text) never split.
///
/// Shared with the checkpoint codec in [`crate::stage`], which follows the
/// same hand-rolled JSON conventions.
pub(crate) fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut prev_backslash = false;
    let mut depth = 0usize;
    for (i, c) in s.char_indices() {
        if in_string {
            if prev_backslash {
                prev_backslash = false;
            } else if c == '\\' {
                prev_backslash = true;
            } else if c == '"' {
                in_string = false;
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth = depth.saturating_sub(1),
                ',' if depth == 0 => {
                    out.push(&s[start..i]);
                    start = i + 1;
                }
                _ => {}
            }
        }
    }
    out.push(&s[start..]);
    out
}

/// Decodes one quoted JSON string (the subset [`ConfusionMatrix::to_json`]
/// emits: `\"`, `\\`, `\n`, `\r`, `\t`, `\u00XX`). Shared with the
/// checkpoint codec in [`crate::stage`].
pub(crate) fn unescape_json_string(quoted: &str) -> Result<String, String> {
    let inner = quoted
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected quoted string, got {quoted:?}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape {other:?}")),
        }
    }
    Ok(out)
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix: {} outcomes, accuracy {:.3}",
            self.total(),
            self.accuracy()
        )?;
        for ((t, p), c) in &self.counts {
            if t != p {
                writeln!(f, "  {t} -> {p}: {c}")?;
            }
        }
        Ok(())
    }
}

/// Binary detection counters (for FPR / FNR experiments, Fig. 17/19).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCounts {
    /// Motions present and correctly detected.
    pub true_positives: u64,
    /// Detections with no underlying motion (falsely detected).
    pub false_positives: u64,
    /// Motions present but missed or misidentified.
    pub false_negatives: u64,
    /// Quiet intervals correctly left undetected.
    pub true_negatives: u64,
}

impl DetectionCounts {
    /// False-positive rate: FP / (FP + TN); the paper's "percentage of
    /// falsely detected motions".
    pub fn fpr(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// False-negative rate: FN / (FN + TP); the paper's "percentage of
    /// undetected motions".
    pub fn fnr(&self) -> f64 {
        let denom = self.false_negatives + self.true_positives;
        if denom == 0 {
            0.0
        } else {
            self.false_negatives as f64 / denom as f64
        }
    }

    /// Adds another tally.
    pub fn merge(&mut self, other: &DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
    }
}

/// Matching of detected spans against ground-truth stroke intervals for one
/// session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentationOutcome {
    /// True strokes matched by a detected span.
    pub matched: usize,
    /// True strokes with no matching span.
    pub missed: usize,
    /// Detected spans overlapping no true stroke (insertions, typically in
    /// the repositioning period).
    pub insertions: usize,
    /// Matched strokes whose span covers less than the completeness
    /// threshold (underfills).
    pub underfills: usize,
    /// Ground-truth strokes in the session.
    pub truth_count: usize,
}

/// Fraction of a true stroke a span must cover to count as complete.
pub const UNDERFILL_COVERAGE: f64 = 0.75;

/// Minimum overlap fraction (of the *detected span*) with a true stroke to
/// count as a match rather than an insertion.
pub const MATCH_OVERLAP: f64 = 0.3;

/// Scores detected spans against ground-truth `(start, end)` strokes.
pub fn score_segmentation(detected: &[StrokeSpan], truth: &[(f64, f64)]) -> SegmentationOutcome {
    let mut outcome = SegmentationOutcome {
        truth_count: truth.len(),
        ..SegmentationOutcome::default()
    };
    let mut matched_truth = vec![false; truth.len()];

    for span in detected {
        // Best-overlapping true stroke.
        let mut best: Option<(usize, f64)> = None;
        for (i, &(ts, te)) in truth.iter().enumerate() {
            let overlap = span.overlap(&StrokeSpan { start: ts, end: te });
            if overlap > best.map(|(_, o)| o).unwrap_or(0.0) {
                best = Some((i, overlap));
            }
        }
        match best {
            Some((i, overlap)) if overlap >= MATCH_OVERLAP * span.duration().max(1e-9) => {
                if !matched_truth[i] {
                    matched_truth[i] = true;
                    outcome.matched += 1;
                    let (ts, te) = truth[i];
                    let coverage = overlap / (te - ts).max(1e-9);
                    if coverage < UNDERFILL_COVERAGE {
                        outcome.underfills += 1;
                    }
                }
                // A second span on an already-matched stroke is counted as
                // an insertion (the stroke was split).
                else {
                    outcome.insertions += 1;
                }
            }
            _ => outcome.insertions += 1,
        }
    }
    outcome.missed = matched_truth.iter().filter(|&&m| !m).count();
    // Feed the workspace-wide segmentation-quality counters (Fig. 21/22
    // continuously, not just offline).
    let seg = crate::telemetry::segmentation_metrics();
    seg.insertions.add(outcome.insertions as u64);
    seg.underfills.add(outcome.underfills as u64);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_accuracy() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "a");
        m.record("a", "b");
        m.record("b", "b");
        m.record("b", "b");
        assert_eq!(m.total(), 4);
        assert_eq!(m.correct(), 3);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.accuracy_for("a") - 0.5).abs() < 1e-12);
        assert_eq!(m.accuracy_for("b"), 1.0);
        assert_eq!(m.count("a", "b"), 1);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new().accuracy(), 0.0);
    }

    #[test]
    fn matrix_merge() {
        let mut a = ConfusionMatrix::new();
        a.record("x", "x");
        let mut b = ConfusionMatrix::new();
        b.record("x", "y");
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn confusion_json_round_trip() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "a");
        m.record("a", "b");
        m.record("a", "b");
        m.record("L", "I");
        let json = m.to_json();
        assert!(json.contains("\"truth\":\"a\",\"predicted\":\"b\",\"count\":2"));
        let back = ConfusionMatrix::from_json(&json).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn confusion_json_round_trip_with_awkward_labels() {
        let mut m = ConfusionMatrix::new();
        // Quotes, backslashes, separators, and braces inside labels must
        // survive the trip.
        m.record("he said \"L\"", "back\\slash");
        m.record("comma,colon:", "brace}{,\"quoted\"");
        m.record("newline\nand\ttab", "plain");
        let back = ConfusionMatrix::from_json(&m.to_json()).expect("round trip");
        assert_eq!(back, m);
    }

    #[test]
    fn confusion_json_empty_and_malformed() {
        let empty = ConfusionMatrix::new();
        let back = ConfusionMatrix::from_json(&empty.to_json()).expect("empty round trip");
        assert_eq!(back, empty);
        assert!(ConfusionMatrix::from_json("").is_err());
        assert!(ConfusionMatrix::from_json("{\"counts\":[{\"truth\":\"a\"}]}").is_err());
        assert!(ConfusionMatrix::from_json(
            "{\"counts\":[{\"truth\":\"a\",\"predicted\":\"b\",\"count\":\"x\"}]}"
        )
        .is_err());
    }

    #[test]
    fn detection_rates() {
        let c = DetectionCounts {
            true_positives: 90,
            false_positives: 5,
            false_negatives: 10,
            true_negatives: 95,
        };
        assert!((c.fpr() - 0.05).abs() < 1e-12);
        assert!((c.fnr() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn detection_rates_empty_denominators() {
        let c = DetectionCounts::default();
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
    }

    #[test]
    fn perfect_segmentation() {
        let truth = vec![(1.0, 2.0), (3.0, 4.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 2.0,
            },
            StrokeSpan {
                start: 3.0,
                end: 4.0,
            },
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 2);
        assert_eq!(o.missed, 0);
        assert_eq!(o.insertions, 0);
        assert_eq!(o.underfills, 0);
    }

    #[test]
    fn insertion_in_pause_detected() {
        let truth = vec![(1.0, 2.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 2.0,
            },
            StrokeSpan {
                start: 2.5,
                end: 2.9,
            }, // spurious, in the pause
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.insertions, 1);
    }

    #[test]
    fn underfill_detected() {
        let truth = vec![(1.0, 3.0)];
        let detected = vec![StrokeSpan {
            start: 1.0,
            end: 2.0,
        }]; // covers 50%
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.underfills, 1);
    }

    #[test]
    fn missed_stroke_counted() {
        let truth = vec![(1.0, 2.0), (3.0, 4.0)];
        let detected = vec![StrokeSpan {
            start: 1.0,
            end: 2.0,
        }];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.missed, 1);
    }

    #[test]
    fn split_stroke_counts_second_span_as_insertion() {
        let truth = vec![(1.0, 3.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 1.8,
            },
            StrokeSpan {
                start: 2.2,
                end: 3.0,
            },
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.insertions, 1);
        assert_eq!(o.underfills, 1); // first span covers only 40%
    }
}
