//! Evaluation metrics: accuracy, FPR/FNR, confusion matrices, and the
//! segmentation insertion/underfill rates of the paper's Fig. 22.

use crate::segmentation::StrokeSpan;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A confusion matrix over string labels.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    counts: BTreeMap<(String, String), u64>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `(truth, predicted)` outcome.
    pub fn record(&mut self, truth: impl Into<String>, predicted: impl Into<String>) {
        *self
            .counts
            .entry((truth.into(), predicted.into()))
            .or_default() += 1;
    }

    /// Total recorded outcomes.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Correct predictions (diagonal).
    pub fn correct(&self) -> u64 {
        self.counts
            .iter()
            .filter(|((t, p), _)| t == p)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Overall accuracy; 0.0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Accuracy restricted to one ground-truth label.
    pub fn accuracy_for(&self, truth: &str) -> f64 {
        let total: u64 = self
            .counts
            .iter()
            .filter(|((t, _), _)| t == truth)
            .map(|(_, &c)| c)
            .sum();
        if total == 0 {
            return 0.0;
        }
        let correct = self
            .counts
            .get(&(truth.to_string(), truth.to_string()))
            .copied()
            .unwrap_or(0);
        correct as f64 / total as f64
    }

    /// All ground-truth labels seen.
    pub fn truth_labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.counts.keys().map(|(t, _)| t.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Count for a specific `(truth, predicted)` pair.
    pub fn count(&self, truth: &str, predicted: &str) -> u64 {
        self.counts
            .get(&(truth.to_string(), predicted.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// Merges another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for ((t, p), c) in &other.counts {
            *self.counts.entry((t.clone(), p.clone())).or_default() += c;
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix: {} outcomes, accuracy {:.3}",
            self.total(),
            self.accuracy()
        )?;
        for ((t, p), c) in &self.counts {
            if t != p {
                writeln!(f, "  {t} -> {p}: {c}")?;
            }
        }
        Ok(())
    }
}

/// Binary detection counters (for FPR / FNR experiments, Fig. 17/19).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionCounts {
    /// Motions present and correctly detected.
    pub true_positives: u64,
    /// Detections with no underlying motion (falsely detected).
    pub false_positives: u64,
    /// Motions present but missed or misidentified.
    pub false_negatives: u64,
    /// Quiet intervals correctly left undetected.
    pub true_negatives: u64,
}

impl DetectionCounts {
    /// False-positive rate: FP / (FP + TN); the paper's "percentage of
    /// falsely detected motions".
    pub fn fpr(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// False-negative rate: FN / (FN + TP); the paper's "percentage of
    /// undetected motions".
    pub fn fnr(&self) -> f64 {
        let denom = self.false_negatives + self.true_positives;
        if denom == 0 {
            0.0
        } else {
            self.false_negatives as f64 / denom as f64
        }
    }

    /// Adds another tally.
    pub fn merge(&mut self, other: &DetectionCounts) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.true_negatives += other.true_negatives;
    }
}

/// Matching of detected spans against ground-truth stroke intervals for one
/// session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentationOutcome {
    /// True strokes matched by a detected span.
    pub matched: usize,
    /// True strokes with no matching span.
    pub missed: usize,
    /// Detected spans overlapping no true stroke (insertions, typically in
    /// the repositioning period).
    pub insertions: usize,
    /// Matched strokes whose span covers less than the completeness
    /// threshold (underfills).
    pub underfills: usize,
    /// Ground-truth strokes in the session.
    pub truth_count: usize,
}

/// Fraction of a true stroke a span must cover to count as complete.
pub const UNDERFILL_COVERAGE: f64 = 0.75;

/// Minimum overlap fraction (of the *detected span*) with a true stroke to
/// count as a match rather than an insertion.
pub const MATCH_OVERLAP: f64 = 0.3;

/// Scores detected spans against ground-truth `(start, end)` strokes.
pub fn score_segmentation(detected: &[StrokeSpan], truth: &[(f64, f64)]) -> SegmentationOutcome {
    let mut outcome = SegmentationOutcome {
        truth_count: truth.len(),
        ..SegmentationOutcome::default()
    };
    let mut matched_truth = vec![false; truth.len()];

    for span in detected {
        // Best-overlapping true stroke.
        let mut best: Option<(usize, f64)> = None;
        for (i, &(ts, te)) in truth.iter().enumerate() {
            let overlap = span.overlap(&StrokeSpan { start: ts, end: te });
            if overlap > best.map(|(_, o)| o).unwrap_or(0.0) {
                best = Some((i, overlap));
            }
        }
        match best {
            Some((i, overlap)) if overlap >= MATCH_OVERLAP * span.duration().max(1e-9) => {
                if !matched_truth[i] {
                    matched_truth[i] = true;
                    outcome.matched += 1;
                    let (ts, te) = truth[i];
                    let coverage = overlap / (te - ts).max(1e-9);
                    if coverage < UNDERFILL_COVERAGE {
                        outcome.underfills += 1;
                    }
                }
                // A second span on an already-matched stroke is counted as
                // an insertion (the stroke was split).
                else {
                    outcome.insertions += 1;
                }
            }
            _ => outcome.insertions += 1,
        }
    }
    outcome.missed = matched_truth.iter().filter(|&&m| !m).count();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_accuracy() {
        let mut m = ConfusionMatrix::new();
        m.record("a", "a");
        m.record("a", "b");
        m.record("b", "b");
        m.record("b", "b");
        assert_eq!(m.total(), 4);
        assert_eq!(m.correct(), 3);
        assert!((m.accuracy() - 0.75).abs() < 1e-12);
        assert!((m.accuracy_for("a") - 0.5).abs() < 1e-12);
        assert_eq!(m.accuracy_for("b"), 1.0);
        assert_eq!(m.count("a", "b"), 1);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(ConfusionMatrix::new().accuracy(), 0.0);
    }

    #[test]
    fn matrix_merge() {
        let mut a = ConfusionMatrix::new();
        a.record("x", "x");
        let mut b = ConfusionMatrix::new();
        b.record("x", "y");
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert!((a.accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn detection_rates() {
        let c = DetectionCounts {
            true_positives: 90,
            false_positives: 5,
            false_negatives: 10,
            true_negatives: 95,
        };
        assert!((c.fpr() - 0.05).abs() < 1e-12);
        assert!((c.fnr() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn detection_rates_empty_denominators() {
        let c = DetectionCounts::default();
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
    }

    #[test]
    fn perfect_segmentation() {
        let truth = vec![(1.0, 2.0), (3.0, 4.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 2.0,
            },
            StrokeSpan {
                start: 3.0,
                end: 4.0,
            },
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 2);
        assert_eq!(o.missed, 0);
        assert_eq!(o.insertions, 0);
        assert_eq!(o.underfills, 0);
    }

    #[test]
    fn insertion_in_pause_detected() {
        let truth = vec![(1.0, 2.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 2.0,
            },
            StrokeSpan {
                start: 2.5,
                end: 2.9,
            }, // spurious, in the pause
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.insertions, 1);
    }

    #[test]
    fn underfill_detected() {
        let truth = vec![(1.0, 3.0)];
        let detected = vec![StrokeSpan {
            start: 1.0,
            end: 2.0,
        }]; // covers 50%
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.underfills, 1);
    }

    #[test]
    fn missed_stroke_counted() {
        let truth = vec![(1.0, 2.0), (3.0, 4.0)];
        let detected = vec![StrokeSpan {
            start: 1.0,
            end: 2.0,
        }];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.missed, 1);
    }

    #[test]
    fn split_stroke_counts_second_span_as_insertion() {
        let truth = vec![(1.0, 3.0)];
        let detected = vec![
            StrokeSpan {
                start: 1.0,
                end: 1.8,
            },
            StrokeSpan {
                start: 2.2,
                end: 3.0,
            },
        ];
        let o = score_segmentation(&detected, &truth);
        assert_eq!(o.matched, 1);
        assert_eq!(o.insertions, 1);
        assert_eq!(o.underfills, 1); // first span covers only 40%
    }
}
