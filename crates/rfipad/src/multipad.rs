//! Multiple pads on one reader — the paper's cost-efficiency claim.
//!
//! "An existing reader can monitor multiple RFIPads while performing its
//! regular applications such as identification and tracking" (§I). A
//! Speedway-class reader drives several antennas over coax; each antenna
//! watches one pad, and the same inventory stream also reports whatever
//! ordinary asset tags are in range. This module provides the dispatcher
//! that routes a mixed, multi-antenna report stream to per-pad recognizers
//! while passing unrelated tags through to the host application.

use crate::error::RfipadError;
use crate::pipeline::PipelineEvent;
use crate::recognizer::Recognizer;
use crate::stage::StageGraph;
use rfid_gen2::report::{TagId, TagReport};
use std::collections::HashMap;

/// An event from the multi-pad dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub enum PadEvent {
    /// A recognition event from one of the pads.
    Recognition {
        /// Which pad produced it.
        pad: PadHandle,
        /// The underlying pipeline event.
        event: PipelineEvent,
    },
    /// A read from a tag belonging to no pad — the reader's "regular
    /// application" traffic (asset identification, tracking…).
    Unassigned(TagReport),
}

/// Identifies one registered pad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PadHandle(pub usize);

/// Routes a mixed tag-report stream to per-pad stage graphs.
///
/// Routing is by tag id: each pad owns the tags of its layout. Reads from
/// tags owned by no pad surface as [`PadEvent::Unassigned`] so the host
/// application keeps its ordinary RFID functionality — the whole point of
/// the paper's "cost-efficient extension" framing. Each pad drives a
/// [`StageGraph`] directly, so recognitions are identical to running that
/// pad's share of the stream through its own [`crate::OnlinePipeline`].
#[derive(Debug)]
pub struct PadDispatcher {
    pads: Vec<StageGraph>,
    routing: HashMap<TagId, PadHandle>,
}

impl PadDispatcher {
    /// Creates an empty dispatcher.
    pub fn new() -> Self {
        Self {
            pads: Vec::new(),
            routing: HashMap::new(),
        }
    }

    /// Registers a pad: its recognizer plus the letter-gap the pipeline
    /// uses. Returns the pad's handle.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if the gap is invalid, or if
    /// any of the pad's tags is already owned by another pad.
    pub fn register(
        &mut self,
        recognizer: Recognizer,
        letter_gap_s: f64,
    ) -> Result<PadHandle, RfipadError> {
        let handle = PadHandle(self.pads.len());
        for &id in recognizer.layout().tags() {
            if self.routing.contains_key(&id) {
                return Err(RfipadError::InvalidConfig(format!(
                    "tag {id} already belongs to another pad"
                )));
            }
        }
        for &id in recognizer.layout().tags() {
            self.routing.insert(id, handle);
        }
        self.pads.push(
            StageGraph::builder()
                .recognizer(recognizer)
                .letter_gap_s(letter_gap_s)
                .build()?,
        );
        Ok(handle)
    }

    /// Number of registered pads.
    pub fn pad_count(&self) -> usize {
        self.pads.len()
    }

    /// Feeds one observation from the shared reader stream.
    pub fn push(&mut self, obs: TagReport) -> Vec<PadEvent> {
        match self.routing.get(&obs.tag) {
            Some(&handle) => self.pads[handle.0]
                .push(obs)
                .into_iter()
                .map(|event| PadEvent::Recognition { pad: handle, event })
                .collect(),
            None => vec![PadEvent::Unassigned(obs)],
        }
    }

    /// Flushes every pad's pipeline at end of stream.
    pub fn finish(&mut self) -> Vec<PadEvent> {
        self.pads
            .iter_mut()
            .enumerate()
            .flat_map(|(i, p)| {
                p.finish()
                    .into_iter()
                    .map(move |event| PadEvent::Recognition {
                        pad: PadHandle(i),
                        event,
                    })
            })
            .collect()
    }
}

impl Default for PadDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;

    fn obs(tag: u64, time: f64, phase: f64) -> TagReport {
        TagReport::synthetic(
            TagId(tag),
            time,
            phase.rem_euclid(std::f64::consts::TAU),
            -45.0,
        )
    }

    fn recognizer_for(ids: std::ops::Range<u64>) -> Recognizer {
        let layout = ArrayLayout::new(1, 3, ids.clone().map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| {
                ids.clone()
                    .enumerate()
                    .map(move |(i, id)| obs(id, j as f64 * 0.05 + i as f64 * 0.01, 1.0 + i as f64))
            })
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config).expect("cal");
        Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()
            .expect("valid")
    }

    #[test]
    fn routing_by_tag_ownership() {
        let mut d = PadDispatcher::new();
        let a = d.register(recognizer_for(0..3), 1.5).expect("pad A");
        let b = d.register(recognizer_for(10..13), 1.5).expect("pad B");
        assert_ne!(a, b);
        assert_eq!(d.pad_count(), 2);

        // A read from pad A's tag routes there (no events yet — static).
        assert!(d.push(obs(1, 0.0, 1.5)).is_empty());
        // A foreign tag passes through unassigned.
        let events = d.push(obs(99, 0.1, 2.0));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], PadEvent::Unassigned(o) if o.tag == TagId(99)));
    }

    #[test]
    fn overlapping_registration_rejected() {
        let mut d = PadDispatcher::new();
        d.register(recognizer_for(0..3), 1.5).expect("first");
        assert!(d.register(recognizer_for(2..5), 1.5).is_err());
        // The failed registration must not have claimed anything.
        assert_eq!(d.pad_count(), 1);
        let events = d.push(obs(4, 0.0, 1.0));
        assert!(matches!(events[0], PadEvent::Unassigned(_)));
    }

    #[test]
    fn invalid_gap_rejected() {
        let mut d = PadDispatcher::new();
        assert!(d.register(recognizer_for(0..3), 0.0).is_err());
    }

    #[test]
    fn finish_flushes_all_pads() {
        let mut d = PadDispatcher::new();
        d.register(recognizer_for(0..3), 1.5).expect("pad");
        // No activity — finish should produce nothing but not panic.
        assert!(d.finish().is_empty());
    }
}
