//! Word-level recognition — the paper's stated future work (§III-C2:
//! "recognition of a succession of letters").
//!
//! Letters arrive one at a time from the online pipeline (the hand leaving
//! the pad delimits letters); a [`WordDecoder`] accumulates them and, when
//! the word ends, optionally corrects the letter sequence against a
//! vocabulary by edit distance — the same trick every T9-era input method
//! used, and a natural fit here because the per-letter error patterns are
//! known to be confusions, insertions, or deletions.

use serde::{Deserialize, Serialize};

/// Levenshtein distance between two ASCII-uppercase words.
///
/// ```
/// use rfipad::words::edit_distance;
/// assert_eq!(edit_distance("GATE", "GATE"), 0);
/// assert_eq!(edit_distance("GATE", "GAZE"), 1);
/// assert_eq!(edit_distance("GATE", "LATE"), 1);
/// assert_eq!(edit_distance("", "ABC"), 3);
/// ```
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// A decoded word with its correction provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedWord {
    /// The raw letter sequence as recognized (`?` for unrecognized
    /// letters).
    pub raw: String,
    /// The vocabulary word chosen, if correction applied and succeeded.
    pub corrected: Option<String>,
    /// Edit distance between raw and corrected (0 when exact).
    pub distance: usize,
}

impl DecodedWord {
    /// The best available reading: corrected if present, else raw.
    pub fn text(&self) -> &str {
        self.corrected.as_deref().unwrap_or(&self.raw)
    }
}

/// Accumulates per-letter results into words and corrects them against a
/// vocabulary.
#[derive(Debug, Clone, Default)]
pub struct WordDecoder {
    vocabulary: Vec<String>,
    /// Maximum edit distance a correction may bridge (as a fraction of the
    /// word length, rounded up; minimum 1).
    max_distance_frac: f64,
    current: String,
}

impl WordDecoder {
    /// A decoder with no vocabulary (raw pass-through).
    pub fn new() -> Self {
        Self {
            vocabulary: Vec::new(),
            max_distance_frac: 0.34,
            current: String::new(),
        }
    }

    /// A decoder correcting against the given vocabulary (uppercased).
    pub fn with_vocabulary<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut decoder = Self::new();
        decoder.vocabulary = words
            .into_iter()
            .map(|w| w.as_ref().to_ascii_uppercase())
            .collect();
        decoder
    }

    /// The vocabulary in use.
    pub fn vocabulary(&self) -> &[String] {
        &self.vocabulary
    }

    /// Feeds one letter result from the recognizer (`None` = a letter was
    /// written but not recognized; it becomes a `?` wildcard).
    pub fn push_letter(&mut self, letter: Option<char>) {
        self.current.push(letter.unwrap_or('?'));
    }

    /// Letters accumulated so far in the open word.
    pub fn pending(&self) -> &str {
        &self.current
    }

    /// Ends the current word and decodes it.
    ///
    /// Returns `None` if no letters were accumulated.
    pub fn end_word(&mut self) -> Option<DecodedWord> {
        if self.current.is_empty() {
            return None;
        }
        let raw = std::mem::take(&mut self.current);
        let budget = ((raw.len() as f64 * self.max_distance_frac).ceil() as usize).max(1);
        let corrected = self
            .vocabulary
            .iter()
            .map(|w| (w, distance_with_wildcards(&raw, w)))
            .filter(|&(_, d)| d <= budget)
            .min_by_key(|&(w, d)| (d, w.len().abs_diff(raw.len())))
            .map(|(w, d)| (w.clone(), d));
        match corrected {
            Some((word, distance)) => Some(DecodedWord {
                raw,
                corrected: Some(word),
                distance,
            }),
            None => Some(DecodedWord {
                raw,
                corrected: None,
                distance: 0,
            }),
        }
    }
}

/// Edit distance where `?` in `raw` matches any single character for free
/// (an unrecognized letter is unknown, not wrong).
fn distance_with_wildcards(raw: &str, word: &str) -> usize {
    let a: Vec<char> = raw.chars().collect();
    let b: Vec<char> = word.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != '?' && ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vocab() -> WordDecoder {
        WordDecoder::with_vocabulary(["GATE", "HELP", "TAXI", "EXIT", "INFO", "KLM"])
    }

    #[test]
    fn exact_word_passes_through() {
        let mut d = vocab();
        for c in "GATE".chars() {
            d.push_letter(Some(c));
        }
        let w = d.end_word().expect("word");
        assert_eq!(w.text(), "GATE");
        assert_eq!(w.distance, 0);
    }

    #[test]
    fn single_confusion_corrected() {
        let mut d = vocab();
        for c in "GAZE".chars() {
            d.push_letter(Some(c)); // T misread as Z
        }
        let w = d.end_word().expect("word");
        assert_eq!(w.corrected.as_deref(), Some("GATE"));
        assert_eq!(w.distance, 1);
    }

    #[test]
    fn unrecognized_letter_is_wildcard() {
        let mut d = vocab();
        d.push_letter(Some('E'));
        d.push_letter(None); // missed letter
        d.push_letter(Some('I'));
        d.push_letter(Some('T'));
        let w = d.end_word().expect("word");
        assert_eq!(w.raw, "E?IT");
        assert_eq!(w.corrected.as_deref(), Some("EXIT"));
    }

    #[test]
    fn hopeless_garble_stays_raw() {
        let mut d = vocab();
        for c in "QQQQQQ".chars() {
            d.push_letter(Some(c));
        }
        let w = d.end_word().expect("word");
        assert_eq!(w.corrected, None);
        assert_eq!(w.text(), "QQQQQQ");
    }

    #[test]
    fn empty_word_is_none() {
        let mut d = vocab();
        assert!(d.end_word().is_none());
    }

    #[test]
    fn words_are_independent() {
        let mut d = vocab();
        for c in "KLM".chars() {
            d.push_letter(Some(c));
        }
        assert_eq!(d.end_word().unwrap().text(), "KLM");
        assert_eq!(d.pending(), "");
        for c in "HELP".chars() {
            d.push_letter(Some(c));
        }
        assert_eq!(d.end_word().unwrap().text(), "HELP");
    }

    #[test]
    fn no_vocabulary_means_raw() {
        let mut d = WordDecoder::new();
        for c in "ABC".chars() {
            d.push_letter(Some(c));
        }
        let w = d.end_word().expect("word");
        assert_eq!(w.corrected, None);
        assert_eq!(w.text(), "ABC");
    }

    #[test]
    fn prefers_closer_then_same_length() {
        let d = WordDecoder::with_vocabulary(["CAT", "CATS"]);
        let mut d2 = d.clone();
        for c in "CAT".chars() {
            d2.push_letter(Some(c));
        }
        assert_eq!(d2.end_word().unwrap().text(), "CAT");
    }

    #[test]
    fn edit_distance_symmetry_and_bounds() {
        for (a, b) in [("GATE", "LATE"), ("", "X"), ("ABCD", "DCBA")] {
            assert_eq!(edit_distance(a, b), edit_distance(b, a));
            assert!(edit_distance(a, b) <= a.len().max(b.len()));
        }
    }
}
