//! The logical tag-array layout: tag ids ↔ grid positions.

use crate::error::RfipadError;
use crate::tagmap::TagIdMap;
use rfid_gen2::report::TagId;
use serde::{Deserialize, Serialize};

/// The recognizer's view of the tag plate: which tag sits at which grid
/// cell. Purely logical (ids and grid positions only) so the pipeline can
/// run from recorded LLRP streams without a simulator present; deployments
/// that do simulate build one from the physical array's row-major ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayLayout {
    rows: usize,
    cols: usize,
    cells: Vec<TagId>,
    index: TagIdMap<TagId, (usize, usize)>,
}

impl ArrayLayout {
    /// Builds a layout from row-major tag ids.
    ///
    /// # Panics
    ///
    /// Panics if dimensions are zero, `cells.len() != rows * cols`, or a tag
    /// id repeats.
    pub fn new(rows: usize, cols: usize, cells: Vec<TagId>) -> Self {
        assert!(rows > 0 && cols > 0, "layout dimensions must be nonzero");
        assert_eq!(cells.len(), rows * cols, "cell count mismatch");
        let mut index = TagIdMap::default();
        index.reserve(cells.len());
        for (i, &id) in cells.iter().enumerate() {
            let prev = index.insert(id, (i / cols, i % cols));
            assert!(prev.is_none(), "duplicate tag id {id}");
        }
        Self {
            rows,
            cols,
            cells,
            index,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total tag count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the layout is empty (never true — construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// All tag ids, row-major.
    pub fn tags(&self) -> &[TagId] {
        &self.cells
    }

    /// Grid position of a tag.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::UnknownTag`] for ids outside the layout.
    pub fn position(&self, id: TagId) -> Result<(usize, usize), RfipadError> {
        self.index
            .get(&id)
            .copied()
            .ok_or(RfipadError::UnknownTag(id))
    }

    /// The tag at a grid cell.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn at(&self, row: usize, col: usize) -> TagId {
        assert!(row < self.rows && col < self.cols, "cell out of bounds");
        self.cells[row * self.cols + col]
    }

    /// Whether the layout contains a tag.
    pub fn contains(&self, id: TagId) -> bool {
        self.index.contains_key(&id)
    }

    /// Row-major index of a tag — its position in [`tags`](Self::tags) and
    /// thus its stream index in `TagStreams::phase_series` order. `None`
    /// for ids outside the layout.
    pub fn stream_index(&self, id: TagId) -> Option<usize> {
        self.index.get(&id).map(|&(r, c)| r * self.cols + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(2, 3, (0..6).map(TagId).collect())
    }

    #[test]
    fn positions_row_major() {
        let l = layout();
        assert_eq!(l.position(TagId(0)).unwrap(), (0, 0));
        assert_eq!(l.position(TagId(4)).unwrap(), (1, 1));
        assert_eq!(l.at(1, 2), TagId(5));
    }

    #[test]
    fn stream_index_matches_tags_order() {
        let l = layout();
        for (i, &id) in l.tags().iter().enumerate() {
            assert_eq!(l.stream_index(id), Some(i));
        }
        assert_eq!(l.stream_index(TagId(99)), None);
    }

    #[test]
    fn unknown_tag_errors() {
        let l = layout();
        assert_eq!(
            l.position(TagId(99)),
            Err(RfipadError::UnknownTag(TagId(99)))
        );
        assert!(!l.contains(TagId(99)));
    }

    #[test]
    #[should_panic(expected = "duplicate tag id")]
    fn duplicate_ids_rejected() {
        ArrayLayout::new(1, 2, vec![TagId(1), TagId(1)]);
    }

    #[test]
    fn len_and_emptiness() {
        let l = layout();
        assert_eq!(l.len(), 6);
        assert!(!l.is_empty());
    }
}
