//! The typed stage graph behind [`crate::OnlinePipeline`].
//!
//! The paper's online cascade (§V-D) has five distinct steps — buffering
//! and incremental framing, RMS segmentation, motion classification,
//! letter assembly, and grammar deduction. This module reifies each step
//! as a [`Stage`] with a typed input and output, and composes them with a
//! [`StageGraph`] that owns ordering, the out-of-order report policy, and
//! per-stage instrumentation (the `rfipad_stage_push_seconds{stage=...}`
//! histograms).
//!
//! Splitting the cascade buys two things the monolithic pipeline could
//! not offer:
//!
//! * **Checkpoint/restore.** Every stage can [`Stage::snapshot`] its
//!   mutable state into a versioned, hand-rolled-JSON [`StageState`];
//!   [`StageGraph::checkpoint`] bundles them into a
//!   [`PipelineCheckpoint`] that [`StageGraph::restore_checkpoint`]
//!   replays into a freshly built graph. A restored graph produces the
//!   same remaining events, bit for bit, as the uninterrupted run —
//!   the property [`crate::engine::Engine::restore_session`] uses to
//!   migrate evicted sessions between processes.
//! * **Direct drive.** Batch-oriented callers (the engine workers,
//!   `multipad`, the experiment trials) consume the graph directly
//!   instead of private framing/segmentation glue.
//!
//! Floats in checkpoints are persisted as IEEE-754 bit patterns
//! (`f64::to_bits`), never decimal, so a snapshot/restore round trip is
//! exact; the codec rejects unknown fields and versions it does not
//! understand with [`RfipadError::Checkpoint`].

use crate::error::RfipadError;
use crate::metrics::split_top_level;
use crate::pipeline::{OutOfOrderPolicy, PipelineEvent};
use crate::recognizer::{RecognizedStroke, Recognizer};
use crate::segmentation::StrokeSpan;
use crate::streams::{TagStreams, TagStreamsBuilder};
use hand_kinematics::stroke::{Stroke, StrokeShape};
use rfid_gen2::epc::Epc96;
use rfid_gen2::report::{TagId, TagReport};
use sigproc::frames::{FrameBuilder, FrameSeq};
use sigproc::grid::BinaryGrid;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on how much history the framing stage keeps (seconds). A
/// kiosk runs for days; without a bound, a long quiet spell would grow
/// the buffer without limit. The bound comfortably exceeds any letter's
/// duration plus the letter gap.
pub(crate) const MAX_BUFFER_S: f64 = 30.0;

/// One step of the online recognition cascade.
///
/// A stage consumes typed inputs, appends typed outputs, and can
/// serialize its mutable state for session migration. Stages are wired
/// together by a [`StageGraph`], which also times every push into the
/// `rfipad_stage_push_seconds{stage=...}` histogram family.
pub trait Stage {
    /// The input consumed by [`Stage::push`].
    type In;
    /// The output appended by [`Stage::push`] and [`Stage::flush`].
    type Out;

    /// Stable stage name, used as the metric label and to address the
    /// stage's [`StageState`] inside a [`PipelineCheckpoint`].
    fn name(&self) -> &'static str;

    /// Consumes one input, appending any outputs it triggers.
    fn push(&mut self, input: Self::In, out: &mut Vec<Self::Out>);

    /// Flushes end-of-input state (most stages are driven entirely by
    /// their inputs and have nothing to flush).
    fn flush(&mut self, out: &mut Vec<Self::Out>) {
        let _ = out;
    }

    /// Serializes the stage's mutable state.
    fn snapshot(&self) -> StageState;

    /// Restores state captured by [`Stage::snapshot`] on an identically
    /// configured stage.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::Checkpoint`] if the state belongs to a
    /// different stage, fails to parse, or fails its integrity checks.
    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError>;
}

/// A serialized stage snapshot: the owning stage's name plus its state
/// as a hand-rolled JSON object (the same convention as
/// [`crate::metrics::ConfusionMatrix`] — no serde in the persistence
/// path).
#[derive(Debug, Clone, PartialEq)]
pub struct StageState {
    stage: String,
    state: String,
}

impl StageState {
    /// Wraps a stage name and its JSON state object.
    pub fn new(stage: impl Into<String>, state: impl Into<String>) -> Self {
        Self {
            stage: stage.into(),
            state: state.into(),
        }
    }

    /// The stage this state belongs to.
    pub fn stage(&self) -> &str {
        &self.stage
    }

    /// The stage's state as a JSON object string.
    pub fn state(&self) -> &str {
        &self.state
    }
}

/// Output of [`Framing`]: one processing tick over the buffered history.
#[derive(Debug)]
pub struct FrameTick {
    /// Simulated time of the tick (the newest report's clamped time, or
    /// the flush horizon).
    pub now: f64,
    /// Wall-clock start of the tick, for response-time accounting.
    pub started: Instant,
    /// Per-frame RMS scores over the buffered history.
    pub frames: FrameSeq,
    /// Snapshot of the calibrated streams at this tick. Shared with the
    /// framing stage's incremental builder; dropping the tick after the
    /// cascade keeps later pushes copy-free.
    pub streams: Arc<TagStreams>,
}

/// Output of [`Segmentation`]: the spans newly confirmed at one tick.
#[derive(Debug)]
pub struct SpanBatch {
    /// Simulated time of the tick.
    pub now: f64,
    /// Wall-clock start of the tick.
    pub started: Instant,
    /// Stream snapshot the spans were segmented from.
    pub streams: Arc<TagStreams>,
    /// Spans whose end is silence-confirmed and that were not reported
    /// before (already deduplicated).
    pub spans: Vec<StrokeSpan>,
    /// End of the latest active frame, or `NEG_INFINITY` when no frame
    /// is active — a stroke in progress holds the letter open.
    pub last_activity: f64,
}

/// Output of [`Motion`]: the recognized strokes of one tick.
#[derive(Debug)]
pub struct StrokeBatch {
    /// Simulated time of the tick.
    pub now: f64,
    /// End of the latest active frame at the tick.
    pub last_activity: f64,
    /// Recognized strokes with their wall-clock response times.
    pub strokes: Vec<(RecognizedStroke, f64)>,
}

/// Output of [`LetterRecognition`]: pass-through strokes and letter
/// closes, in emission order.
#[derive(Debug)]
pub enum LetterOut {
    /// A recognized stroke to report immediately.
    Stroke {
        /// The recognized stroke.
        stroke: RecognizedStroke,
        /// Wall-clock compute time spent producing it, seconds.
        response_time_s: f64,
    },
    /// An idle gap closed the letter.
    Close {
        /// The strokes composing the letter, in detection order.
        strokes: Vec<RecognizedStroke>,
        /// End time of the letter's last stroke; history at or before
        /// this point is dead and the graph trims it.
        letter_end: f64,
    },
}

/// Incrementally maintained view of the buffered reports: calibrated
/// per-tag streams plus the per-frame RMS accumulators over them. Kept
/// in step with [`Framing`]'s buffer on every push and *dropped*
/// whenever the buffer is trimmed — a rebuild from a shorter history
/// legitimately re-picks unwrap state and the Eq. 8 re-centring offsets
/// at the new first sample, so patching the cache in place would
/// diverge from a from-scratch build.
#[derive(Debug, Default)]
struct StreamCache {
    streams: TagStreamsBuilder,
    /// Created at the first in-layout report; that report's time anchors
    /// frame 0, matching the batch build's `streams.start()`.
    frames: Option<FrameBuilder>,
    /// A retired frame builder kept for its allocations: the next rebuild
    /// re-anchors it instead of constructing a fresh one.
    spare: Option<FrameBuilder>,
}

impl StreamCache {
    /// Empties the cache while keeping its allocations (stream series,
    /// frame accumulators) for the next rebuild.
    fn reset(&mut self) {
        self.streams.clear();
        if let Some(frames) = self.frames.take() {
            self.spare = Some(frames);
        }
    }
}

/// Appends one (already clamped) report to the cache, mirroring what a
/// batch rebuild over the buffer would accumulate for it.
fn cache_append(
    cache: &mut StreamCache,
    recognizer: &Recognizer,
    noise_floors: &[f64],
    obs: &TagReport,
) {
    let layout = recognizer.layout();
    if let Some((tag, t, v)) = cache
        .streams
        .push(layout, Some(recognizer.calibration()), obs)
    {
        let frames = match &mut cache.frames {
            Some(frames) => frames,
            frames @ None => frames.insert(match cache.spare.take() {
                // A retired builder carries the right stream count,
                // floors, and frame length; only the anchor moves.
                Some(mut spare) => {
                    spare.reset_anchor(t);
                    spare
                }
                None => FrameBuilder::new(
                    layout.len(),
                    Some(noise_floors.to_vec()),
                    t,
                    recognizer.config().frame_len_s,
                ),
            }),
        };
        let idx = layout.stream_index(tag).expect("accepted tag in layout");
        frames.push(idx, t, v);
    }
}

/// Stage 1: report buffering, incremental stream/frame maintenance, and
/// the once-per-frame tick cut (§III-A plus the retention policy).
///
/// Owns the raw report history. Emits a [`FrameTick`] at most once per
/// frame length; [`Stage::flush`] emits one final tick at a horizon far
/// enough past the last report to confirm and close everything pending.
#[derive(Debug)]
pub struct Framing {
    recognizer: Arc<Recognizer>,
    /// Per-stream noise floors in layout order (static per calibration).
    noise_floors: Vec<f64>,
    letter_gap_s: f64,
    end_guard_s: f64,
    buffer: Vec<TagReport>,
    /// Incremental streams + frames over `buffer`; `None` after a trim
    /// until the next tick rebuilds it.
    cache: Option<StreamCache>,
    /// An invalidated cache kept for its allocations; the next rebuild
    /// starts from it instead of a fresh [`StreamCache`].
    spare_cache: Option<StreamCache>,
    /// A consumed tick's frame sequence handed back by the graph; the
    /// next tick builds into it instead of allocating.
    spare_frames: Option<FrameSeq>,
    last_processed: f64,
    /// Start of the oldest pending stroke (set by the graph before each
    /// push): retention never cuts into an unclosed letter's history.
    hold_from: Option<f64>,
    /// Cut point of a retention trim this push, for the graph to forward
    /// to [`Segmentation::trim_reported`].
    pending_trim: Option<f64>,
}

impl Framing {
    /// Creates the stage. `end_guard_s` is the silence that confirms a
    /// stroke's end; `letter_gap_s` the idle time that closes a letter.
    pub fn new(recognizer: Arc<Recognizer>, letter_gap_s: f64, end_guard_s: f64) -> Self {
        let noise_floors = recognizer.noise_floors();
        Self {
            recognizer,
            noise_floors,
            letter_gap_s,
            end_guard_s,
            buffer: Vec::new(),
            cache: None,
            spare_cache: None,
            spare_frames: None,
            last_processed: f64::NEG_INFINITY,
            hold_from: None,
            pending_trim: None,
        }
    }

    /// Anchors retention: history from 1 s before `anchor` survives even
    /// past the rolling window, so a pending letter's evidence is never
    /// trimmed away.
    pub fn set_hold_anchor(&mut self, anchor: Option<f64>) {
        self.hold_from = anchor;
    }

    /// Takes the cut point of a retention trim performed by the latest
    /// push, if any. The graph forwards it downstream so span-dedup
    /// entries older than the retained history are dropped too.
    pub fn take_trim(&mut self) -> Option<f64> {
        self.pending_trim.take()
    }

    /// Drops history at or before `letter_end` after a letter closed.
    /// The shortened history re-anchors stream centring, so the
    /// incremental cache is dropped with it and rebuilt at the next
    /// tick.
    pub fn trim_after_letter(&mut self, letter_end: f64) {
        self.buffer.retain(|o| o.time > letter_end);
        self.invalidate_cache();
    }

    /// Drops the incremental cache, parking it (emptied) as the spare so
    /// the rebuild reuses its allocations.
    fn invalidate_cache(&mut self) {
        if let Some(mut cache) = self.cache.take() {
            cache.reset();
            self.spare_cache = Some(cache);
        }
    }

    /// Hands a consumed tick's frame sequence back for reuse by the next
    /// tick.
    pub(crate) fn recycle_frames(&mut self, frames: FrameSeq) {
        self.spare_frames = Some(frames);
    }

    /// Rebuilds the incremental cache from the buffer if a trim dropped
    /// it, reusing the retired cache's allocations when one is parked.
    fn ensure_cache(&mut self) {
        if self.cache.is_some() {
            return;
        }
        let mut cache = self.spare_cache.take().unwrap_or_default();
        for obs in &self.buffer {
            cache_append(&mut cache, &self.recognizer, &self.noise_floors, obs);
        }
        self.cache = Some(cache);
    }

    /// Cuts one processing tick at `now`: finalized frames plus a shared
    /// stream snapshot. The stage histogram times the tick (the cache
    /// rebuild + frame cut), not the per-report append — the cheap
    /// steady-state push must not pay for two clock reads per report, and
    /// even the tick timer rides the head sampler to stay inside the
    /// telemetry overhead budget.
    fn tick(&mut self, now: f64, out: &mut Vec<FrameTick>) {
        let _span = crate::telemetry::stage_metrics()
            .framing
            .start_span_if(obs::trace::sampler().sample());
        let started = Instant::now();
        self.ensure_cache();
        let mut frames = self.spare_frames.take().unwrap_or_default();
        let cache = self.cache.as_mut().expect("ensured above");
        match (&mut cache.frames, cache.streams.streams().end()) {
            (Some(builder), Some(end)) => builder.build_into(end, &mut frames),
            _ => frames.clear(),
        }
        out.push(FrameTick {
            now,
            started,
            frames,
            streams: cache.streams.shared_streams(),
        });
    }
}

impl Stage for Framing {
    type In = TagReport;
    type Out = FrameTick;

    fn name(&self) -> &'static str {
        "framing"
    }

    fn push(&mut self, obs: TagReport, out: &mut Vec<FrameTick>) {
        let now = obs.time;
        self.buffer.push(obs);
        // Keep the incremental cache in step with the buffer. A cache
        // dropped by a trim is rebuilt lazily at the next tick.
        if let Some(cache) = self.cache.as_mut() {
            cache_append(cache, &self.recognizer, &self.noise_floors, &obs);
        }
        // Bound the history: drop everything older than the retention
        // window, but never cut into a pending (unclosed) letter.
        let keep_from = self
            .hold_from
            .map(|s| s - 1.0)
            .unwrap_or(f64::INFINITY)
            .min(now - MAX_BUFFER_S);
        if self
            .buffer
            .first()
            .map(|o| o.time < keep_from - 5.0)
            .unwrap_or(false)
        {
            self.buffer.retain(|o| o.time >= keep_from);
            self.pending_trim = Some(keep_from);
            self.invalidate_cache();
        }
        // Re-evaluate once per frame, not per read.
        if now - self.last_processed < self.recognizer.config().frame_len_s {
            return;
        }
        self.last_processed = now;
        self.tick(now, out);
    }

    fn flush(&mut self, out: &mut Vec<FrameTick>) {
        // A horizon far enough past the last report that every span is
        // confirmed and any pending letter's idle gap has elapsed.
        let now = self
            .buffer
            .last()
            .map(|o| o.time + self.letter_gap_s + self.end_guard_s)
            .unwrap_or(0.0);
        self.tick(now, out);
    }

    fn snapshot(&self) -> StageState {
        let buffer: Vec<String> = self.buffer.iter().map(report_to_json).collect();
        // Diagnostics of the live frame accumulator, if one exists: the
        // restore path rebuilds it from the buffer (deterministic, per
        // the cache-matches-rebuild invariant) and verifies these bits.
        let frames = self
            .cache
            .as_ref()
            .and_then(|c| c.frames.as_ref())
            .map(|f| {
                format!(
                    "{{\"anchor_bits\":{},\"frame_len_bits\":{},\"max_time_bits\":{}}}",
                    f.start().to_bits(),
                    f.frame_len().to_bits(),
                    f.max_time().to_bits()
                )
            })
            .unwrap_or_else(|| "null".into());
        StageState::new(
            self.name(),
            format!(
                "{{\"last_processed_bits\":{},\"buffer\":[{}],\"frames\":{}}}",
                self.last_processed.to_bits(),
                buffer.join(","),
                frames
            ),
        )
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        let mut last_processed = None;
        let mut buffer = None;
        let mut frames_diag = None;
        for (key, value) in parse_fields(object_body(state.state())?)? {
            match key.as_str() {
                "last_processed_bits" => last_processed = Some(parse_bits(value)?),
                "buffer" => {
                    let mut reports = Vec::new();
                    for item in array_items(value)? {
                        reports.push(report_from_json(item)?);
                    }
                    buffer = Some(reports);
                }
                "frames" => frames_diag = Some(frame_diag_from_json(value)?),
                other => return Err(checkpoint_err(format!("unknown framing field {other:?}"))),
            }
        }
        self.last_processed =
            last_processed.ok_or_else(|| checkpoint_err("framing state lacks last_processed"))?;
        self.buffer = buffer.ok_or_else(|| checkpoint_err("framing state lacks buffer"))?;
        self.invalidate_cache();
        self.hold_from = None;
        self.pending_trim = None;
        let diag = frames_diag.ok_or_else(|| checkpoint_err("framing state lacks frames"))?;
        if let Some((anchor, frame_len, max_time)) = diag {
            // Rebuild the accumulator the next tick would build anyway
            // and verify it against the checkpointed diagnostics — a
            // cheap integrity check that the buffer round-tripped bit
            // for bit.
            self.ensure_cache();
            let frames = self
                .cache
                .as_ref()
                .and_then(|c| c.frames.as_ref())
                .ok_or_else(|| {
                    checkpoint_err("checkpointed frame accumulator cannot be rebuilt from buffer")
                })?;
            if frames.start().to_bits() != anchor
                || frames.frame_len().to_bits() != frame_len
                || frames.max_time().to_bits() != max_time
            {
                return Err(checkpoint_err(
                    "rebuilt frame accumulator diverges from the checkpoint",
                ));
            }
        }
        Ok(())
    }
}

/// Stage 2: stroke segmentation over each frame tick (Eq. 11–12), plus
/// span deduplication across ticks.
///
/// Re-segmenting the whole buffered window every tick re-discovers old
/// spans; `reported_spans` remembers what was already handed downstream
/// (by span start, ±0.25 s) so each stroke is reported exactly once.
#[derive(Debug)]
pub struct Segmentation {
    recognizer: Arc<Recognizer>,
    end_guard_s: f64,
    /// Spans already reported (by their start time), kept sorted.
    reported_spans: Vec<f64>,
    /// The most recent full segmentation, for diagnostics and the
    /// experiment trials' per-session outcome scoring. Doubles as the
    /// reusable output buffer: each tick takes it, re-scores into it, and
    /// puts it back, so steady-state scoring allocates nothing.
    last: Option<crate::segmentation::Segmentation>,
    /// Reusable intermediate buffers for the scoring kernels.
    scratch: sigproc::kernel::Scratch,
    /// The consumed tick's frame sequence, for the graph to hand back to
    /// [`Framing::recycle_frames`].
    spare_frames: Option<FrameSeq>,
}

impl Segmentation {
    /// Creates the stage. `end_guard_s` is the silence that confirms a
    /// span has ended.
    pub fn new(recognizer: Arc<Recognizer>, end_guard_s: f64) -> Self {
        Self {
            recognizer,
            end_guard_s,
            reported_spans: Vec::new(),
            last: None,
            scratch: sigproc::kernel::Scratch::new(),
            spare_frames: None,
        }
    }

    /// Takes the frame sequence consumed by the latest tick, if any, so
    /// its allocation can be recycled upstream.
    pub(crate) fn take_spare_frames(&mut self) -> Option<FrameSeq> {
        self.spare_frames.take()
    }

    /// The most recent full segmentation (spans, frame scores, and the
    /// threshold), if a tick has run.
    pub fn last_segmentation(&self) -> Option<&crate::segmentation::Segmentation> {
        self.last.as_ref()
    }

    /// Drops dedup entries older than the retained history; spans there
    /// can never re-segment, so they are dead weight.
    pub fn trim_reported(&mut self, keep_from: f64) {
        self.reported_spans.retain(|&s| s >= keep_from);
    }

    /// Forgets all dedup entries (a letter close trims the history they
    /// guard).
    pub fn clear_reported(&mut self) {
        self.reported_spans.clear();
    }

    /// Whether a span starting at `start` was already reported, within
    /// the ±0.25 s dedup tolerance. `reported_spans` is sorted, so this
    /// is a binary search plus a scan bounded by the tolerance window.
    fn already_reported(&self, start: f64) -> bool {
        let lo = self.reported_spans.partition_point(|&s| s < start - 0.25);
        self.reported_spans[lo..]
            .iter()
            .take_while(|&&s| s < start + 0.25)
            .any(|&s| (s - start).abs() < 0.25)
    }

    /// Records a reported span start, keeping `reported_spans` sorted.
    fn mark_reported(&mut self, start: f64) {
        let at = self.reported_spans.partition_point(|&s| s < start);
        self.reported_spans.insert(at, start);
    }
}

impl Stage for Segmentation {
    type In = FrameTick;
    type Out = SpanBatch;

    fn name(&self) -> &'static str {
        "segmentation"
    }

    fn push(&mut self, tick: FrameTick, out: &mut Vec<SpanBatch>) {
        let FrameTick {
            now,
            started,
            frames,
            streams,
        } = tick;
        // Re-score into the previous tick's segmentation (its spans and
        // frame-score vectors are exactly the right size next tick too).
        let mut segmentation = self.last.take().unwrap_or_default();
        self.recognizer
            .segment_frames_into(&frames, &mut self.scratch, &mut segmentation);
        self.spare_frames = Some(frames);
        let mut spans = Vec::new();
        for &span in &segmentation.spans {
            let confirmed = now - span.end >= self.end_guard_s;
            if confirmed && !self.already_reported(span.start) {
                self.mark_reported(span.start);
                spans.push(span);
            }
        }
        // The idle gap that closes a letter is measured from the latest
        // *activity* — a stroke in progress (active frames not yet
        // confirmed as a span) holds the letter open.
        let last_activity = segmentation
            .frames
            .iter()
            .rev()
            .find(|f| f.active)
            .map(|f| f.time + self.recognizer.config().frame_len_s)
            .unwrap_or(f64::NEG_INFINITY);
        self.last = Some(segmentation);
        // Emitted even with no new spans: the letter stage needs every
        // tick's clock and activity to decide the close.
        out.push(SpanBatch {
            now,
            started,
            streams,
            spans,
            last_activity,
        });
    }

    fn snapshot(&self) -> StageState {
        let spans: Vec<String> = self
            .reported_spans
            .iter()
            .map(|s| s.to_bits().to_string())
            .collect();
        StageState::new(
            self.name(),
            format!("{{\"reported_spans_bits\":[{}]}}", spans.join(",")),
        )
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        let mut reported = None;
        for (key, value) in parse_fields(object_body(state.state())?)? {
            match key.as_str() {
                "reported_spans_bits" => {
                    let mut spans = Vec::new();
                    for item in array_items(value)? {
                        spans.push(parse_bits(item)?);
                    }
                    reported = Some(spans);
                }
                other => {
                    return Err(checkpoint_err(format!(
                        "unknown segmentation field {other:?}"
                    )))
                }
            }
        }
        self.reported_spans =
            reported.ok_or_else(|| checkpoint_err("segmentation state lacks reported spans"))?;
        // The last segmentation is diagnostic only; it reappears at the
        // first tick after restore.
        self.last = None;
        Ok(())
    }
}

/// Stage 3: motion classification of confirmed spans (§III-C2).
///
/// Stateless: every confirmed span either becomes a recognized stroke or
/// is rejected (counted and logged, never retried — the span was already
/// marked reported upstream).
#[derive(Debug)]
pub struct Motion {
    recognizer: Arc<Recognizer>,
}

impl Motion {
    /// Creates the stage.
    pub fn new(recognizer: Arc<Recognizer>) -> Self {
        Self { recognizer }
    }
}

impl Stage for Motion {
    type In = SpanBatch;
    type Out = StrokeBatch;

    fn name(&self) -> &'static str {
        "motion"
    }

    fn push(&mut self, batch: SpanBatch, out: &mut Vec<StrokeBatch>) {
        let metrics = crate::telemetry::stage_metrics();
        let mut strokes = Vec::new();
        for &span in &batch.spans {
            let stroke_t0 = Instant::now();
            match self.recognizer.recognize_span(&batch.streams, span) {
                Some(stroke) => {
                    metrics.strokes.inc();
                    let response_time_s =
                        stroke_t0.elapsed().as_secs_f64() + batch.started.elapsed().as_secs_f64();
                    strokes.push((stroke, response_time_s));
                }
                None => {
                    metrics.rejected_spans.inc();
                    obs::debug!(
                        "rejected unclassifiable span";
                        start = format!("{:.2}", span.start),
                        end = format!("{:.2}", span.end)
                    );
                }
            }
        }
        out.push(StrokeBatch {
            now: batch.now,
            last_activity: batch.last_activity,
            strokes,
        });
    }

    fn snapshot(&self) -> StageState {
        StageState::new(self.name(), "{}")
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        expect_empty_state(state)
    }
}

/// Stage 4: letter assembly — buffers recognized strokes and closes the
/// letter once the writer stays idle for the configured gap.
#[derive(Debug)]
pub struct LetterRecognition {
    /// Simulated seconds of silence that close a letter.
    letter_gap_s: f64,
    pending: Vec<RecognizedStroke>,
}

impl LetterRecognition {
    /// Creates the stage.
    pub fn new(letter_gap_s: f64) -> Self {
        Self {
            letter_gap_s,
            pending: Vec::new(),
        }
    }

    /// Start of the oldest pending stroke: the retention anchor the
    /// graph feeds back to [`Framing::set_hold_anchor`].
    pub fn hold_anchor(&self) -> Option<f64> {
        self.pending.first().map(|s| s.span.start)
    }
}

impl Stage for LetterRecognition {
    type In = StrokeBatch;
    type Out = LetterOut;

    fn name(&self) -> &'static str {
        "letter"
    }

    fn push(&mut self, batch: StrokeBatch, out: &mut Vec<LetterOut>) {
        for (stroke, response_time_s) in batch.strokes {
            self.pending.push(stroke.clone());
            out.push(LetterOut::Stroke {
                stroke,
                response_time_s,
            });
        }
        if let Some(last) = self.pending.last() {
            let idle_anchor = last.span.end.max(batch.last_activity);
            if batch.now - idle_anchor >= self.letter_gap_s {
                let strokes = std::mem::take(&mut self.pending);
                let letter_end = strokes.last().map(|s| s.span.end).unwrap_or(batch.now);
                out.push(LetterOut::Close {
                    strokes,
                    letter_end,
                });
            }
        }
    }

    fn snapshot(&self) -> StageState {
        let pending: Vec<String> = self.pending.iter().map(stroke_to_json).collect();
        StageState::new(
            self.name(),
            format!("{{\"pending\":[{}]}}", pending.join(",")),
        )
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        let mut pending = None;
        for (key, value) in parse_fields(object_body(state.state())?)? {
            match key.as_str() {
                "pending" => {
                    let mut strokes = Vec::new();
                    for item in array_items(value)? {
                        strokes.push(stroke_from_json(item)?);
                    }
                    pending = Some(strokes);
                }
                other => return Err(checkpoint_err(format!("unknown letter field {other:?}"))),
            }
        }
        self.pending = pending.ok_or_else(|| checkpoint_err("letter state lacks pending"))?;
        Ok(())
    }
}

/// Stage 5: grammar deduction and event emission (§III-D).
///
/// Stateless: strokes pass through as [`PipelineEvent::StrokeDetected`];
/// a close runs the fuzzy grammar over the composed strokes and emits
/// [`PipelineEvent::LetterRecognized`].
#[derive(Debug)]
pub struct Grammar {
    recognizer: Arc<Recognizer>,
    end_guard_s: f64,
}

impl Grammar {
    /// Creates the stage. `end_guard_s` becomes each stroke event's
    /// `decision_delay_s` (the silence that confirmed it).
    pub fn new(recognizer: Arc<Recognizer>, end_guard_s: f64) -> Self {
        Self {
            recognizer,
            end_guard_s,
        }
    }
}

impl Stage for Grammar {
    type In = LetterOut;
    type Out = PipelineEvent;

    fn name(&self) -> &'static str {
        "grammar"
    }

    fn push(&mut self, input: LetterOut, out: &mut Vec<PipelineEvent>) {
        match input {
            LetterOut::Stroke {
                stroke,
                response_time_s,
            } => out.push(PipelineEvent::StrokeDetected {
                stroke,
                response_time_s,
                decision_delay_s: self.end_guard_s,
            }),
            LetterOut::Close { strokes, .. } => {
                let t0 = Instant::now();
                let observed: Vec<_> = strokes
                    .iter()
                    .map(|s| s.to_observed(self.recognizer.layout()))
                    .collect();
                let letter = self.recognizer.grammar().deduce_fuzzy(&observed);
                crate::telemetry::stage_metrics().letters.inc();
                out.push(PipelineEvent::LetterRecognized {
                    letter,
                    strokes,
                    response_time_s: t0.elapsed().as_secs_f64(),
                });
            }
        }
    }

    fn snapshot(&self) -> StageState {
        StageState::new(self.name(), "{}")
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        expect_empty_state(state)
    }
}

/// Validating builder for [`StageGraph`].
#[derive(Debug, Clone, Default)]
#[must_use = "call .build() to obtain the graph"]
pub struct StageGraphBuilder {
    recognizer: Option<Recognizer>,
    letter_gap_s: Option<f64>,
    out_of_order: OutOfOrderPolicy,
}

impl StageGraphBuilder {
    /// The recognizer the stages share (required).
    pub fn recognizer(mut self, recognizer: Recognizer) -> Self {
        self.recognizer = Some(recognizer);
        self
    }

    /// Idle time that closes a letter, simulated seconds (default 1.5 s,
    /// comfortable for the default writer profiles).
    pub fn letter_gap_s(mut self, letter_gap_s: f64) -> Self {
        self.letter_gap_s = Some(letter_gap_s);
        self
    }

    /// Policy for reports whose timestamps run backwards (default
    /// [`OutOfOrderPolicy::Clamp`]).
    pub fn out_of_order(mut self, policy: OutOfOrderPolicy) -> Self {
        self.out_of_order = policy;
        self
    }

    /// Validates the configuration and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if no recognizer was given
    /// or `letter_gap_s` is not positive and finite.
    pub fn build(self) -> Result<StageGraph, RfipadError> {
        let recognizer = self.recognizer.ok_or_else(|| {
            RfipadError::invalid_field("StageGraphBuilder", "recognizer", "required but not set")
        })?;
        let letter_gap_s = self.letter_gap_s.unwrap_or(1.5);
        if !(letter_gap_s > 0.0 && letter_gap_s.is_finite()) {
            return Err(RfipadError::invalid_field(
                "StageGraphBuilder",
                "letter_gap_s",
                format!("must be positive and finite, got {letter_gap_s}"),
            ));
        }
        let end_guard_s =
            recognizer.config().frame_len_s * recognizer.config().window_frames as f64;
        let recognizer = Arc::new(recognizer);
        Ok(StageGraph {
            framing: Framing::new(Arc::clone(&recognizer), letter_gap_s, end_guard_s),
            segmentation: Segmentation::new(Arc::clone(&recognizer), end_guard_s),
            motion: Motion::new(Arc::clone(&recognizer)),
            letter: LetterRecognition::new(letter_gap_s),
            grammar: Grammar::new(Arc::clone(&recognizer), end_guard_s),
            recognizer,
            letter_gap_s,
            end_guard_s,
            out_of_order: self.out_of_order,
            last_time: f64::NEG_INFINITY,
            out_of_order_count: 0,
            finished: false,
            ticks: Vec::new(),
            spans: Vec::new(),
            strokes: Vec::new(),
            letters: Vec::new(),
            trace: None,
        })
    }
}

/// The five-stage online recognition cascade, wired in order.
///
/// Owns report admission (the out-of-order policy), drives each stage
/// under its `rfipad_stage_push_seconds{stage=...}` histogram, and
/// routes the letter-close feedback (history trim + dedup reset) back
/// upstream. [`crate::OnlinePipeline`] is a thin facade over this type;
/// the engine, `multipad`, and the experiment trials drive it directly.
#[derive(Debug)]
pub struct StageGraph {
    recognizer: Arc<Recognizer>,
    letter_gap_s: f64,
    end_guard_s: f64,
    /// What to do with reports whose timestamps run backwards.
    out_of_order: OutOfOrderPolicy,
    /// Newest report timestamp consumed so far.
    last_time: f64,
    /// Reports that arrived with a timestamp older than `last_time`.
    out_of_order_count: u64,
    /// Whether [`StageGraph::finish`] already flushed the stream.
    finished: bool,
    framing: Framing,
    segmentation: Segmentation,
    motion: Motion,
    letter: LetterRecognition,
    grammar: Grammar,
    // Scratch edge buffers, reused across pushes so the steady-state
    // cascade allocates nothing.
    ticks: Vec<FrameTick>,
    spans: Vec<SpanBatch>,
    strokes: Vec<StrokeBatch>,
    letters: Vec<LetterOut>,
    /// Trace binding for served sessions: sampled stage pushes emit
    /// `stage:*` child spans into the session's flight recorder.
    trace: Option<StageTrace>,
}

/// Runtime trace binding of a graph to a session's flight recorder.
/// Never checkpointed: tracing is an observation of a run, not state of
/// the recognition.
#[derive(Debug, Clone)]
pub(crate) struct StageTrace {
    /// The session's flight recorder (also the span timebase).
    pub recorder: Arc<obs::trace::FlightRecorder>,
    /// The trace every emitted span belongs to.
    pub trace: obs::trace::TraceId,
    /// Parent of the emitted stage spans (the session's root span).
    pub parent: obs::trace::SpanId,
}

impl StageGraph {
    /// Starts a validating builder ([`StageGraphBuilder`]).
    pub fn builder() -> StageGraphBuilder {
        StageGraphBuilder::default()
    }

    /// The recognizer shared by the stages.
    pub fn recognizer(&self) -> &Recognizer {
        &self.recognizer
    }

    /// The idle gap (simulated seconds) that closes a letter.
    pub fn letter_gap_s(&self) -> f64 {
        self.letter_gap_s
    }

    /// How many reports arrived with a timestamp older than an already
    /// consumed one (and were clamped or dropped per the configured
    /// [`OutOfOrderPolicy`]).
    pub fn out_of_order_count(&self) -> u64 {
        self.out_of_order_count
    }

    /// The most recent full segmentation over the buffered history
    /// (spans, frame scores, threshold), if a tick has run.
    pub fn last_segmentation(&self) -> Option<&crate::segmentation::Segmentation> {
        self.segmentation.last_segmentation()
    }

    /// Feeds one tag report; returns any events it triggered.
    pub fn push(&mut self, obs: TagReport) -> Vec<PipelineEvent> {
        let mut events = Vec::new();
        self.push_into(obs, &mut events);
        events
    }

    /// Like [`push`](Self::push), but appends any triggered events to
    /// `events` instead of allocating a fresh vector — the hot-path
    /// entry point for callers that reuse one event buffer.
    pub fn push_into(&mut self, mut obs: TagReport, events: &mut Vec<PipelineEvent>) {
        self.finished = false;
        let metrics = crate::telemetry::stage_metrics();
        metrics.reports.inc();
        if obs.time < self.last_time {
            self.out_of_order_count += 1;
            // Mirror into the durable registry counters: the per-graph
            // count above dies with the session, these survive eviction.
            match self.out_of_order {
                OutOfOrderPolicy::Clamp => {
                    metrics.out_of_order_clamped.inc();
                    obs.time = self.last_time;
                }
                OutOfOrderPolicy::Drop => {
                    metrics.out_of_order_dropped.inc();
                    return;
                }
            }
        }
        self.last_time = obs.time;
        // The framing hop is only measured for trace-bound (served)
        // sessions, and then only on sampled pushes — untraced replays pay
        // one Option check per report.
        let framing_hop = if self.trace.is_some() {
            self.begin_stage_hop(obs::trace::sampler().sample())
        } else {
            None
        };
        // Retention must not cut into the letter being assembled: feed
        // the letter stage's oldest pending stroke back as the anchor.
        self.framing.set_hold_anchor(self.letter.hold_anchor());
        self.framing.push(obs, &mut self.ticks);
        if let Some(keep_from) = self.framing.take_trim() {
            self.segmentation.trim_reported(keep_from);
        }
        self.end_stage_hop(0, framing_hop);
        // Most pushes buffer without crossing a frame boundary; only a
        // tick has anything to drive downstream.
        if !self.ticks.is_empty() {
            self.cascade(events);
        }
    }

    /// Feeds a batch of reports in order, appending any triggered events
    /// to `events`. Equivalent to pushing each report individually; one
    /// event buffer serves the whole batch.
    pub fn push_batch(
        &mut self,
        reports: impl IntoIterator<Item = TagReport>,
        events: &mut Vec<PipelineEvent>,
    ) {
        for obs in reports {
            self.push_into(obs, events);
        }
    }

    /// Flushes the graph at end of input (closes any pending stroke or
    /// letter regardless of gaps).
    ///
    /// Idempotent: a second `finish` without an intervening
    /// [`StageGraph::push`] returns no events.
    pub fn finish(&mut self) -> Vec<PipelineEvent> {
        let mut events = Vec::new();
        self.finish_into(&mut events);
        events
    }

    /// Like [`finish`](Self::finish), but appends any events to
    /// `events`.
    pub fn finish_into(&mut self, events: &mut Vec<PipelineEvent>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.framing.flush(&mut self.ticks);
        self.cascade(events);
    }

    /// Binds (or unbinds) the graph to a session trace: sampled stage
    /// pushes then emit `stage:*` child spans into the session's flight
    /// recorder.
    pub(crate) fn bind_trace(&mut self, binding: Option<StageTrace>) {
        self.trace = binding;
    }

    /// The graph's trace binding, if a serving layer installed one.
    pub(crate) fn trace_binding(&self) -> Option<&StageTrace> {
        self.trace.as_ref()
    }

    /// Opens one sampled stage-hop measurement: the recorder timebase
    /// stamp (when a trace is bound) plus the wall clock. `None` when this
    /// push is not sampled.
    fn begin_stage_hop(&self, sampled: bool) -> Option<(Option<u64>, Instant)> {
        if !sampled {
            return None;
        }
        let stamp = self.trace.as_ref().map(|t| t.recorder.now_us());
        Some((stamp, Instant::now()))
    }

    /// Closes a sampled stage-hop measurement: records the
    /// `rfipad_hop_seconds{hop=stage:<name>}` histogram and, when a trace
    /// is bound, a `stage:<name>` child span in the flight recorder.
    fn end_stage_hop(&self, stage: usize, begun: Option<(Option<u64>, Instant)>) {
        let Some((stamp, t0)) = begun else { return };
        let elapsed = t0.elapsed();
        crate::telemetry::hop_metrics().stages[stage].record_duration_ns(elapsed);
        if let (Some(start_us), Some(tr)) = (stamp, self.trace.as_ref()) {
            let end_us = start_us + elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
            obs::trace::finish_span(
                &tr.recorder,
                obs::trace::SpanEvent {
                    trace: tr.trace,
                    span: obs::trace::next_span_id(),
                    parent: Some(tr.parent),
                    name: format!("stage:{}", crate::telemetry::STAGE_NAMES[stage]),
                    start_us,
                    end_us,
                },
            );
        }
    }

    /// Drains every edge buffer through the downstream stages, timing
    /// each downstream stage push (framing times its own ticks), and
    /// routes letter-close feedback upstream. Stage timers and hop spans
    /// are head-sampled (`obs::trace::sampler`) so the per-report cascade
    /// stays inside the telemetry overhead budget.
    fn cascade(&mut self, events: &mut Vec<PipelineEvent>) {
        let metrics = crate::telemetry::stage_metrics();
        let sampled = obs::trace::sampler().sample();
        let mut ticks = std::mem::take(&mut self.ticks);
        for tick in ticks.drain(..) {
            let hop = self.begin_stage_hop(sampled);
            {
                let _span = metrics.segmentation.start_span_if(sampled);
                self.segmentation.push(tick, &mut self.spans);
            }
            self.end_stage_hop(1, hop);
        }
        self.ticks = ticks;
        // The segmentation stage is done with the tick's frame sequence;
        // hand it back so the next tick builds into the same allocation.
        if let Some(frames) = self.segmentation.take_spare_frames() {
            self.framing.recycle_frames(frames);
        }
        let mut spans = std::mem::take(&mut self.spans);
        for batch in spans.drain(..) {
            let hop = self.begin_stage_hop(sampled);
            {
                let _span = metrics.motion.start_span_if(sampled);
                self.motion.push(batch, &mut self.strokes);
            }
            self.end_stage_hop(2, hop);
        }
        self.spans = spans;
        let mut strokes = std::mem::take(&mut self.strokes);
        for batch in strokes.drain(..) {
            let hop = self.begin_stage_hop(sampled);
            {
                let _span = metrics.letter.start_span_if(sampled);
                self.letter.push(batch, &mut self.letters);
            }
            self.end_stage_hop(3, hop);
        }
        self.strokes = strokes;
        let mut closed_at = None;
        let mut letters = std::mem::take(&mut self.letters);
        for out in letters.drain(..) {
            if let LetterOut::Close { letter_end, .. } = &out {
                closed_at = Some(*letter_end);
            }
            let hop = self.begin_stage_hop(sampled);
            {
                let _span = metrics.grammar.start_span_if(sampled);
                self.grammar.push(out, events);
            }
            self.end_stage_hop(4, hop);
        }
        self.letters = letters;
        if let Some(letter_end) = closed_at {
            // The letter's history is dead: trim it and forget the span
            // dedup entries that guarded it.
            self.framing.trim_after_letter(letter_end);
            self.segmentation.clear_reported();
        }
    }

    /// Captures the graph's full mutable state for session migration.
    ///
    /// The checkpoint is self-describing (versioned JSON via
    /// [`PipelineCheckpoint::to_json`]) and restores with
    /// [`StageGraph::restore_checkpoint`] on a graph built from the same
    /// recognizer configuration.
    pub fn checkpoint(&self) -> PipelineCheckpoint {
        PipelineCheckpoint {
            policy: self.out_of_order,
            last_time: self.last_time,
            out_of_order_count: self.out_of_order_count,
            finished: self.finished,
            letter_gap_s: self.letter_gap_s,
            end_guard_s: self.end_guard_s,
            stages: vec![
                self.framing.snapshot(),
                self.segmentation.snapshot(),
                self.motion.snapshot(),
                self.letter.snapshot(),
                self.grammar.snapshot(),
            ],
        }
    }

    /// Restores a [`checkpoint`](Self::checkpoint) into this graph,
    /// replacing its state. The graph then produces the same remaining
    /// events, bit for bit, as the graph the checkpoint was taken from.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::Checkpoint`] if the checkpoint was taken
    /// under a different configuration (letter gap or end guard), names
    /// an unknown stage, misses one of the five stages, or fails a
    /// stage's integrity checks.
    pub fn restore_checkpoint(
        &mut self,
        checkpoint: &PipelineCheckpoint,
    ) -> Result<(), RfipadError> {
        if checkpoint.letter_gap_s.to_bits() != self.letter_gap_s.to_bits()
            || checkpoint.end_guard_s.to_bits() != self.end_guard_s.to_bits()
        {
            return Err(checkpoint_err(
                "checkpoint was taken under a different pipeline configuration",
            ));
        }
        let mut seen = [false; 5];
        for state in &checkpoint.stages {
            let slot = match state.stage() {
                "framing" => {
                    self.framing.restore(state)?;
                    0
                }
                "segmentation" => {
                    self.segmentation.restore(state)?;
                    1
                }
                "motion" => {
                    self.motion.restore(state)?;
                    2
                }
                "letter" => {
                    self.letter.restore(state)?;
                    3
                }
                "grammar" => {
                    self.grammar.restore(state)?;
                    4
                }
                other => return Err(checkpoint_err(format!("unknown stage {other:?}"))),
            };
            if seen[slot] {
                return Err(checkpoint_err(format!(
                    "duplicate stage {:?} in checkpoint",
                    state.stage()
                )));
            }
            seen[slot] = true;
        }
        if !seen.iter().all(|&s| s) {
            return Err(checkpoint_err("checkpoint is missing a stage"));
        }
        self.out_of_order = checkpoint.policy;
        self.last_time = checkpoint.last_time;
        self.out_of_order_count = checkpoint.out_of_order_count;
        self.finished = checkpoint.finished;
        self.ticks.clear();
        self.spans.clear();
        self.strokes.clear();
        self.letters.clear();
        Ok(())
    }
}

/// The whole graph is itself a stage (reports in, events out), so a
/// graph can be embedded wherever a [`Stage`] is expected and its state
/// snapshots through the same interface.
impl Stage for StageGraph {
    type In = TagReport;
    type Out = PipelineEvent;

    fn name(&self) -> &'static str {
        "graph"
    }

    fn push(&mut self, input: TagReport, out: &mut Vec<PipelineEvent>) {
        self.push_into(input, out);
    }

    fn flush(&mut self, out: &mut Vec<PipelineEvent>) {
        self.finish_into(out);
    }

    fn snapshot(&self) -> StageState {
        StageState::new(self.name(), self.checkpoint().to_json())
    }

    fn restore(&mut self, state: &StageState) -> Result<(), RfipadError> {
        check_stage_name(self.name(), state)?;
        self.restore_checkpoint(&PipelineCheckpoint::from_json(state.state())?)
    }
}

/// A versioned snapshot of a [`StageGraph`]'s mutable state.
///
/// Serialized with [`to_json`](Self::to_json) /
/// [`from_json`](Self::from_json) — hand-rolled, floats as IEEE-754 bit
/// patterns, unknown fields and foreign versions rejected — so a
/// checkpoint written by one process restores exactly in another.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineCheckpoint {
    policy: OutOfOrderPolicy,
    last_time: f64,
    out_of_order_count: u64,
    finished: bool,
    letter_gap_s: f64,
    end_guard_s: f64,
    stages: Vec<StageState>,
}

/// Format version written by [`PipelineCheckpoint::to_json`].
const CHECKPOINT_VERSION: u64 = 1;

impl PipelineCheckpoint {
    /// Serializes the checkpoint as a single JSON object.
    pub fn to_json(&self) -> String {
        let policy = match self.policy {
            OutOfOrderPolicy::Clamp => "clamp",
            OutOfOrderPolicy::Drop => "drop",
        };
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("\"{}\":{}", s.stage(), s.state()))
            .collect();
        format!(
            "{{\"version\":{CHECKPOINT_VERSION},\"policy\":\"{policy}\",\"last_time_bits\":{},\
             \"out_of_order_count\":{},\"finished\":{},\"letter_gap_bits\":{},\
             \"end_guard_bits\":{},\"stages\":{{{}}}}}",
            self.last_time.to_bits(),
            self.out_of_order_count,
            self.finished,
            self.letter_gap_s.to_bits(),
            self.end_guard_s.to_bits(),
            stages.join(",")
        )
    }

    /// Parses a checkpoint serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::Checkpoint`] on malformed JSON, an
    /// unsupported version, an unknown policy, or unknown/missing
    /// fields.
    pub fn from_json(json: &str) -> Result<Self, RfipadError> {
        let mut version = None;
        let mut policy = None;
        let mut last_time = None;
        let mut out_of_order_count = None;
        let mut finished = None;
        let mut letter_gap_s = None;
        let mut end_guard_s = None;
        let mut stages = None;
        for (key, value) in parse_fields(object_body(json)?)? {
            match key.as_str() {
                "version" => version = Some(parse_u64(value)?),
                "policy" => {
                    policy = Some(match value.trim().trim_matches('"') {
                        "clamp" => OutOfOrderPolicy::Clamp,
                        "drop" => OutOfOrderPolicy::Drop,
                        other => {
                            return Err(checkpoint_err(format!(
                                "unknown out-of-order policy {other:?}"
                            )))
                        }
                    })
                }
                "last_time_bits" => last_time = Some(parse_bits(value)?),
                "out_of_order_count" => out_of_order_count = Some(parse_u64(value)?),
                "finished" => finished = Some(parse_bool(value)?),
                "letter_gap_bits" => letter_gap_s = Some(parse_bits(value)?),
                "end_guard_bits" => end_guard_s = Some(parse_bits(value)?),
                "stages" => {
                    let mut parsed = Vec::new();
                    for (stage, state) in parse_fields(object_body(value)?)? {
                        parsed.push(StageState::new(stage, state));
                    }
                    stages = Some(parsed);
                }
                other => {
                    return Err(checkpoint_err(format!(
                        "unknown checkpoint field {other:?}"
                    )))
                }
            }
        }
        let version = version.ok_or_else(|| checkpoint_err("checkpoint lacks a version"))?;
        if version != CHECKPOINT_VERSION {
            return Err(checkpoint_err(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        Ok(Self {
            policy: policy.ok_or_else(|| checkpoint_err("checkpoint lacks policy"))?,
            last_time: last_time.ok_or_else(|| checkpoint_err("checkpoint lacks last_time"))?,
            out_of_order_count: out_of_order_count
                .ok_or_else(|| checkpoint_err("checkpoint lacks out_of_order_count"))?,
            finished: finished.ok_or_else(|| checkpoint_err("checkpoint lacks finished"))?,
            letter_gap_s: letter_gap_s
                .ok_or_else(|| checkpoint_err("checkpoint lacks letter_gap"))?,
            end_guard_s: end_guard_s.ok_or_else(|| checkpoint_err("checkpoint lacks end_guard"))?,
            stages: stages.ok_or_else(|| checkpoint_err("checkpoint lacks stages"))?,
        })
    }
}

// ---------------------------------------------------------------------
// Hand-rolled JSON plumbing (shared conventions with crate::metrics).

fn checkpoint_err(msg: impl Into<String>) -> RfipadError {
    RfipadError::Checkpoint(msg.into())
}

fn check_stage_name(expected: &str, state: &StageState) -> Result<(), RfipadError> {
    if state.stage() != expected {
        return Err(checkpoint_err(format!(
            "state for stage {:?} handed to stage {expected:?}",
            state.stage()
        )));
    }
    Ok(())
}

fn expect_empty_state(state: &StageState) -> Result<(), RfipadError> {
    if let Some((key, _)) = parse_fields(object_body(state.state())?)?
        .into_iter()
        .next()
    {
        return Err(checkpoint_err(format!(
            "unknown {} field {key:?}",
            state.stage()
        )));
    }
    Ok(())
}

fn preview(s: &str) -> String {
    s.chars().take(40).collect()
}

fn object_body(s: &str) -> Result<&str, RfipadError> {
    let t = s.trim();
    t.strip_prefix('{')
        .and_then(|x| x.strip_suffix('}'))
        .map(str::trim)
        .ok_or_else(|| checkpoint_err(format!("expected a JSON object at {:?}", preview(t))))
}

fn array_items(s: &str) -> Result<Vec<&str>, RfipadError> {
    let t = s.trim();
    let inner = t
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .map(str::trim)
        .ok_or_else(|| checkpoint_err(format!("expected a JSON array at {:?}", preview(t))))?;
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    Ok(split_top_level(inner))
}

fn parse_fields(body: &str) -> Result<Vec<(String, &str)>, RfipadError> {
    if body.is_empty() {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    for part in split_top_level(body) {
        let (key, value) = part
            .split_once(':')
            .ok_or_else(|| checkpoint_err(format!("expected key:value at {:?}", preview(part))))?;
        out.push((key.trim().trim_matches('"').to_string(), value.trim()));
    }
    Ok(out)
}

fn parse_u64(s: &str) -> Result<u64, RfipadError> {
    s.trim()
        .parse::<u64>()
        .map_err(|_| checkpoint_err(format!("expected an unsigned integer at {:?}", preview(s))))
}

fn parse_usize(s: &str) -> Result<usize, RfipadError> {
    s.trim()
        .parse::<usize>()
        .map_err(|_| checkpoint_err(format!("expected an unsigned integer at {:?}", preview(s))))
}

fn parse_u16(s: &str) -> Result<u16, RfipadError> {
    s.trim()
        .parse::<u16>()
        .map_err(|_| checkpoint_err(format!("expected a 16-bit integer at {:?}", preview(s))))
}

/// Parses an `f64` persisted as its IEEE-754 bit pattern (a `u64`).
fn parse_bits(s: &str) -> Result<f64, RfipadError> {
    Ok(f64::from_bits(parse_u64(s)?))
}

fn parse_bool(s: &str) -> Result<bool, RfipadError> {
    match s.trim() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(checkpoint_err(format!(
            "expected a boolean at {:?}",
            preview(other)
        ))),
    }
}

fn report_to_json(r: &TagReport) -> String {
    let epc: String = r
        .epc
        .as_bytes()
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect();
    format!(
        "{{\"epc\":\"{epc}\",\"tag\":{},\"time_bits\":{},\"phase_bits\":{},\"rss_bits\":{},\
         \"doppler_bits\":{},\"antenna\":{},\"channel\":{}}}",
        r.tag.0,
        r.time.to_bits(),
        r.phase.to_bits(),
        r.rss_dbm.to_bits(),
        r.doppler_hz.to_bits(),
        r.antenna_port,
        r.channel_index
    )
}

fn epc_from_hex(s: &str) -> Result<Epc96, RfipadError> {
    let hex = s.trim().trim_matches('"');
    if hex.len() != 24 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(checkpoint_err(format!(
            "expected 24 hex digits of EPC at {:?}",
            preview(hex)
        )));
    }
    let mut bytes = [0u8; 12];
    for (i, b) in bytes.iter_mut().enumerate() {
        *b = u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
            .map_err(|_| checkpoint_err("invalid EPC hex"))?;
    }
    Ok(Epc96::from_bytes(bytes))
}

fn report_from_json(s: &str) -> Result<TagReport, RfipadError> {
    let mut epc = None;
    let mut tag = None;
    let mut time = None;
    let mut phase = None;
    let mut rss_dbm = None;
    let mut doppler_hz = None;
    let mut antenna_port = None;
    let mut channel_index = None;
    for (key, value) in parse_fields(object_body(s)?)? {
        match key.as_str() {
            "epc" => epc = Some(epc_from_hex(value)?),
            "tag" => tag = Some(TagId(parse_u64(value)?)),
            "time_bits" => time = Some(parse_bits(value)?),
            "phase_bits" => phase = Some(parse_bits(value)?),
            "rss_bits" => rss_dbm = Some(parse_bits(value)?),
            "doppler_bits" => doppler_hz = Some(parse_bits(value)?),
            "antenna" => antenna_port = Some(parse_u16(value)?),
            "channel" => channel_index = Some(parse_u16(value)?),
            other => return Err(checkpoint_err(format!("unknown report field {other:?}"))),
        }
    }
    let missing = || checkpoint_err("report is missing a field");
    Ok(TagReport {
        epc: epc.ok_or_else(missing)?,
        tag: tag.ok_or_else(missing)?,
        time: time.ok_or_else(missing)?,
        phase: phase.ok_or_else(missing)?,
        rss_dbm: rss_dbm.ok_or_else(missing)?,
        doppler_hz: doppler_hz.ok_or_else(missing)?,
        antenna_port: antenna_port.ok_or_else(missing)?,
        channel_index: channel_index.ok_or_else(missing)?,
    })
}

/// Parses the frame-accumulator diagnostics: `null` (no accumulator at
/// snapshot time) or the `(anchor, frame_len, max_time)` bit patterns.
fn frame_diag_from_json(s: &str) -> Result<Option<(u64, u64, u64)>, RfipadError> {
    if s.trim() == "null" {
        return Ok(None);
    }
    let mut anchor = None;
    let mut frame_len = None;
    let mut max_time = None;
    for (key, value) in parse_fields(object_body(s)?)? {
        match key.as_str() {
            "anchor_bits" => anchor = Some(parse_u64(value)?),
            "frame_len_bits" => frame_len = Some(parse_u64(value)?),
            "max_time_bits" => max_time = Some(parse_u64(value)?),
            other => return Err(checkpoint_err(format!("unknown frames field {other:?}"))),
        }
    }
    let missing = || checkpoint_err("frame diagnostics are missing a field");
    Ok(Some((
        anchor.ok_or_else(missing)?,
        frame_len.ok_or_else(missing)?,
        max_time.ok_or_else(missing)?,
    )))
}

fn stroke_to_json(s: &RecognizedStroke) -> String {
    let mask: String = (0..s.motion.mask.rows())
        .flat_map(|r| (0..s.motion.mask.cols()).map(move |c| (r, c)))
        .map(|(r, c)| if s.motion.mask.get(r, c) { '1' } else { '0' })
        .collect();
    format!(
        "{{\"shape\":{},\"reversed\":{},\"start_bits\":{},\"end_bits\":{},\"motion_shape\":{},\
         \"rows\":{},\"cols\":{},\"mask\":\"{mask}\",\"centroid_row_bits\":{},\
         \"centroid_col_bits\":{},\"bbox\":[{},{},{},{}]}}",
        s.stroke.shape.motion_number(),
        s.stroke.reversed,
        s.span.start.to_bits(),
        s.span.end.to_bits(),
        s.motion.shape.motion_number(),
        s.motion.mask.rows(),
        s.motion.mask.cols(),
        s.motion.centroid.0.to_bits(),
        s.motion.centroid.1.to_bits(),
        s.motion.bbox.0,
        s.motion.bbox.1,
        s.motion.bbox.2,
        s.motion.bbox.3
    )
}

fn shape_from_number(n: u64) -> Result<StrokeShape, RfipadError> {
    StrokeShape::all()
        .into_iter()
        .find(|s| u64::from(s.motion_number()) == n)
        .ok_or_else(|| checkpoint_err(format!("unknown stroke shape {n}")))
}

fn stroke_from_json(s: &str) -> Result<RecognizedStroke, RfipadError> {
    let mut shape = None;
    let mut reversed = None;
    let mut start = None;
    let mut end = None;
    let mut motion_shape = None;
    let mut rows = None;
    let mut cols = None;
    let mut mask = None;
    let mut centroid_row = None;
    let mut centroid_col = None;
    let mut bbox = None;
    for (key, value) in parse_fields(object_body(s)?)? {
        match key.as_str() {
            "shape" => shape = Some(shape_from_number(parse_u64(value)?)?),
            "reversed" => reversed = Some(parse_bool(value)?),
            "start_bits" => start = Some(parse_bits(value)?),
            "end_bits" => end = Some(parse_bits(value)?),
            "motion_shape" => motion_shape = Some(shape_from_number(parse_u64(value)?)?),
            "rows" => rows = Some(parse_usize(value)?),
            "cols" => cols = Some(parse_usize(value)?),
            "mask" => {
                let bits = value.trim().trim_matches('"');
                if !bits.bytes().all(|b| b == b'0' || b == b'1') {
                    return Err(checkpoint_err("mask must be 0/1 digits"));
                }
                mask = Some(bits.bytes().map(|b| b == b'1').collect::<Vec<bool>>());
            }
            "centroid_row_bits" => centroid_row = Some(parse_bits(value)?),
            "centroid_col_bits" => centroid_col = Some(parse_bits(value)?),
            "bbox" => {
                let items = array_items(value)?;
                if items.len() != 4 {
                    return Err(checkpoint_err("bbox must have four coordinates"));
                }
                bbox = Some((
                    parse_usize(items[0])?,
                    parse_usize(items[1])?,
                    parse_usize(items[2])?,
                    parse_usize(items[3])?,
                ));
            }
            other => return Err(checkpoint_err(format!("unknown stroke field {other:?}"))),
        }
    }
    let missing = || checkpoint_err("stroke is missing a field");
    let rows = rows.ok_or_else(missing)?;
    let cols = cols.ok_or_else(missing)?;
    let mask = mask.ok_or_else(missing)?;
    if rows == 0 || cols == 0 || mask.len() != rows * cols {
        return Err(checkpoint_err("mask dimensions do not match its digits"));
    }
    Ok(RecognizedStroke {
        stroke: Stroke {
            shape: shape.ok_or_else(missing)?,
            reversed: reversed.ok_or_else(missing)?,
        },
        span: StrokeSpan {
            start: start.ok_or_else(missing)?,
            end: end.ok_or_else(missing)?,
        },
        motion: crate::motion::RecognizedMotion {
            shape: motion_shape.ok_or_else(missing)?,
            mask: BinaryGrid::from_mask(rows, cols, mask),
            centroid: (
                centroid_row.ok_or_else(missing)?,
                centroid_col.ok_or_else(missing)?,
            ),
            bbox: bbox.ok_or_else(missing)?,
        },
    })
}

#[cfg(test)]
impl StageGraph {
    /// The framing stage's buffered report history.
    pub(crate) fn buffer(&self) -> &[TagReport] {
        &self.framing.buffer
    }

    /// Whether the framing stage currently holds an incremental cache.
    pub(crate) fn cache_is_some(&self) -> bool {
        self.framing.cache.is_some()
    }

    /// The letter stage's pending strokes (mutable, for fixtures).
    pub(crate) fn pending_strokes_mut(&mut self) -> &mut Vec<RecognizedStroke> {
        &mut self.letter.pending
    }

    /// The segmentation stage's span-dedup entries.
    pub(crate) fn reported_spans(&self) -> &[f64] {
        &self.segmentation.reported_spans
    }

    /// The span-dedup entries, mutable (for fixtures).
    pub(crate) fn reported_spans_mut(&mut self) -> &mut Vec<f64> {
        &mut self.segmentation.reported_spans
    }

    /// Records a reported span start (test shim over the private stage
    /// method).
    pub(crate) fn mark_reported(&mut self, start: f64) {
        self.segmentation.mark_reported(start);
    }

    /// Whether a span starting at `start` was already reported.
    pub(crate) fn span_already_reported(&self, start: f64) -> bool {
        self.segmentation.already_reported(start)
    }

    /// Test oracle: the incrementally maintained cache must equal a
    /// from-scratch rebuild over the current buffer — streams *and*
    /// frames, bit for bit. Rebuilds the cache first if a trim dropped
    /// it.
    pub(crate) fn assert_cache_matches_rebuild(&mut self) {
        self.framing.ensure_cache();
        let framing = &self.framing;
        let cache = framing.cache.as_ref().expect("just ensured");
        let fresh = framing.recognizer.streams(&framing.buffer);
        assert_eq!(
            cache.streams.streams(),
            &fresh,
            "cached streams diverged from a rebuild over the buffer"
        );
        if let Some(frames) = cache.frames.as_ref() {
            let start = fresh.start().expect("cache has samples");
            let end = fresh.end().expect("cache has samples");
            assert_eq!(frames.start(), start, "frame anchor diverged");
            let batch = FrameSeq::build_with_floors(
                &fresh.phase_series(framing.recognizer.layout()),
                Some(&framing.noise_floors),
                start,
                end,
                framing.recognizer.config().frame_len_s,
            );
            assert_eq!(
                frames.clone().build(end),
                batch,
                "cached frames diverged from a batch build"
            );
        } else {
            assert_eq!(fresh.start(), None, "frames missing despite samples");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use crate::motion::RecognizedMotion;

    fn quiet_obs(tag: u64, time: f64) -> TagReport {
        TagReport::synthetic(TagId(tag), time, 1.0 + tag as f64, -45.0)
    }

    fn quiet_graph(letter_gap_s: f64) -> StageGraph {
        let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| (0..3).map(move |i| quiet_obs(i, j as f64 * 0.05 + i as f64 * 0.01)))
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config).unwrap();
        let rec = Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()
            .unwrap();
        StageGraph::builder()
            .recognizer(rec)
            .letter_gap_s(letter_gap_s)
            .build()
            .unwrap()
    }

    fn fake_stroke(start: f64, end: f64) -> RecognizedStroke {
        let mut mask = BinaryGrid::empty(1, 3);
        mask.set(0, 1, true);
        RecognizedStroke {
            stroke: Stroke::new(StrokeShape::Click),
            span: StrokeSpan { start, end },
            motion: RecognizedMotion {
                shape: StrokeShape::Click,
                mask,
                centroid: (0.0, 1.0),
                bbox: (0, 1, 0, 1),
            },
        }
    }

    fn driven_graph() -> StageGraph {
        let mut graph = quiet_graph(1.5);
        for step in 0..240u64 {
            graph.push(quiet_obs(step % 3, step as f64 / 60.0));
        }
        graph.pending_strokes_mut().push(fake_stroke(1.0, 1.4));
        graph.mark_reported(1.0);
        graph.mark_reported(2.6);
        graph
    }

    #[test]
    fn report_json_roundtrips_bit_exactly() {
        let mut r = TagReport::synthetic(TagId(7), 1.2345678901234567, 2.71311, -44.5);
        r.doppler_hz = -0.125;
        r.antenna_port = 3;
        r.channel_index = 17;
        let back = report_from_json(&report_to_json(&r)).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.time.to_bits(), r.time.to_bits());
    }

    #[test]
    fn stroke_json_roundtrips() {
        let s = fake_stroke(1.25, 2.5);
        let back = stroke_from_json(&stroke_to_json(&s)).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn checkpoint_json_roundtrips() {
        let graph = driven_graph();
        let checkpoint = graph.checkpoint();
        let parsed = PipelineCheckpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(parsed, checkpoint);
    }

    #[test]
    fn restore_reproduces_the_snapshot() {
        let graph = driven_graph();
        let checkpoint = graph.checkpoint();
        let mut restored = quiet_graph(1.5);
        restored.restore_checkpoint(&checkpoint).unwrap();
        assert_eq!(restored.checkpoint(), checkpoint);
        assert_eq!(restored.buffer(), graph.buffer());
        assert_eq!(restored.reported_spans(), graph.reported_spans());
        // The rebuilt incremental state matches a from-scratch build.
        restored.assert_cache_matches_rebuild();
    }

    #[test]
    fn restored_graph_continues_like_the_original() {
        let mut original = quiet_graph(1.5);
        for step in 0..240u64 {
            original.push(quiet_obs(step % 3, step as f64 / 60.0));
        }
        let checkpoint = original.checkpoint();
        let mut restored = quiet_graph(1.5);
        restored.restore_checkpoint(&checkpoint).unwrap();
        for step in 240..480u64 {
            let o = quiet_obs(step % 3, step as f64 / 60.0);
            assert_eq!(original.push(o), restored.push(o));
        }
        assert_eq!(original.finish(), restored.finish());
        assert_eq!(original.buffer(), restored.buffer());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(PipelineCheckpoint::from_json("not json").is_err());
        assert!(PipelineCheckpoint::from_json("{}").is_err());
        assert!(PipelineCheckpoint::from_json("{\"version\":1}").is_err());
    }

    #[test]
    fn restore_rejects_foreign_versions_and_fields() {
        let json = driven_graph().checkpoint().to_json();
        let bumped = json.replacen("\"version\":1", "\"version\":2", 1);
        let err = PipelineCheckpoint::from_json(&bumped).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let extended = json.replacen("{\"version\"", "{\"surprise\":4,\"version\"", 1);
        assert!(PipelineCheckpoint::from_json(&extended).is_err());
    }

    #[test]
    fn restore_rejects_config_mismatch() {
        let checkpoint = driven_graph().checkpoint();
        let mut other_gap = quiet_graph(2.0);
        let err = other_gap.restore_checkpoint(&checkpoint).unwrap_err();
        assert!(err.to_string().contains("configuration"), "{err}");
    }

    #[test]
    fn restore_rejects_missing_and_unknown_stages() {
        let mut checkpoint = driven_graph().checkpoint();
        let dropped = checkpoint.stages.pop().unwrap();
        let mut graph = quiet_graph(1.5);
        assert!(graph.restore_checkpoint(&checkpoint).is_err());
        checkpoint.stages.push(dropped);
        checkpoint.stages.push(StageState::new("mystery", "{}"));
        assert!(graph.restore_checkpoint(&checkpoint).is_err());
    }

    #[test]
    fn restore_rejects_corrupted_stage_state() {
        let graph = driven_graph();
        let json = graph.checkpoint().to_json();
        // Flip one bit of the framing buffer's first timestamp.
        let marker = "\"time_bits\":";
        let at = json.find(marker).unwrap() + marker.len();
        let digits: String = json[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        let flipped = digits.parse::<u64>().unwrap() ^ 1;
        let corrupted = json.replacen(
            &format!("{marker}{digits}"),
            &format!("{marker}{flipped}"),
            1,
        );
        let checkpoint = PipelineCheckpoint::from_json(&corrupted).unwrap();
        let mut restored = quiet_graph(1.5);
        let err = restored.restore_checkpoint(&checkpoint).unwrap_err();
        assert!(err.to_string().contains("checkpoint"), "{err}");
    }

    #[test]
    fn graph_is_itself_a_stage() {
        let graph = driven_graph();
        let state = graph.snapshot();
        assert_eq!(state.stage(), "graph");
        let mut restored = quiet_graph(1.5);
        Stage::restore(&mut restored, &state).unwrap();
        assert_eq!(restored.checkpoint(), graph.checkpoint());
        let mut events = Vec::new();
        Stage::push(&mut restored, quiet_obs(0, 9.0), &mut events);
        Stage::flush(&mut restored, &mut events);
    }

    #[test]
    fn builder_validates_like_the_pipeline() {
        assert!(StageGraph::builder().build().is_err());
        let graph = quiet_graph(1.5);
        assert!(StageGraph::builder()
            .recognizer(graph.recognizer().clone())
            .letter_gap_s(f64::NAN)
            .build()
            .is_err());
        let defaulted = StageGraph::builder()
            .recognizer(graph.recognizer().clone())
            .build()
            .unwrap();
        assert_eq!(defaulted.letter_gap_s(), 1.5);
    }
}
