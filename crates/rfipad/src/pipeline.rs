//! The online recognition engine (§V-D).
//!
//! RFIPad reacts to hand motions as they happen: tag reports stream in, and
//! as soon as a stroke's end is confirmed by a short silence the stroke is
//! recognized and reported; when the writer stays idle long enough the
//! buffered strokes are composed into a letter. Response time — the gap
//! between a motion ending and its report — is tracked per event, matching
//! the paper's Fig. 24 evaluation.
//!
//! [`spawn`] runs the engine on its own thread over crossbeam channels, the
//! deployment shape of a real kiosk.

use crate::error::RfipadError;
use crate::recognizer::{RecognizedStroke, Recognizer};
use crate::streams::TagStreamsBuilder;
use rfid_gen2::report::TagReport;
use serde::{Deserialize, Serialize};
use sigproc::frames::{FrameBuilder, FrameSeq};
use std::time::Instant;

/// An event emitted by the online pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PipelineEvent {
    /// A stroke completed and was recognized.
    StrokeDetected {
        /// The recognized stroke.
        stroke: RecognizedStroke,
        /// Wall-clock compute time spent producing this report, seconds
        /// (the paper's response-time metric).
        response_time_s: f64,
        /// Simulated-time delay between the stroke ending and the decision
        /// becoming possible (silence confirmation).
        decision_delay_s: f64,
    },
    /// An idle gap closed a letter.
    LetterRecognized {
        /// The deduced letter (`None` if the stroke sequence matches no
        /// grammar entry).
        letter: Option<char>,
        /// The strokes composed.
        strokes: Vec<RecognizedStroke>,
        /// Wall-clock compute time for the deduction, seconds.
        response_time_s: f64,
    },
}

/// Upper bound on how much history the engine keeps (seconds). A kiosk
/// runs for days; without a bound, a long quiet spell would grow the
/// buffer without limit. The bound comfortably exceeds any letter's
/// duration plus the letter gap.
const MAX_BUFFER_S: f64 = 30.0;

/// What [`OnlinePipeline::push`] does with a report whose timestamp is
/// older than one already consumed. A single reader stream is in time
/// order, but merging several antennas or sources can interleave slightly
/// stale reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum OutOfOrderPolicy {
    /// Clamp the stale timestamp forward to the newest time seen, keeping
    /// the report's signal content (the default: a few milliseconds of
    /// skew never matters to 100 ms frames).
    #[default]
    Clamp,
    /// Drop the stale report entirely.
    Drop,
}

/// Validating builder for [`OnlinePipeline`], the supported way to
/// construct one.
///
/// ```no_run
/// # fn demo(recognizer: rfipad::Recognizer) -> Result<(), rfipad::RfipadError> {
/// let pipeline = rfipad::OnlinePipeline::builder()
///     .recognizer(recognizer)
///     .letter_gap_s(1.5)
///     .build()?;
/// # let _ = pipeline; Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "call .build() to obtain the pipeline"]
pub struct OnlinePipelineBuilder {
    recognizer: Option<Recognizer>,
    letter_gap_s: Option<f64>,
    out_of_order: OutOfOrderPolicy,
}

impl OnlinePipelineBuilder {
    /// The recognizer the pipeline wraps (required).
    pub fn recognizer(mut self, recognizer: Recognizer) -> Self {
        self.recognizer = Some(recognizer);
        self
    }

    /// Idle time that closes a letter, simulated seconds (default 1.5 s,
    /// comfortable for the default writer profiles).
    pub fn letter_gap_s(mut self, letter_gap_s: f64) -> Self {
        self.letter_gap_s = Some(letter_gap_s);
        self
    }

    /// Policy for reports whose timestamps run backwards (default
    /// [`OutOfOrderPolicy::Clamp`]).
    pub fn out_of_order(mut self, policy: OutOfOrderPolicy) -> Self {
        self.out_of_order = policy;
        self
    }

    /// Validates the configuration and builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if no recognizer was given or
    /// `letter_gap_s` is not positive and finite.
    pub fn build(self) -> Result<OnlinePipeline, RfipadError> {
        let recognizer = self.recognizer.ok_or_else(|| {
            RfipadError::InvalidConfig("OnlinePipeline::builder() needs a recognizer".into())
        })?;
        let letter_gap_s = self.letter_gap_s.unwrap_or(1.5);
        if !(letter_gap_s > 0.0 && letter_gap_s.is_finite()) {
            return Err(RfipadError::InvalidConfig(
                "letter_gap_s must be positive and finite".into(),
            ));
        }
        let end_guard_s =
            recognizer.config().frame_len_s * recognizer.config().window_frames as f64;
        let noise_floors = recognizer.noise_floors();
        Ok(OnlinePipeline {
            recognizer,
            buffer: Vec::new(),
            cache: None,
            noise_floors,
            reported_spans: Vec::new(),
            pending_strokes: Vec::new(),
            last_processed: f64::NEG_INFINITY,
            end_guard_s,
            letter_gap_s,
            out_of_order: self.out_of_order,
            last_time: f64::NEG_INFINITY,
            out_of_order_count: 0,
            finished: false,
        })
    }
}

/// Incrementally maintained view of the buffered reports: calibrated
/// per-tag streams plus the per-frame RMS accumulators over them. Kept in
/// step with `OnlinePipeline::buffer` on every push and *dropped* whenever
/// the buffer is trimmed — a rebuild from a shorter history legitimately
/// re-picks unwrap state and the Eq. 8 re-centring offsets at the new first
/// sample, so patching the cache in place would diverge from a
/// from-scratch build.
#[derive(Debug, Default)]
struct StreamCache {
    streams: TagStreamsBuilder,
    /// Created at the first in-layout report; that report's time anchors
    /// frame 0, matching the batch build's `streams.start()`.
    frames: Option<FrameBuilder>,
}

/// Appends one (already clamped) report to the cache, mirroring what a
/// batch rebuild over the buffer would accumulate for it.
fn cache_append(
    cache: &mut StreamCache,
    recognizer: &Recognizer,
    noise_floors: &[f64],
    obs: &TagReport,
) {
    let layout = recognizer.layout();
    if let Some((tag, t, v)) = cache
        .streams
        .push(layout, Some(recognizer.calibration()), obs)
    {
        let frames = cache.frames.get_or_insert_with(|| {
            FrameBuilder::new(
                layout.len(),
                Some(noise_floors.to_vec()),
                t,
                recognizer.config().frame_len_s,
            )
        });
        let idx = layout.stream_index(tag).expect("accepted tag in layout");
        frames.push(idx, t, v);
    }
}

/// Streaming recognition engine.
#[derive(Debug)]
pub struct OnlinePipeline {
    recognizer: Recognizer,
    buffer: Vec<TagReport>,
    /// Incremental streams + frames over `buffer`; `None` after a trim
    /// until the next [`process_into`](Self::process_into) rebuilds it.
    cache: Option<StreamCache>,
    /// Per-stream noise floors in layout order (static per calibration).
    noise_floors: Vec<f64>,
    /// Spans already reported (by their start time), kept sorted.
    reported_spans: Vec<f64>,
    pending_strokes: Vec<RecognizedStroke>,
    last_processed: f64,
    /// Simulated seconds of silence that confirm a stroke has ended.
    end_guard_s: f64,
    /// Simulated seconds of silence that close a letter.
    letter_gap_s: f64,
    /// What to do with reports whose timestamps run backwards.
    out_of_order: OutOfOrderPolicy,
    /// Newest report timestamp consumed so far.
    last_time: f64,
    /// Reports that arrived with a timestamp older than `last_time`.
    out_of_order_count: u64,
    /// Whether [`OnlinePipeline::finish`] already flushed the stream.
    finished: bool,
}

impl OnlinePipeline {
    /// Starts a validating builder ([`OnlinePipelineBuilder`]).
    pub fn builder() -> OnlinePipelineBuilder {
        OnlinePipelineBuilder::default()
    }

    /// Creates an engine. `letter_gap_s` is the idle time that closes a
    /// letter (1.5 s is comfortable for the default writer profiles).
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] if `letter_gap_s` is not
    /// positive.
    #[deprecated(note = "use OnlinePipeline::builder() instead")]
    pub fn new(recognizer: Recognizer, letter_gap_s: f64) -> Result<Self, RfipadError> {
        Self::builder()
            .recognizer(recognizer)
            .letter_gap_s(letter_gap_s)
            .build()
    }

    /// The wrapped recognizer.
    pub fn recognizer(&self) -> &Recognizer {
        &self.recognizer
    }

    /// The idle gap (simulated seconds) that closes a letter.
    pub fn letter_gap_s(&self) -> f64 {
        self.letter_gap_s
    }

    /// How many reports arrived with a timestamp older than an already
    /// consumed one (and were clamped or dropped per the configured
    /// [`OutOfOrderPolicy`]).
    pub fn out_of_order_count(&self) -> u64 {
        self.out_of_order_count
    }

    /// Feeds one tag report; returns any events it triggered.
    ///
    /// Reports are expected in time order (a single reader stream is);
    /// stale timestamps from multi-antenna or multi-source merges are
    /// clamped or dropped per the configured [`OutOfOrderPolicy`] and
    /// counted in [`OnlinePipeline::out_of_order_count`]. Feeding after
    /// [`OnlinePipeline::finish`] resumes the stream.
    pub fn push(&mut self, obs: TagReport) -> Vec<PipelineEvent> {
        let mut events = Vec::new();
        self.push_into(obs, &mut events);
        events
    }

    /// Like [`push`](Self::push), but appends any triggered events to
    /// `events` instead of allocating a fresh vector — the hot-path entry
    /// point for callers that reuse one event buffer across reports.
    pub fn push_into(&mut self, mut obs: TagReport, events: &mut Vec<PipelineEvent>) {
        self.finished = false;
        let metrics = crate::telemetry::stage_metrics();
        metrics.reports.inc();
        if obs.time < self.last_time {
            self.out_of_order_count += 1;
            // Mirror into the durable registry counters: the per-pipeline
            // count above dies with the session, these survive eviction.
            match self.out_of_order {
                OutOfOrderPolicy::Clamp => {
                    metrics.out_of_order_clamped.inc();
                    obs.time = self.last_time;
                }
                OutOfOrderPolicy::Drop => {
                    metrics.out_of_order_dropped.inc();
                    return;
                }
            }
        }
        self.last_time = obs.time;
        let now = obs.time;
        self.buffer.push(obs);
        // Keep the incremental cache in step with the buffer. The clamped
        // timestamp was fixed above, so the cache sees exactly what a
        // rebuild over the buffer would see. A cache dropped by a trim is
        // rebuilt lazily at the next process tick.
        if let Some(cache) = self.cache.as_mut() {
            cache_append(cache, &self.recognizer, &self.noise_floors, &obs);
        }
        // Bound the history: drop everything older than the retention
        // window, but never cut into a pending (unclosed) letter.
        let keep_from = self
            .pending_strokes
            .first()
            .map(|s| s.span.start - 1.0)
            .unwrap_or(f64::INFINITY)
            .min(now - MAX_BUFFER_S);
        if self
            .buffer
            .first()
            .map(|o| o.time < keep_from - 5.0)
            .unwrap_or(false)
        {
            self.buffer.retain(|o| o.time >= keep_from);
            // Spans older than the retained history can never re-segment,
            // so their dedup entries are dead weight — drop them too.
            self.reported_spans.retain(|&s| s >= keep_from);
            // The shortened history re-anchors unwrapping and Eq. 8
            // offsets; the incremental cache must be rebuilt from it.
            self.cache = None;
        }
        // Re-evaluate once per frame, not per read.
        if now - self.last_processed < self.recognizer.config().frame_len_s {
            return;
        }
        self.last_processed = now;
        self.process_into(now, events);
    }

    /// Feeds a batch of reports in order, appending any triggered events to
    /// `events`. Equivalent to pushing each report individually; one event
    /// buffer serves the whole batch.
    pub fn push_batch(
        &mut self,
        reports: impl IntoIterator<Item = TagReport>,
        events: &mut Vec<PipelineEvent>,
    ) {
        for obs in reports {
            self.push_into(obs, events);
        }
    }

    /// Flushes the engine at end of input (closes any pending stroke or
    /// letter regardless of gaps).
    ///
    /// Idempotent: a second `finish` without an intervening
    /// [`OnlinePipeline::push`] returns no events, so drain-then-close
    /// sequences (and engine eviction racing an explicit close) cannot
    /// duplicate reports.
    pub fn finish(&mut self) -> Vec<PipelineEvent> {
        let mut events = Vec::new();
        self.finish_into(&mut events);
        events
    }

    /// Like [`finish`](Self::finish), but appends any events to `events`.
    pub fn finish_into(&mut self, events: &mut Vec<PipelineEvent>) {
        if self.finished {
            return;
        }
        self.finished = true;
        let now = self
            .buffer
            .last()
            .map(|o| o.time + self.letter_gap_s + self.end_guard_s)
            .unwrap_or(0.0);
        self.process_into(now, events);
    }

    /// Rebuilds the incremental cache from the buffer if a trim dropped it.
    fn ensure_cache(&mut self) {
        if self.cache.is_some() {
            return;
        }
        let mut cache = StreamCache::default();
        for obs in &self.buffer {
            cache_append(&mut cache, &self.recognizer, &self.noise_floors, obs);
        }
        self.cache = Some(cache);
    }

    /// Whether a span starting at `start` was already reported, within the
    /// ±0.25 s dedup tolerance. `reported_spans` is sorted, so this is a
    /// binary search plus a scan bounded by the tolerance window.
    fn span_already_reported(&self, start: f64) -> bool {
        let lo = self.reported_spans.partition_point(|&s| s < start - 0.25);
        self.reported_spans[lo..]
            .iter()
            .take_while(|&&s| s < start + 0.25)
            .any(|&s| (s - start).abs() < 0.25)
    }

    /// Records a reported span start, keeping `reported_spans` sorted.
    fn mark_reported(&mut self, start: f64) {
        let at = self.reported_spans.partition_point(|&s| s < start);
        self.reported_spans.insert(at, start);
    }

    fn process_into(&mut self, now: f64, events: &mut Vec<PipelineEvent>) {
        let metrics = crate::telemetry::stage_metrics();
        let compute_start = Instant::now();
        // The cache already tracks every buffered report (rebuilt here only
        // after a trim), so the steady-state tick is O(new samples) — cut
        // the frame sequence from the running accumulators instead of
        // rebuilding streams and re-slicing the whole window.
        {
            let _span = obs::span!(metrics.framing);
            self.ensure_cache();
        }
        let mut cache = self.cache.take().expect("ensured above");
        let segmentation = {
            let _span = obs::span!(metrics.segmentation);
            let frame_seq = match (&mut cache.frames, cache.streams.streams().end()) {
                (Some(frames), Some(end)) => frames.build(end),
                _ => FrameSeq::default(),
            };
            self.recognizer.segment_frames(&frame_seq)
        };
        let streams = cache.streams.streams();
        let mut cache_invalidated = false;

        // Report every span that ended long enough ago and is new.
        for &span in &segmentation.spans {
            let confirmed = now - span.end >= self.end_guard_s;
            if confirmed && !self.span_already_reported(span.start) {
                let stroke_t0 = Instant::now();
                let recognized = {
                    let _span = obs::span!(metrics.motion);
                    self.recognizer.recognize_span(streams, span)
                };
                if let Some(stroke) = recognized {
                    self.mark_reported(span.start);
                    self.pending_strokes.push(stroke.clone());
                    metrics.strokes.inc();
                    events.push(PipelineEvent::StrokeDetected {
                        stroke,
                        response_time_s: stroke_t0.elapsed().as_secs_f64()
                            + compute_start.elapsed().as_secs_f64(),
                        decision_delay_s: self.end_guard_s,
                    });
                } else {
                    // Unclassifiable span: remember it so we do not retry
                    // forever.
                    metrics.rejected_spans.inc();
                    obs::debug!(
                        "rejected unclassifiable span";
                        start = format!("{:.2}", span.start),
                        end = format!("{:.2}", span.end)
                    );
                    self.mark_reported(span.start);
                }
            }
        }

        // Close the letter after a long idle gap. The gap is measured from
        // the latest *activity* — a stroke in progress (active frames not
        // yet confirmed as a span) holds the letter open.
        let last_activity = segmentation
            .frames
            .iter()
            .rev()
            .find(|f| f.active)
            .map(|f| f.time + self.recognizer.config().frame_len_s)
            .unwrap_or(f64::NEG_INFINITY);
        if let Some(last) = self.pending_strokes.last() {
            let idle_anchor = last.span.end.max(last_activity);
            if now - idle_anchor >= self.letter_gap_s {
                let t0 = Instant::now();
                let observed: Vec<_> = self
                    .pending_strokes
                    .iter()
                    .map(|s| s.to_observed(self.recognizer.layout()))
                    .collect();
                let letter = {
                    let _span = obs::span!(metrics.grammar);
                    self.recognizer.grammar().deduce_fuzzy(&observed)
                };
                metrics.letters.inc();
                let strokes = std::mem::take(&mut self.pending_strokes);
                let letter_end = strokes.last().map(|s| s.span.end).unwrap_or(now);
                events.push(PipelineEvent::LetterRecognized {
                    letter,
                    strokes,
                    response_time_s: t0.elapsed().as_secs_f64(),
                });
                // Trim the buffer: keep only observations after the letter
                // (plus a margin for the next calibration-free suppression).
                self.buffer.retain(|o| o.time > letter_end);
                self.reported_spans.clear();
                // The trim re-anchors stream centring for the next letter;
                // drop the cache so it is rebuilt from the kept reports.
                cache_invalidated = true;
            }
        }
        if !cache_invalidated {
            self.cache = Some(cache);
        }
    }
}

#[cfg(test)]
impl OnlinePipeline {
    /// Test oracle: the incrementally maintained cache must equal a
    /// from-scratch rebuild over the current buffer — streams *and* frames,
    /// bit for bit. Rebuilds the cache first if a trim dropped it.
    fn assert_cache_matches_rebuild(&mut self) {
        self.ensure_cache();
        let cache = self.cache.as_ref().expect("just ensured");
        let fresh = self.recognizer.streams(&self.buffer);
        assert_eq!(
            cache.streams.streams(),
            &fresh,
            "cached streams diverged from a rebuild over the buffer"
        );
        if let Some(frames) = cache.frames.as_ref() {
            let start = fresh.start().expect("cache has samples");
            let end = fresh.end().expect("cache has samples");
            assert_eq!(frames.start(), start, "frame anchor diverged");
            let batch = FrameSeq::build_with_floors(
                &fresh.phase_series(self.recognizer.layout()),
                Some(&self.noise_floors),
                start,
                end,
                self.recognizer.config().frame_len_s,
            );
            assert_eq!(
                frames.clone().build(end),
                batch,
                "cached frames diverged from a batch build"
            );
        } else {
            assert_eq!(fresh.start(), None, "frames missing despite samples");
        }
    }
}

/// Runs an [`OnlinePipeline`] on its own thread: observations in on one
/// channel, [`PipelineEvent`]s out on another. The thread exits when the
/// input channel closes, flushing pending state first.
pub fn spawn(
    mut pipeline: OnlinePipeline,
    input: crossbeam::channel::Receiver<TagReport>,
) -> (
    std::thread::JoinHandle<()>,
    crossbeam::channel::Receiver<PipelineEvent>,
) {
    let (tx, rx) = crossbeam::channel::unbounded();
    let handle = std::thread::spawn(move || {
        let mut events = Vec::new();
        for obs in input.iter() {
            pipeline.push_into(obs, &mut events);
            for event in events.drain(..) {
                if tx.send(event).is_err() {
                    return;
                }
            }
        }
        pipeline.finish_into(&mut events);
        for event in events.drain(..) {
            if tx.send(event).is_err() {
                return;
            }
        }
    });
    (handle, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use rfid_gen2::report::TagId;
    use std::f64::consts::TAU;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(5, 5, (0..25).map(TagId).collect())
    }

    fn obs(tag: TagId, time: f64, phase: f64, rss: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), rss)
    }

    /// Recording with a column-2 downward sweep during [2, 4) and silence
    /// until 7 s.
    fn recording() -> Vec<TagReport> {
        let l = layout();
        let mut out = Vec::new();
        for step in 0..350 {
            let t = step as f64 * 0.02;
            for r in 0..5usize {
                for c in 0..5usize {
                    let id = l.at(r, c);
                    let base = (r * 5 + c) as f64 * 0.37 + 0.4;
                    let cross = 2.2 + 0.36 * r as f64;
                    let near = (t - cross).abs() < 0.5 && (2.0..4.0).contains(&t);
                    let col_factor = 1.0 / (1.0 + (c as f64 - 2.0).powi(2));
                    let (wiggle, dip) = if near {
                        (
                            0.9 * col_factor * ((t - cross) * 18.0).sin(),
                            -7.0 * col_factor * (-(t - cross) * (t - cross) / 0.01).exp(),
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    out.push(obs(
                        id,
                        t + (r * 5 + c) as f64 * 1e-4,
                        base + wiggle,
                        -45.0 + dip,
                    ));
                }
            }
        }
        out
    }

    fn pipeline() -> OnlinePipeline {
        let l = layout();
        let static_part: Vec<TagReport> =
            recording().into_iter().filter(|o| o.time < 2.0).collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&l, &static_part, &config).unwrap();
        let rec = Recognizer::builder()
            .layout(l)
            .calibration(cal)
            .config(config)
            .build()
            .unwrap();
        OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(1.5)
            .build()
            .unwrap()
    }

    #[test]
    fn stroke_and_letter_events_emitted_in_order() {
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording() {
            events.extend(p.push(o));
        }
        events.extend(p.finish());
        let strokes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::StrokeDetected { .. }))
            .collect();
        assert_eq!(strokes.len(), 1, "events: {}", events.len());
        let letters: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::LetterRecognized {
                    letter, strokes, ..
                } => Some((letter, strokes.len())),
                _ => None,
            })
            .collect();
        assert_eq!(letters.len(), 1);
        // A lone vertical bar is the letter I.
        assert_eq!(letters[0], (&Some('I'), 1));
    }

    #[test]
    fn stroke_reported_before_letter() {
        let mut p = pipeline();
        let mut kinds = Vec::new();
        for o in recording() {
            for e in p.push(o) {
                kinds.push(match e {
                    PipelineEvent::StrokeDetected { .. } => "stroke",
                    PipelineEvent::LetterRecognized { .. } => "letter",
                });
            }
        }
        for e in p.finish() {
            kinds.push(match e {
                PipelineEvent::StrokeDetected { .. } => "stroke",
                PipelineEvent::LetterRecognized { .. } => "letter",
            });
        }
        assert_eq!(kinds, vec!["stroke", "letter"]);
    }

    #[test]
    fn response_times_are_small() {
        let mut p = pipeline();
        let mut response = None;
        for o in recording() {
            for e in p.push(o) {
                if let PipelineEvent::StrokeDetected {
                    response_time_s, ..
                } = e
                {
                    response = Some(response_time_s);
                }
            }
        }
        p.finish();
        let r = response.expect("stroke reported");
        // The paper reports < 0.1 s on a 2013 laptop; allow headroom for
        // debug builds.
        assert!(r < 2.0, "response {r}");
        assert!(r > 0.0);
    }

    #[test]
    fn quiet_stream_emits_nothing() {
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording().into_iter().filter(|o| o.time < 1.8) {
            events.extend(p.push(o));
        }
        events.extend(p.finish());
        assert!(events.is_empty());
    }

    #[test]
    fn rejects_nonpositive_letter_gap() {
        let p = pipeline();
        let rec = p.recognizer;
        assert!(OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_requires_recognizer_and_defaults_gap() {
        assert!(OnlinePipeline::builder().build().is_err());
        let p = pipeline();
        let built = OnlinePipeline::builder()
            .recognizer(p.recognizer)
            .build()
            .expect("defaults valid");
        assert_eq!(built.letter_gap_s(), 1.5);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_new_still_constructs() {
        let p = pipeline();
        let built = OnlinePipeline::new(p.recognizer, 2.0).expect("shim works");
        assert_eq!(built.letter_gap_s(), 2.0);
    }

    #[test]
    fn finish_is_idempotent() {
        // Stop the feed right after the stroke, before any silence: the
        // whole stroke + letter decision then rides on finish().
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording().into_iter().filter(|o| o.time < 4.2) {
            events.extend(p.push(o));
        }
        let first = p.finish();
        assert!(
            first
                .iter()
                .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. })),
            "finish closes the pending letter: {first:?}"
        );
        assert!(p.finish().is_empty(), "second finish re-emitted events");
        assert!(p.finish().is_empty());
    }

    #[test]
    fn push_after_finish_resumes_the_stream() {
        let mut p = pipeline();
        let all = recording();
        for o in all.iter().filter(|o| o.time < 5.0) {
            p.push(*o);
        }
        let mid = p.finish();
        assert!(mid
            .iter()
            .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. })));
        // The stream resumes: further quiet traffic is consumed normally
        // and a later finish does not duplicate the closed letter.
        for o in all.iter().filter(|o| o.time >= 5.0) {
            p.push(*o);
        }
        let tail = p.finish();
        assert!(
            !tail.iter().any(|e| matches!(
                e,
                PipelineEvent::LetterRecognized {
                    letter: Some(_),
                    ..
                }
            )),
            "resumed quiet tail re-reported the letter: {tail:?}"
        );
    }

    #[test]
    fn push_into_batch_and_push_agree() {
        let mut serial = pipeline();
        let mut serial_events = Vec::new();
        for o in recording() {
            serial_events.extend(serial.push(o));
        }
        serial_events.extend(serial.finish());

        let mut batched = pipeline();
        let mut batched_events = Vec::new();
        for chunk in recording().chunks(64) {
            batched.push_batch(chunk.iter().copied(), &mut batched_events);
        }
        batched.finish_into(&mut batched_events);

        assert_eq!(serial_events.len(), batched_events.len());
        for (a, b) in serial_events.iter().zip(&batched_events) {
            // Response times are wall-clock and differ run to run; the
            // recognized content must be identical.
            match (a, b) {
                (
                    PipelineEvent::StrokeDetected { stroke: sa, .. },
                    PipelineEvent::StrokeDetected { stroke: sb, .. },
                ) => assert_eq!(sa, sb),
                (
                    PipelineEvent::LetterRecognized {
                        letter: la,
                        strokes: sa,
                        ..
                    },
                    PipelineEvent::LetterRecognized {
                        letter: lb,
                        strokes: sb,
                        ..
                    },
                ) => {
                    assert_eq!(la, lb);
                    assert_eq!(sa, sb);
                }
                other => panic!("event kinds diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn cache_invalidated_by_letter_close_then_resumes() {
        let mut p = pipeline();
        let mut letter_seen = false;
        for o in recording() {
            let events = p.push(o);
            if events
                .iter()
                .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. }))
            {
                // The letter close trims the buffer and must drop the
                // cache with it, in the same tick.
                assert!(p.cache.is_none(), "letter-close trim left a stale cache");
                letter_seen = true;
            }
        }
        assert!(letter_seen, "recording closes a letter mid-feed");
        // Later ticks rebuild the cache from the trimmed buffer and then
        // maintain it incrementally; it must match a rebuild exactly.
        assert!(p.cache.is_some(), "cache not rebuilt after the letter");
        p.assert_cache_matches_rebuild();
        // finish-then-resume: the flush and the resumed traffic keep the
        // cache in step with the buffer.
        p.finish();
        for mut o in recording().into_iter().filter(|o| o.time < 1.0) {
            o.time += 8.0;
            p.push(o);
        }
        p.assert_cache_matches_rebuild();
    }

    #[test]
    fn cache_consistent_under_out_of_order_clamp() {
        let p = pipeline();
        let mut clamping = OnlinePipeline::builder()
            .recognizer(p.recognizer)
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Clamp)
            .build()
            .unwrap();
        for (i, mut o) in recording().into_iter().enumerate() {
            if i % 8 == 3 {
                o.time -= 0.04;
            }
            clamping.push(o);
        }
        assert!(clamping.out_of_order_count() > 0, "stale reports seen");
        clamping.assert_cache_matches_rebuild();
    }

    #[test]
    fn cache_consistent_under_out_of_order_drop() {
        let p = pipeline();
        let mut dropping = OnlinePipeline::builder()
            .recognizer(p.recognizer)
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Drop)
            .build()
            .unwrap();
        for (i, mut o) in recording().into_iter().enumerate() {
            if i % 10 == 7 {
                o.time -= 0.05;
            }
            dropping.push(o);
        }
        assert!(dropping.out_of_order_count() > 0, "stale reports seen");
        dropping.assert_cache_matches_rebuild();
    }

    #[test]
    fn out_of_order_clamped_and_counted() {
        let p = pipeline();
        let mut clamping = OnlinePipeline::builder()
            .recognizer(p.recognizer)
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Clamp)
            .build()
            .unwrap();
        let mut events = Vec::new();
        for (i, mut o) in recording().into_iter().enumerate() {
            // A second antenna's reports lag by 40 ms every eighth read.
            if i % 8 == 3 {
                o.time -= 0.04;
            }
            events.extend(clamping.push(o));
        }
        events.extend(clamping.finish());
        assert!(clamping.out_of_order_count() > 0, "stale reports seen");
        // Clamped timestamps never run backwards inside the buffer.
        assert!(clamping.buffer.windows(2).all(|w| w[0].time <= w[1].time));
        // The sweep still resolves to the same letter.
        assert!(events.iter().any(|e| matches!(
            e,
            PipelineEvent::LetterRecognized {
                letter: Some('I'),
                ..
            }
        )));
    }

    #[test]
    fn out_of_order_drop_discards_stale_reports() {
        let p = pipeline();
        let mut dropping = OnlinePipeline::builder()
            .recognizer(p.recognizer)
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Drop)
            .build()
            .unwrap();
        let reports = recording();
        let n = reports.len();
        for (i, mut o) in reports.into_iter().enumerate() {
            if i % 10 == 7 {
                o.time -= 0.05;
            }
            dropping.push(o);
        }
        assert!(dropping.out_of_order_count() > 0);
        assert!(
            (dropping.buffer.len() as u64) <= n as u64 - dropping.out_of_order_count()
                || dropping.buffer.len() < n,
            "dropped reports must not enter the buffer"
        );
        assert!(dropping.buffer.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn threaded_spawn_round_trip() {
        let p = pipeline();
        let (obs_tx, obs_rx) = crossbeam::channel::unbounded();
        let (handle, events) = spawn(p, obs_rx);
        for o in recording() {
            obs_tx.send(o).expect("pipeline alive");
        }
        drop(obs_tx);
        let collected: Vec<PipelineEvent> = events.iter().collect();
        handle.join().expect("no panic");
        assert!(collected.iter().any(|e| matches!(
            e,
            PipelineEvent::LetterRecognized {
                letter: Some('I'),
                ..
            }
        )));
    }
}

#[cfg(test)]
mod buffer_tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use rfid_gen2::report::TagId;

    fn quiet_obs(tag: u64, time: f64) -> TagReport {
        TagReport::synthetic(TagId(tag), time, 1.0 + tag as f64, -45.0)
    }

    fn quiet_pipeline(letter_gap_s: f64) -> OnlinePipeline {
        let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| (0..3).map(move |i| quiet_obs(i, j as f64 * 0.05 + i as f64 * 0.01)))
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config).unwrap();
        let rec = Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()
            .unwrap();
        OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(letter_gap_s)
            .build()
            .unwrap()
    }

    /// A hand-built pending stroke, for exercising the retention logic
    /// without driving a full recognition.
    fn fake_stroke(start: f64, end: f64) -> RecognizedStroke {
        use crate::motion::RecognizedMotion;
        use crate::segmentation::StrokeSpan;
        use hand_kinematics::stroke::{Stroke, StrokeShape};
        use sigproc::grid::BinaryGrid;
        let mut mask = BinaryGrid::empty(1, 3);
        mask.set(0, 1, true);
        RecognizedStroke {
            stroke: Stroke::new(StrokeShape::Click),
            span: StrokeSpan { start, end },
            motion: RecognizedMotion {
                shape: StrokeShape::Click,
                mask,
                centroid: (0.0, 1.0),
                bbox: (0, 1, 0, 1),
            },
        }
    }

    #[test]
    fn buffer_stays_bounded_over_long_quiet_runs() {
        let mut pipeline = quiet_pipeline(1.5);

        // Two simulated minutes of quiet traffic at ~60 reads/s (enough
        // to overflow an unbounded buffer four times over).
        let mut max_len = 0usize;
        for step in 0..7_200u64 {
            let t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, t));
            max_len = max_len.max(pipeline.buffer.len());
        }
        // 30 s of history at 60 reads/s is 1800 reads; allow slack for the
        // trim hysteresis.
        assert!(
            pipeline.buffer.len() < 2_400,
            "buffer grew to {}",
            pipeline.buffer.len()
        );
        assert!(max_len < 2_800, "peak buffer {}", max_len);
    }
    #[test]
    fn trimming_drops_history_older_than_window() {
        let mut pipeline = quiet_pipeline(1.5);
        // One simulated minute of quiet traffic: the window is 30 s, so
        // the earliest reads must be long gone by the end.
        let mut last_t = 0.0;
        for step in 0..3_600u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        let first = pipeline.buffer.first().expect("buffer non-empty").time;
        assert!(first > 2.0, "old history survived: first read at {first}");
        // Nothing older than the window plus the trim hysteresis remains.
        assert!(
            first >= last_t - MAX_BUFFER_S - 5.0 - 1e-9,
            "first {first} vs now {last_t}"
        );
    }

    #[test]
    fn pending_letter_holds_history_past_the_window() {
        // A letter gap far longer than the run keeps the stroke pending
        // throughout; its history must survive even past MAX_BUFFER_S.
        let mut pipeline = quiet_pipeline(1_000.0);
        pipeline.pending_strokes.push(fake_stroke(2.0, 3.0));
        let mut last_t = 0.0;
        for step in 0..2_400u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        assert!(last_t > MAX_BUFFER_S + 5.0, "run long enough to trim");
        let first = pipeline.buffer.first().expect("buffer non-empty").time;
        // Retention is anchored 1 s before the pending stroke, not at the
        // rolling window edge.
        assert!(
            first <= 2.0,
            "pending letter history trimmed: first {first}"
        );
        assert!(!pipeline.pending_strokes.is_empty());
    }

    #[test]
    fn cache_consistent_across_retention_trims() {
        let mut pipeline = quiet_pipeline(1.5);
        let mut trims = 0usize;
        for step in 0..3_600u64 {
            let t = step as f64 / 60.0;
            let before = pipeline.buffer.len();
            pipeline.push(quiet_obs(step % 3, t));
            if pipeline.buffer.len() <= before {
                trims += 1;
            }
            // Spot-check: the incrementally maintained cache never drifts
            // from a rebuild over the (possibly trimmed) buffer.
            if step % 600 == 599 {
                pipeline.assert_cache_matches_rebuild();
            }
        }
        assert!(trims > 0, "run long enough to trim history");
        pipeline.assert_cache_matches_rebuild();
    }

    #[test]
    fn reported_spans_stay_sorted() {
        let mut pipeline = quiet_pipeline(1.5);
        // Out-of-sorted-order marks must land sorted (the dedup relies on
        // partition_point).
        pipeline.mark_reported(2.5);
        pipeline.mark_reported(1.0);
        pipeline.mark_reported(4.0);
        pipeline.mark_reported(1.7);
        assert_eq!(pipeline.reported_spans, vec![1.0, 1.7, 2.5, 4.0]);
        assert!(pipeline.span_already_reported(1.2));
        assert!(pipeline.span_already_reported(2.6));
        assert!(!pipeline.span_already_reported(3.2));
        assert!(!pipeline.span_already_reported(0.5));
    }

    #[test]
    fn reported_spans_trimmed_with_buffer() {
        let mut pipeline = quiet_pipeline(1.5);
        // Simulate spans reported early in a run whose letter never closed
        // (e.g. unclassifiable blips): their dedup entries must not leak.
        pipeline.reported_spans.push(1.0);
        pipeline.reported_spans.push(2.5);
        let mut last_t = 0.0;
        for step in 0..3_600u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        assert!(
            pipeline
                .reported_spans
                .iter()
                .all(|&s| s >= last_t - MAX_BUFFER_S - 5.0),
            "stale reported spans retained: {:?}",
            pipeline.reported_spans
        );
    }
}
