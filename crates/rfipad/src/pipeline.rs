//! The online recognition engine (§V-D).
//!
//! RFIPad reacts to hand motions as they happen: tag reports stream in, and
//! as soon as a stroke's end is confirmed by a short silence the stroke is
//! recognized and reported; when the writer stays idle long enough the
//! buffered strokes are composed into a letter. Response time — the gap
//! between a motion ending and its report — is tracked per event, matching
//! the paper's Fig. 24 evaluation.
//!
//! [`OnlinePipeline`] is a thin facade over [`crate::stage::StageGraph`],
//! the typed five-stage cascade (framing → segmentation → motion → letter
//! → grammar); every push and flush delegates to the graph. Callers that
//! want per-stage access, custom composition, or checkpoint/restore for
//! session migration can drive the graph directly.
//!
//! [`spawn`] runs the engine on its own thread over crossbeam channels, the
//! deployment shape of a real kiosk.

use crate::error::RfipadError;
use crate::recognizer::{RecognizedStroke, Recognizer};
use crate::stage::{PipelineCheckpoint, StageGraph};
use rfid_gen2::report::TagReport;
use serde::{Deserialize, Serialize};

/// An event emitted by the online pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PipelineEvent {
    /// A stroke completed and was recognized.
    StrokeDetected {
        /// The recognized stroke.
        stroke: RecognizedStroke,
        /// Wall-clock compute time spent producing this report, seconds
        /// (the paper's response-time metric).
        response_time_s: f64,
        /// Simulated-time delay between the stroke ending and the decision
        /// becoming possible (silence confirmation).
        decision_delay_s: f64,
    },
    /// An idle gap closed a letter.
    LetterRecognized {
        /// The deduced letter (`None` if the stroke sequence matches no
        /// grammar entry).
        letter: Option<char>,
        /// The strokes composed.
        strokes: Vec<RecognizedStroke>,
        /// Wall-clock compute time for the deduction, seconds.
        response_time_s: f64,
    },
}

/// What [`OnlinePipeline::push`] does with a report whose timestamp is
/// older than one already consumed. A single reader stream is in time
/// order, but merging several antennas or sources can interleave slightly
/// stale reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum OutOfOrderPolicy {
    /// Clamp the stale timestamp forward to the newest time seen, keeping
    /// the report's signal content (the default: a few milliseconds of
    /// skew never matters to 100 ms frames).
    #[default]
    Clamp,
    /// Drop the stale report entirely.
    Drop,
}

/// Validating builder for [`OnlinePipeline`], the supported way to
/// construct one.
///
/// ```no_run
/// # fn demo(recognizer: rfipad::Recognizer) -> Result<(), rfipad::RfipadError> {
/// let pipeline = rfipad::OnlinePipeline::builder()
///     .recognizer(recognizer)
///     .letter_gap_s(1.5)
///     .build()?;
/// # let _ = pipeline; Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "call .build() to obtain the pipeline"]
pub struct OnlinePipelineBuilder {
    recognizer: Option<Recognizer>,
    letter_gap_s: Option<f64>,
    out_of_order: OutOfOrderPolicy,
}

impl OnlinePipelineBuilder {
    /// The recognizer the pipeline wraps (required).
    pub fn recognizer(mut self, recognizer: Recognizer) -> Self {
        self.recognizer = Some(recognizer);
        self
    }

    /// Idle time that closes a letter, simulated seconds (default 1.5 s,
    /// comfortable for the default writer profiles).
    pub fn letter_gap_s(mut self, letter_gap_s: f64) -> Self {
        self.letter_gap_s = Some(letter_gap_s);
        self
    }

    /// Policy for reports whose timestamps run backwards (default
    /// [`OutOfOrderPolicy::Clamp`]).
    pub fn out_of_order(mut self, policy: OutOfOrderPolicy) -> Self {
        self.out_of_order = policy;
        self
    }

    /// Validates the configuration and builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::InvalidConfig`] naming the offending field
    /// (`OnlinePipelineBuilder.recognizer: required but not set`, or
    /// `OnlinePipelineBuilder.letter_gap_s: must be positive and finite`).
    pub fn build(self) -> Result<OnlinePipeline, RfipadError> {
        let recognizer = self.recognizer.ok_or_else(|| {
            RfipadError::invalid_field(
                "OnlinePipelineBuilder",
                "recognizer",
                "required but not set",
            )
        })?;
        let mut builder = StageGraph::builder()
            .out_of_order(self.out_of_order)
            .recognizer(recognizer);
        if let Some(letter_gap_s) = self.letter_gap_s {
            if !(letter_gap_s > 0.0 && letter_gap_s.is_finite()) {
                return Err(RfipadError::invalid_field(
                    "OnlinePipelineBuilder",
                    "letter_gap_s",
                    format!("must be positive and finite, got {letter_gap_s}"),
                ));
            }
            builder = builder.letter_gap_s(letter_gap_s);
        }
        Ok(OnlinePipeline {
            graph: builder.build()?,
        })
    }
}

/// Streaming recognition engine: a facade over the typed
/// [`StageGraph`]. All state lives in the graph's stages; this type only
/// preserves the original push/finish API shape.
#[derive(Debug)]
pub struct OnlinePipeline {
    graph: StageGraph,
}

impl OnlinePipeline {
    /// Starts a validating builder ([`OnlinePipelineBuilder`]).
    pub fn builder() -> OnlinePipelineBuilder {
        OnlinePipelineBuilder::default()
    }

    /// The wrapped recognizer.
    pub fn recognizer(&self) -> &Recognizer {
        self.graph.recognizer()
    }

    /// The idle gap (simulated seconds) that closes a letter.
    pub fn letter_gap_s(&self) -> f64 {
        self.graph.letter_gap_s()
    }

    /// How many reports arrived with a timestamp older than an already
    /// consumed one (and were clamped or dropped per the configured
    /// [`OutOfOrderPolicy`]).
    pub fn out_of_order_count(&self) -> u64 {
        self.graph.out_of_order_count()
    }

    /// The underlying stage graph.
    pub fn graph(&self) -> &StageGraph {
        &self.graph
    }

    /// The underlying stage graph, mutable.
    pub fn graph_mut(&mut self) -> &mut StageGraph {
        &mut self.graph
    }

    /// Unwraps the facade, returning the stage graph (how the ingest
    /// engine adopts a pipeline built by a caller).
    pub fn into_graph(self) -> StageGraph {
        self.graph
    }

    /// Feeds one tag report; returns any events it triggered.
    ///
    /// Reports are expected in time order (a single reader stream is);
    /// stale timestamps from multi-antenna or multi-source merges are
    /// clamped or dropped per the configured [`OutOfOrderPolicy`] and
    /// counted in [`OnlinePipeline::out_of_order_count`]. Feeding after
    /// [`OnlinePipeline::finish`] resumes the stream.
    pub fn push(&mut self, obs: TagReport) -> Vec<PipelineEvent> {
        self.graph.push(obs)
    }

    /// Like [`push`](Self::push), but appends any triggered events to
    /// `events` instead of allocating a fresh vector — the hot-path entry
    /// point for callers that reuse one event buffer across reports.
    pub fn push_into(&mut self, obs: TagReport, events: &mut Vec<PipelineEvent>) {
        self.graph.push_into(obs, events);
    }

    /// Feeds a batch of reports in order, appending any triggered events to
    /// `events`. Equivalent to pushing each report individually; one event
    /// buffer serves the whole batch.
    pub fn push_batch(
        &mut self,
        reports: impl IntoIterator<Item = TagReport>,
        events: &mut Vec<PipelineEvent>,
    ) {
        self.graph.push_batch(reports, events);
    }

    /// Flushes the engine at end of input (closes any pending stroke or
    /// letter regardless of gaps).
    ///
    /// Idempotent: a second `finish` without an intervening
    /// [`OnlinePipeline::push`] returns no events, so drain-then-close
    /// sequences (and engine eviction racing an explicit close) cannot
    /// duplicate reports.
    pub fn finish(&mut self) -> Vec<PipelineEvent> {
        self.graph.finish()
    }

    /// Like [`finish`](Self::finish), but appends any events to `events`.
    pub fn finish_into(&mut self, events: &mut Vec<PipelineEvent>) {
        self.graph.finish_into(events);
    }

    /// Captures the pipeline's full mutable state for session migration
    /// (see [`StageGraph::checkpoint`]).
    pub fn checkpoint(&self) -> PipelineCheckpoint {
        self.graph.checkpoint()
    }

    /// Restores a [`checkpoint`](Self::checkpoint) into this pipeline,
    /// replacing its state (see [`StageGraph::restore_checkpoint`]).
    ///
    /// # Errors
    ///
    /// Returns [`RfipadError::Checkpoint`] if the checkpoint is from a
    /// different configuration or fails its integrity checks.
    pub fn restore(&mut self, checkpoint: &PipelineCheckpoint) -> Result<(), RfipadError> {
        self.graph.restore_checkpoint(checkpoint)
    }
}

/// Runs an [`OnlinePipeline`] on its own thread: observations in on one
/// channel, [`PipelineEvent`]s out on another. The thread exits when the
/// input channel closes, flushing pending state first.
pub fn spawn(
    mut pipeline: OnlinePipeline,
    input: crossbeam::channel::Receiver<TagReport>,
) -> (
    std::thread::JoinHandle<()>,
    crossbeam::channel::Receiver<PipelineEvent>,
) {
    let (tx, rx) = crossbeam::channel::unbounded();
    let handle = std::thread::spawn(move || {
        let mut events = Vec::new();
        for obs in input.iter() {
            pipeline.push_into(obs, &mut events);
            for event in events.drain(..) {
                if tx.send(event).is_err() {
                    return;
                }
            }
        }
        pipeline.finish_into(&mut events);
        for event in events.drain(..) {
            if tx.send(event).is_err() {
                return;
            }
        }
    });
    (handle, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use rfid_gen2::report::TagId;
    use std::f64::consts::TAU;

    fn layout() -> ArrayLayout {
        ArrayLayout::new(5, 5, (0..25).map(TagId).collect())
    }

    fn obs(tag: TagId, time: f64, phase: f64, rss: f64) -> TagReport {
        TagReport::synthetic(tag, time, phase.rem_euclid(TAU), rss)
    }

    /// Recording with a column-2 downward sweep during [2, 4) and silence
    /// until 7 s.
    fn recording() -> Vec<TagReport> {
        let l = layout();
        let mut out = Vec::new();
        for step in 0..350 {
            let t = step as f64 * 0.02;
            for r in 0..5usize {
                for c in 0..5usize {
                    let id = l.at(r, c);
                    let base = (r * 5 + c) as f64 * 0.37 + 0.4;
                    let cross = 2.2 + 0.36 * r as f64;
                    let near = (t - cross).abs() < 0.5 && (2.0..4.0).contains(&t);
                    let col_factor = 1.0 / (1.0 + (c as f64 - 2.0).powi(2));
                    let (wiggle, dip) = if near {
                        (
                            0.9 * col_factor * ((t - cross) * 18.0).sin(),
                            -7.0 * col_factor * (-(t - cross) * (t - cross) / 0.01).exp(),
                        )
                    } else {
                        (0.0, 0.0)
                    };
                    out.push(obs(
                        id,
                        t + (r * 5 + c) as f64 * 1e-4,
                        base + wiggle,
                        -45.0 + dip,
                    ));
                }
            }
        }
        out
    }

    fn pipeline() -> OnlinePipeline {
        let l = layout();
        let static_part: Vec<TagReport> =
            recording().into_iter().filter(|o| o.time < 2.0).collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&l, &static_part, &config).unwrap();
        let rec = Recognizer::builder()
            .layout(l)
            .calibration(cal)
            .config(config)
            .build()
            .unwrap();
        OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(1.5)
            .build()
            .unwrap()
    }

    #[test]
    fn stroke_and_letter_events_emitted_in_order() {
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording() {
            events.extend(p.push(o));
        }
        events.extend(p.finish());
        let strokes: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, PipelineEvent::StrokeDetected { .. }))
            .collect();
        assert_eq!(strokes.len(), 1, "events: {}", events.len());
        let letters: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                PipelineEvent::LetterRecognized {
                    letter, strokes, ..
                } => Some((letter, strokes.len())),
                _ => None,
            })
            .collect();
        assert_eq!(letters.len(), 1);
        // A lone vertical bar is the letter I.
        assert_eq!(letters[0], (&Some('I'), 1));
    }

    #[test]
    fn stroke_reported_before_letter() {
        let mut p = pipeline();
        let mut kinds = Vec::new();
        for o in recording() {
            for e in p.push(o) {
                kinds.push(match e {
                    PipelineEvent::StrokeDetected { .. } => "stroke",
                    PipelineEvent::LetterRecognized { .. } => "letter",
                });
            }
        }
        for e in p.finish() {
            kinds.push(match e {
                PipelineEvent::StrokeDetected { .. } => "stroke",
                PipelineEvent::LetterRecognized { .. } => "letter",
            });
        }
        assert_eq!(kinds, vec!["stroke", "letter"]);
    }

    #[test]
    fn response_times_are_small() {
        let mut p = pipeline();
        let mut response = None;
        for o in recording() {
            for e in p.push(o) {
                if let PipelineEvent::StrokeDetected {
                    response_time_s, ..
                } = e
                {
                    response = Some(response_time_s);
                }
            }
        }
        p.finish();
        let r = response.expect("stroke reported");
        // The paper reports < 0.1 s on a 2013 laptop; allow headroom for
        // debug builds.
        assert!(r < 2.0, "response {r}");
        assert!(r > 0.0);
    }

    #[test]
    fn quiet_stream_emits_nothing() {
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording().into_iter().filter(|o| o.time < 1.8) {
            events.extend(p.push(o));
        }
        events.extend(p.finish());
        assert!(events.is_empty());
    }

    #[test]
    fn rejects_nonpositive_letter_gap() {
        let p = pipeline();
        let rec = p.recognizer().clone();
        assert!(OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(0.0)
            .build()
            .is_err());
    }

    #[test]
    fn builder_requires_recognizer_and_defaults_gap() {
        assert!(OnlinePipeline::builder().build().is_err());
        let p = pipeline();
        let built = OnlinePipeline::builder()
            .recognizer(p.recognizer().clone())
            .build()
            .expect("defaults valid");
        assert_eq!(built.letter_gap_s(), 1.5);
    }

    #[test]
    fn finish_is_idempotent() {
        // Stop the feed right after the stroke, before any silence: the
        // whole stroke + letter decision then rides on finish().
        let mut p = pipeline();
        let mut events = Vec::new();
        for o in recording().into_iter().filter(|o| o.time < 4.2) {
            events.extend(p.push(o));
        }
        let first = p.finish();
        assert!(
            first
                .iter()
                .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. })),
            "finish closes the pending letter: {first:?}"
        );
        assert!(p.finish().is_empty(), "second finish re-emitted events");
        assert!(p.finish().is_empty());
    }

    #[test]
    fn push_after_finish_resumes_the_stream() {
        let mut p = pipeline();
        let all = recording();
        for o in all.iter().filter(|o| o.time < 5.0) {
            p.push(*o);
        }
        let mid = p.finish();
        assert!(mid
            .iter()
            .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. })));
        // The stream resumes: further quiet traffic is consumed normally
        // and a later finish does not duplicate the closed letter.
        for o in all.iter().filter(|o| o.time >= 5.0) {
            p.push(*o);
        }
        let tail = p.finish();
        assert!(
            !tail.iter().any(|e| matches!(
                e,
                PipelineEvent::LetterRecognized {
                    letter: Some(_),
                    ..
                }
            )),
            "resumed quiet tail re-reported the letter: {tail:?}"
        );
    }

    #[test]
    fn push_into_batch_and_push_agree() {
        let mut serial = pipeline();
        let mut serial_events = Vec::new();
        for o in recording() {
            serial_events.extend(serial.push(o));
        }
        serial_events.extend(serial.finish());

        let mut batched = pipeline();
        let mut batched_events = Vec::new();
        for chunk in recording().chunks(64) {
            batched.push_batch(chunk.iter().copied(), &mut batched_events);
        }
        batched.finish_into(&mut batched_events);

        assert_eq!(serial_events.len(), batched_events.len());
        for (a, b) in serial_events.iter().zip(&batched_events) {
            // Response times are wall-clock and differ run to run; the
            // recognized content must be identical.
            match (a, b) {
                (
                    PipelineEvent::StrokeDetected { stroke: sa, .. },
                    PipelineEvent::StrokeDetected { stroke: sb, .. },
                ) => assert_eq!(sa, sb),
                (
                    PipelineEvent::LetterRecognized {
                        letter: la,
                        strokes: sa,
                        ..
                    },
                    PipelineEvent::LetterRecognized {
                        letter: lb,
                        strokes: sb,
                        ..
                    },
                ) => {
                    assert_eq!(la, lb);
                    assert_eq!(sa, sb);
                }
                other => panic!("event kinds diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn facade_and_raw_graph_agree() {
        // The facade must be a pure delegation layer: driving the graph
        // directly produces identical recognized content.
        let mut facade = pipeline();
        let mut facade_events = Vec::new();
        for o in recording() {
            facade.push_into(o, &mut facade_events);
        }
        facade.finish_into(&mut facade_events);

        let mut graph = pipeline().into_graph();
        let mut graph_events = Vec::new();
        for o in recording() {
            graph.push_into(o, &mut graph_events);
        }
        graph.finish_into(&mut graph_events);

        assert_eq!(facade_events.len(), graph_events.len());
        for (a, b) in facade_events.iter().zip(&graph_events) {
            match (a, b) {
                (
                    PipelineEvent::StrokeDetected { stroke: sa, .. },
                    PipelineEvent::StrokeDetected { stroke: sb, .. },
                ) => assert_eq!(sa, sb),
                (
                    PipelineEvent::LetterRecognized {
                        letter: la,
                        strokes: sa,
                        ..
                    },
                    PipelineEvent::LetterRecognized {
                        letter: lb,
                        strokes: sb,
                        ..
                    },
                ) => {
                    assert_eq!(la, lb);
                    assert_eq!(sa, sb);
                }
                other => panic!("event kinds diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn checkpoint_restore_mid_recording_matches_uninterrupted() {
        let all = recording();
        for split in [recording().len() / 3, recording().len() / 2] {
            // Uninterrupted run.
            let mut whole = pipeline();
            let mut whole_events = Vec::new();
            for o in &all {
                whole.push_into(*o, &mut whole_events);
            }
            whole.finish_into(&mut whole_events);

            // Interrupted run: checkpoint mid-stroke, restore into a
            // freshly built pipeline, continue.
            let mut prefix = pipeline();
            let mut split_events = Vec::new();
            for o in &all[..split] {
                prefix.push_into(*o, &mut split_events);
            }
            let checkpoint = prefix.checkpoint();
            let mut resumed = pipeline();
            resumed.restore(&checkpoint).expect("checkpoint restores");
            for o in &all[split..] {
                resumed.push_into(*o, &mut split_events);
            }
            resumed.finish_into(&mut split_events);

            assert_eq!(whole_events.len(), split_events.len(), "split {split}");
            for (a, b) in whole_events.iter().zip(&split_events) {
                match (a, b) {
                    (
                        PipelineEvent::StrokeDetected { stroke: sa, .. },
                        PipelineEvent::StrokeDetected { stroke: sb, .. },
                    ) => assert_eq!(sa, sb),
                    (
                        PipelineEvent::LetterRecognized {
                            letter: la,
                            strokes: sa,
                            ..
                        },
                        PipelineEvent::LetterRecognized {
                            letter: lb,
                            strokes: sb,
                            ..
                        },
                    ) => {
                        assert_eq!(la, lb);
                        assert_eq!(sa, sb);
                    }
                    other => panic!("event kinds diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cache_invalidated_by_letter_close_then_resumes() {
        let mut p = pipeline();
        let mut letter_seen = false;
        for o in recording() {
            let events = p.push(o);
            if events
                .iter()
                .any(|e| matches!(e, PipelineEvent::LetterRecognized { .. }))
            {
                // The letter close trims the buffer and must drop the
                // cache with it, in the same tick.
                assert!(
                    !p.graph.cache_is_some(),
                    "letter-close trim left a stale cache"
                );
                letter_seen = true;
            }
        }
        assert!(letter_seen, "recording closes a letter mid-feed");
        // Later ticks rebuild the cache from the trimmed buffer and then
        // maintain it incrementally; it must match a rebuild exactly.
        assert!(
            p.graph.cache_is_some(),
            "cache not rebuilt after the letter"
        );
        p.graph.assert_cache_matches_rebuild();
        // finish-then-resume: the flush and the resumed traffic keep the
        // cache in step with the buffer.
        p.finish();
        for mut o in recording().into_iter().filter(|o| o.time < 1.0) {
            o.time += 8.0;
            p.push(o);
        }
        p.graph.assert_cache_matches_rebuild();
    }

    #[test]
    fn cache_consistent_under_out_of_order_clamp() {
        let p = pipeline();
        let mut clamping = OnlinePipeline::builder()
            .recognizer(p.recognizer().clone())
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Clamp)
            .build()
            .unwrap();
        for (i, mut o) in recording().into_iter().enumerate() {
            if i % 8 == 3 {
                o.time -= 0.04;
            }
            clamping.push(o);
        }
        assert!(clamping.out_of_order_count() > 0, "stale reports seen");
        clamping.graph.assert_cache_matches_rebuild();
    }

    #[test]
    fn cache_consistent_under_out_of_order_drop() {
        let p = pipeline();
        let mut dropping = OnlinePipeline::builder()
            .recognizer(p.recognizer().clone())
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Drop)
            .build()
            .unwrap();
        for (i, mut o) in recording().into_iter().enumerate() {
            if i % 10 == 7 {
                o.time -= 0.05;
            }
            dropping.push(o);
        }
        assert!(dropping.out_of_order_count() > 0, "stale reports seen");
        dropping.graph.assert_cache_matches_rebuild();
    }

    #[test]
    fn out_of_order_clamped_and_counted() {
        let p = pipeline();
        let mut clamping = OnlinePipeline::builder()
            .recognizer(p.recognizer().clone())
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Clamp)
            .build()
            .unwrap();
        let mut events = Vec::new();
        for (i, mut o) in recording().into_iter().enumerate() {
            // A second antenna's reports lag by 40 ms every eighth read.
            if i % 8 == 3 {
                o.time -= 0.04;
            }
            events.extend(clamping.push(o));
        }
        events.extend(clamping.finish());
        assert!(clamping.out_of_order_count() > 0, "stale reports seen");
        // Clamped timestamps never run backwards inside the buffer.
        assert!(clamping
            .graph
            .buffer()
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
        // The sweep still resolves to the same letter.
        assert!(events.iter().any(|e| matches!(
            e,
            PipelineEvent::LetterRecognized {
                letter: Some('I'),
                ..
            }
        )));
    }

    #[test]
    fn out_of_order_drop_discards_stale_reports() {
        let p = pipeline();
        let mut dropping = OnlinePipeline::builder()
            .recognizer(p.recognizer().clone())
            .letter_gap_s(1.5)
            .out_of_order(OutOfOrderPolicy::Drop)
            .build()
            .unwrap();
        let reports = recording();
        let n = reports.len();
        for (i, mut o) in reports.into_iter().enumerate() {
            if i % 10 == 7 {
                o.time -= 0.05;
            }
            dropping.push(o);
        }
        assert!(dropping.out_of_order_count() > 0);
        assert!(
            (dropping.graph.buffer().len() as u64) <= n as u64 - dropping.out_of_order_count()
                || dropping.graph.buffer().len() < n,
            "dropped reports must not enter the buffer"
        );
        assert!(dropping
            .graph
            .buffer()
            .windows(2)
            .all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn threaded_spawn_round_trip() {
        let p = pipeline();
        let (obs_tx, obs_rx) = crossbeam::channel::unbounded();
        let (handle, events) = spawn(p, obs_rx);
        for o in recording() {
            obs_tx.send(o).expect("pipeline alive");
        }
        drop(obs_tx);
        let collected: Vec<PipelineEvent> = events.iter().collect();
        handle.join().expect("no panic");
        assert!(collected.iter().any(|e| matches!(
            e,
            PipelineEvent::LetterRecognized {
                letter: Some('I'),
                ..
            }
        )));
    }
}

#[cfg(test)]
mod buffer_tests {
    use super::*;
    use crate::calibration::Calibration;
    use crate::config::RfipadConfig;
    use crate::layout::ArrayLayout;
    use crate::stage::MAX_BUFFER_S;
    use rfid_gen2::report::TagId;

    fn quiet_obs(tag: u64, time: f64) -> TagReport {
        TagReport::synthetic(TagId(tag), time, 1.0 + tag as f64, -45.0)
    }

    fn quiet_pipeline(letter_gap_s: f64) -> OnlinePipeline {
        let layout = ArrayLayout::new(1, 3, (0..3).map(TagId).collect());
        let static_obs: Vec<TagReport> = (0..40)
            .flat_map(|j| (0..3).map(move |i| quiet_obs(i, j as f64 * 0.05 + i as f64 * 0.01)))
            .collect();
        let config = RfipadConfig::default();
        let cal = Calibration::from_observations(&layout, &static_obs, &config).unwrap();
        let rec = Recognizer::builder()
            .layout(layout)
            .calibration(cal)
            .config(config)
            .build()
            .unwrap();
        OnlinePipeline::builder()
            .recognizer(rec)
            .letter_gap_s(letter_gap_s)
            .build()
            .unwrap()
    }

    /// A hand-built pending stroke, for exercising the retention logic
    /// without driving a full recognition.
    fn fake_stroke(start: f64, end: f64) -> RecognizedStroke {
        use crate::motion::RecognizedMotion;
        use crate::segmentation::StrokeSpan;
        use hand_kinematics::stroke::{Stroke, StrokeShape};
        use sigproc::grid::BinaryGrid;
        let mut mask = BinaryGrid::empty(1, 3);
        mask.set(0, 1, true);
        RecognizedStroke {
            stroke: Stroke::new(StrokeShape::Click),
            span: StrokeSpan { start, end },
            motion: RecognizedMotion {
                shape: StrokeShape::Click,
                mask,
                centroid: (0.0, 1.0),
                bbox: (0, 1, 0, 1),
            },
        }
    }

    #[test]
    fn buffer_stays_bounded_over_long_quiet_runs() {
        let mut pipeline = quiet_pipeline(1.5);

        // Two simulated minutes of quiet traffic at ~60 reads/s (enough
        // to overflow an unbounded buffer four times over).
        let mut max_len = 0usize;
        for step in 0..7_200u64 {
            let t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, t));
            max_len = max_len.max(pipeline.graph().buffer().len());
        }
        // 30 s of history at 60 reads/s is 1800 reads; allow slack for the
        // trim hysteresis.
        assert!(
            pipeline.graph().buffer().len() < 2_400,
            "buffer grew to {}",
            pipeline.graph().buffer().len()
        );
        assert!(max_len < 2_800, "peak buffer {}", max_len);
    }
    #[test]
    fn trimming_drops_history_older_than_window() {
        let mut pipeline = quiet_pipeline(1.5);
        // One simulated minute of quiet traffic: the window is 30 s, so
        // the earliest reads must be long gone by the end.
        let mut last_t = 0.0;
        for step in 0..3_600u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        let first = pipeline
            .graph()
            .buffer()
            .first()
            .expect("buffer non-empty")
            .time;
        assert!(first > 2.0, "old history survived: first read at {first}");
        // Nothing older than the window plus the trim hysteresis remains.
        assert!(
            first >= last_t - MAX_BUFFER_S - 5.0 - 1e-9,
            "first {first} vs now {last_t}"
        );
    }

    #[test]
    fn pending_letter_holds_history_past_the_window() {
        // A letter gap far longer than the run keeps the stroke pending
        // throughout; its history must survive even past MAX_BUFFER_S.
        let mut pipeline = quiet_pipeline(1_000.0);
        pipeline
            .graph_mut()
            .pending_strokes_mut()
            .push(fake_stroke(2.0, 3.0));
        let mut last_t = 0.0;
        for step in 0..2_400u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        assert!(last_t > MAX_BUFFER_S + 5.0, "run long enough to trim");
        let first = pipeline
            .graph()
            .buffer()
            .first()
            .expect("buffer non-empty")
            .time;
        // Retention is anchored 1 s before the pending stroke, not at the
        // rolling window edge.
        assert!(
            first <= 2.0,
            "pending letter history trimmed: first {first}"
        );
        assert!(!pipeline.graph_mut().pending_strokes_mut().is_empty());
    }

    #[test]
    fn cache_consistent_across_retention_trims() {
        let mut pipeline = quiet_pipeline(1.5);
        let mut trims = 0usize;
        for step in 0..3_600u64 {
            let t = step as f64 / 60.0;
            let before = pipeline.graph().buffer().len();
            pipeline.push(quiet_obs(step % 3, t));
            if pipeline.graph().buffer().len() <= before {
                trims += 1;
            }
            // Spot-check: the incrementally maintained cache never drifts
            // from a rebuild over the (possibly trimmed) buffer.
            if step % 600 == 599 {
                pipeline.graph_mut().assert_cache_matches_rebuild();
            }
        }
        assert!(trims > 0, "run long enough to trim history");
        pipeline.graph_mut().assert_cache_matches_rebuild();
    }

    #[test]
    fn reported_spans_stay_sorted() {
        let mut pipeline = quiet_pipeline(1.5);
        // Out-of-sorted-order marks must land sorted (the dedup relies on
        // partition_point).
        pipeline.graph_mut().mark_reported(2.5);
        pipeline.graph_mut().mark_reported(1.0);
        pipeline.graph_mut().mark_reported(4.0);
        pipeline.graph_mut().mark_reported(1.7);
        assert_eq!(pipeline.graph().reported_spans(), vec![1.0, 1.7, 2.5, 4.0]);
        assert!(pipeline.graph().span_already_reported(1.2));
        assert!(pipeline.graph().span_already_reported(2.6));
        assert!(!pipeline.graph().span_already_reported(3.2));
        assert!(!pipeline.graph().span_already_reported(0.5));
    }

    #[test]
    fn reported_spans_trimmed_with_buffer() {
        let mut pipeline = quiet_pipeline(1.5);
        // Simulate spans reported early in a run whose letter never closed
        // (e.g. unclassifiable blips): their dedup entries must not leak.
        pipeline.graph_mut().reported_spans_mut().push(1.0);
        pipeline.graph_mut().reported_spans_mut().push(2.5);
        let mut last_t = 0.0;
        for step in 0..3_600u64 {
            last_t = step as f64 / 60.0;
            pipeline.push(quiet_obs(step % 3, last_t));
        }
        assert!(
            pipeline
                .graph()
                .reported_spans()
                .iter()
                .all(|&s| s >= last_t - MAX_BUFFER_S - 5.0),
            "stale reported spans retained: {:?}",
            pipeline.graph().reported_spans()
        );
    }
}
