//! Exposition sinks: Prometheus-style text, JSON, and a format validator.
//!
//! The text format follows the Prometheus 0.0.4 exposition conventions:
//! `# HELP` / `# TYPE` headers per family, label values escaped (`\\`,
//! `\"`, `\n`), histograms expanded into cumulative `_bucket{le="..."}`
//! series plus `_sum` and `_count`. The JSON sink carries the same data
//! plus the exact-percentile fields (p50/p90/p99/max) that the text format
//! has no standard slot for. The serde stand-in under `vendor/` cannot
//! serialize, so both renderings are hand-rolled here (the same approach
//! `rfid_gen2::trace` takes for trace files).

use crate::registry::{valid_label_name, valid_metric_name, Metric, Registry};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escapes a label value for the text exposition: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a string for JSON output.
pub fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
}

fn format_le(le: f64) -> String {
    if le.is_infinite() {
        "+Inf".to_string()
    } else if le.fract() == 0.0 {
        format!("{}", le as u64)
    } else {
        format!("{le}")
    }
}

impl Registry {
    /// Renders the whole registry in the Prometheus text format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            if family.series.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, metric) in &family.series {
                match metric {
                    Metric::Counter(c) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", c.get());
                    }
                    Metric::Gauge(g) => {
                        out.push_str(name);
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        for (le, cumulative) in &snap.buckets {
                            let _ = write!(out, "{name}_bucket");
                            render_labels(&mut out, labels, Some(("le", &format_le(*le))));
                            let _ = writeln!(out, " {cumulative}");
                        }
                        let _ = write!(out, "{name}_sum");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", snap.sum);
                        let _ = write!(out, "{name}_count");
                        render_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {}", snap.count);
                    }
                }
            }
        }
        out
    }

    /// Renders the whole registry as a JSON object:
    /// `{"<family>": {"type", "help", "series": [{"labels", ...}]}}`.
    /// Histogram series carry exact `p50`/`p90`/`p99`/`max` alongside the
    /// buckets; `le` is a string (`"+Inf"` for the overflow bucket) since
    /// JSON has no infinity literal.
    pub fn render_json(&self) -> String {
        let families = self.families.lock().expect("registry poisoned");
        let mut out = String::from("{");
        let mut first_family = true;
        for (name, family) in families.iter() {
            if family.series.is_empty() {
                continue;
            }
            if !first_family {
                out.push(',');
            }
            first_family = false;
            let _ = write!(
                out,
                "\"{}\":{{\"type\":\"{}\",\"help\":\"{}\",\"series\":[",
                escape_json(name),
                family.kind.as_str(),
                escape_json(&family.help)
            );
            let mut first_series = true;
            for (labels, metric) in &family.series {
                if !first_series {
                    out.push(',');
                }
                first_series = false;
                out.push_str("{\"labels\":{");
                let mut first_label = true;
                for (k, v) in labels {
                    if !first_label {
                        out.push(',');
                    }
                    first_label = false;
                    let _ = write!(out, "\"{}\":\"{}\"", escape_json(k), escape_json(v));
                }
                out.push('}');
                match metric {
                    Metric::Counter(c) => {
                        let _ = write!(out, ",\"value\":{}", c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = write!(out, ",\"value\":{}", g.get());
                    }
                    Metric::Histogram(h) => {
                        let snap = h.snapshot();
                        let _ = write!(
                            out,
                            ",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
                            snap.count, snap.sum, snap.max, snap.p50, snap.p90, snap.p99
                        );
                        let mut first_bucket = true;
                        for (le, cumulative) in &snap.buckets {
                            if !first_bucket {
                                out.push(',');
                            }
                            first_bucket = false;
                            let _ = write!(
                                out,
                                "{{\"le\":\"{}\",\"count\":{cumulative}}}",
                                format_le(*le)
                            );
                        }
                        out.push(']');
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

/// Checks a Prometheus text exposition for well-formedness: metric and
/// label names match the allowed charsets, label values are properly
/// quoted/escaped, sample values parse as numbers, and no
/// `(name, label set)` series appears twice.
///
/// # Errors
///
/// Returns `Err` with a line number and description for the first
/// violation found.
pub fn validate(text: &str) -> Result<(), String> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(body) = rest
                .strip_prefix("HELP ")
                .or_else(|| rest.strip_prefix("TYPE "))
            {
                let name = body.split_whitespace().next().unwrap_or("");
                if !valid_metric_name(name) {
                    return Err(format!("line {lineno}: bad metric name {name:?} in header"));
                }
                if rest.starts_with("TYPE ") {
                    let kind = body.split_whitespace().nth(1).unwrap_or("");
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                    }
                }
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comment
        }
        let (series, value) = parse_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if value.parse::<f64>().is_err() && !matches!(value, "+Inf" | "-Inf" | "NaN") {
            return Err(format!("line {lineno}: unparseable value {value:?}"));
        }
        if !seen.insert(series.clone()) {
            return Err(format!("line {lineno}: duplicate series {series}"));
        }
    }
    Ok(())
}

/// Parses one sample line into a normalized `(name{sorted labels})` key and
/// the value text.
fn parse_sample(line: &str) -> Result<(String, &str), String> {
    let name_end = line.find(['{', ' ']).ok_or("missing value")?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("bad metric name {name:?}"));
    }
    let mut labels: Vec<(String, String)> = Vec::new();
    let rest = if line[name_end..].starts_with('{') {
        let mut chars = line[name_end + 1..].char_indices().peekable();
        let body_start = name_end + 1;
        let pos;
        loop {
            // label name
            let start = match chars.peek() {
                Some(&(i, '}')) => {
                    pos = body_start + i + 1;
                    break;
                }
                Some(&(i, _)) => i,
                None => return Err("unterminated label set".into()),
            };
            let mut eq = None;
            for (i, c) in chars.by_ref() {
                if c == '=' {
                    eq = Some(i);
                    break;
                }
            }
            let eq = eq.ok_or("label without '='")?;
            let label = &line[body_start + start..body_start + eq];
            if !valid_label_name(label) {
                return Err(format!("bad label name {label:?}"));
            }
            match chars.next() {
                Some((_, '"')) => {}
                _ => return Err(format!("label {label:?} value not quoted")),
            }
            let mut value = String::new();
            let mut closed = false;
            while let Some((_, c)) = chars.next() {
                match c {
                    '\\' => match chars.next() {
                        Some((_, '\\')) => value.push('\\'),
                        Some((_, '"')) => value.push('"'),
                        Some((_, 'n')) => value.push('\n'),
                        other => return Err(format!("bad escape {other:?} in label value")),
                    },
                    '"' => {
                        closed = true;
                        break;
                    }
                    c => value.push(c),
                }
            }
            if !closed {
                return Err("unterminated label value".into());
            }
            labels.push((label.to_string(), value));
            match chars.peek() {
                Some(&(_, ',')) => {
                    chars.next();
                }
                Some(&(_, '}')) => {}
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        &line[pos..]
    } else {
        &line[name_end..]
    };
    let value = rest.trim_start();
    if value.is_empty() {
        return Err("missing value".into());
    }
    // Timestamps (a second field) are legal in the format; take field one.
    let value = value.split_whitespace().next().expect("nonempty");
    labels.sort();
    let mut key = String::from(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}={v:?}");
    }
    key.push('}');
    Ok((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DEFAULT_DURATION_BOUNDS_US;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("reads_total", "Total reads.", &[("source", "live")])
            .add(7);
        r.gauge("queue_depth", "Depth.", &[("session", "kiosk-1")])
            .set(3);
        r.histogram(
            "stage_duration_us",
            "Stage time.",
            &[("stage", "framing")],
            DEFAULT_DURATION_BOUNDS_US,
        )
        .record(42);
        r
    }

    #[test]
    fn prometheus_rendering_validates() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# HELP reads_total Total reads."));
        assert!(text.contains("# TYPE stage_duration_us histogram"));
        assert!(text.contains("reads_total{source=\"live\"} 7"));
        assert!(text.contains("stage_duration_us_bucket{stage=\"framing\",le=\"50\"} 1"));
        assert!(text.contains("stage_duration_us_bucket{stage=\"framing\",le=\"+Inf\"} 1"));
        assert!(text.contains("stage_duration_us_sum{stage=\"framing\"} 42"));
        assert!(text.contains("stage_duration_us_count{stage=\"framing\"} 1"));
        validate(&text).expect("well-formed");
    }

    #[test]
    fn label_values_are_escaped_and_revalidate() {
        let r = Registry::new();
        r.counter(
            "odd_total",
            "Help with \\ and\nnewline.",
            &[("path", "a\\b \"quoted\"\nline")],
        )
        .inc();
        let text = r.render_prometheus();
        assert!(
            text.contains(r#"odd_total{path="a\\b \"quoted\"\nline"} 1"#),
            "escaped: {text}"
        );
        // Header newline is escaped so the document stays line-oriented.
        assert!(text.contains("# HELP odd_total Help with \\\\ and\\nnewline."));
        validate(&text).expect("escaped exposition parses");
    }

    #[test]
    fn validate_rejects_duplicates_and_malformed_lines() {
        assert!(validate("ok_total 1\nok_total 2").is_err(), "duplicate");
        assert!(
            validate("ok_total{a=\"1\"} 1\nok_total{a=\"2\"} 1").is_ok(),
            "distinct labels are distinct series"
        );
        assert!(validate("bad-name 1").is_err());
        assert!(validate("ok_total{bad-label=\"1\"} 1").is_err());
        assert!(validate("ok_total{a=1} 1").is_err(), "unquoted value");
        assert!(validate("ok_total{a=\"1\"} oops").is_err(), "bad value");
        assert!(validate("ok_total{a=\"unterminated} 1").is_err());
        assert!(validate("# TYPE x widget").is_err());
        assert!(validate("").is_ok());
    }

    #[test]
    fn duplicate_detection_ignores_label_order() {
        let doc = "m{a=\"1\",b=\"2\"} 1\nm{b=\"2\",a=\"1\"} 2";
        assert!(validate(doc).is_err());
    }

    #[test]
    fn json_rendering_shape() {
        let json = sample_registry().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"reads_total\":{\"type\":\"counter\""));
        assert!(json.contains("\"labels\":{\"source\":\"live\"},\"value\":7"));
        assert!(json.contains("\"p50\":42"));
        assert!(json.contains("{\"le\":\"+Inf\",\"count\":1}"));
        // Escaping keeps the document one line and quote-balanced.
        assert_eq!(json.matches('\n').count(), 0);
    }

    #[test]
    fn json_escape_covers_controls() {
        assert_eq!(escape_json("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
