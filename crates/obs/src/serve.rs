//! A minimal metrics endpoint on `std::net::TcpListener`.
//!
//! One background thread accepts connections and answers two GET routes:
//! `/metrics` (Prometheus text) and `/stats.json` (JSON snapshot). The
//! render callback runs per request, so the server always serves fresh
//! values and the caller can refresh derived gauges first.
//!
//! Security note: there is no TLS and no authentication — bind to
//! loopback (`127.0.0.1:0`) or a firewalled interface only, exactly like a
//! bare Prometheus client endpoint (see DESIGN.md §Observability).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which sink a request resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// `/metrics`: Prometheus text exposition.
    Prometheus,
    /// `/stats.json`: JSON snapshot.
    Json,
}

/// Renders a sink on demand; runs on the server thread per request.
pub type RenderFn = Arc<dyn Fn(SinkFormat) -> String + Send + Sync>;

/// Handle to a running metrics endpoint; shuts the thread down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Poll interval of the accept loop; bounds shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Starts a metrics endpoint on `addr` (e.g. `"127.0.0.1:0"`).
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str, render: RenderFn) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("obs-metrics".into())
        .spawn(move || accept_loop(listener, render, stop_flag))
        .expect("spawn metrics thread");
    crate::info!("metrics endpoint listening"; addr = bound);
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: TcpListener, render: RenderFn, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) = handle_request(stream, &render) {
                    crate::debug!("metrics request failed: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                crate::warn!("metrics accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn handle_request(mut stream: TcpStream, render: &RenderFn) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut read = 0usize;
    // Read until the end of the request head (or the buffer fills — any
    // legitimate GET fits easily).
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => {
                read += n;
                if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "GET only\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4",
            render(SinkFormat::Prometheus),
        )
    } else if path == "/stats.json" || path == "/json" || path.starts_with("/stats.json?") {
        ("200 OK", "application/json", render(SinkFormat::Json))
    } else {
        (
            "404 Not Found",
            "text/plain",
            "routes: /metrics /stats.json\n".to_string(),
        )
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_both_sinks_and_404s() {
        let render: RenderFn = Arc::new(|format| match format {
            SinkFormat::Prometheus => "demo_total 1\n".to_string(),
            SinkFormat::Json => "{\"demo_total\":1}".to_string(),
        });
        let server = serve("127.0.0.1:0", render).expect("bind loopback");
        let addr = server.addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("demo_total 1"));
        assert!(text.contains("Content-Type: text/plain"));

        let json = get(addr, "/stats.json");
        assert!(json.contains("{\"demo_total\":1}"));
        assert!(json.contains("application/json"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        drop(server); // joins the thread; a second bind of the port works
    }
}
