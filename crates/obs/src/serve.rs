//! A minimal metrics endpoint on `std::net::TcpListener`.
//!
//! One background thread accepts connections and answers GET routes. The
//! classic [`serve`] entry point wires the two metrics sinks (`/metrics`
//! Prometheus text, `/stats.json` JSON); [`serve_routes`] additionally
//! lets the caller answer arbitrary paths — health probes (`/healthz`,
//! `/readyz`), the log journal (`/debug/journal`), per-session flight
//! recorder dumps (`/debug/trace/<session>`) — with full control over the
//! status code. Callbacks run per request, so the server always serves
//! fresh values and the caller can refresh derived gauges first.
//!
//! Security note: there is no TLS and no authentication — bind to
//! loopback (`127.0.0.1:0`) or a firewalled interface only, exactly like a
//! bare Prometheus client endpoint (see DESIGN.md §Observability).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which sink a request resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkFormat {
    /// `/metrics`: Prometheus text exposition.
    Prometheus,
    /// `/stats.json`: JSON snapshot.
    Json,
}

/// Renders a sink on demand; runs on the server thread per request.
pub type RenderFn = Arc<dyn Fn(SinkFormat) -> String + Send + Sync>;

/// One HTTP response a route callback produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteResponse {
    /// Status code (200, 404, 503, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl RouteResponse {
    /// A `200 OK` plain-text response.
    pub fn ok_text(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain",
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn ok_json(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// A `503 Service Unavailable` plain-text response (failed probes).
    pub fn unavailable(body: impl Into<String>) -> Self {
        Self {
            status: 503,
            content_type: "text/plain",
            body: body.into(),
        }
    }

    /// A `404 Not Found` plain-text response.
    pub fn not_found(body: impl Into<String>) -> Self {
        Self {
            status: 404,
            content_type: "text/plain",
            body: body.into(),
        }
    }
}

/// Answers a GET for `path` (query string already stripped), or `None` to
/// fall through to the built-in 404. Runs on the server thread.
pub type RouteFn = Arc<dyn Fn(&str) -> Option<RouteResponse> + Send + Sync>;

/// Handle to a running metrics endpoint; shuts the thread down on drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Poll interval of the accept loop; bounds shutdown latency.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Starts a metrics endpoint on `addr` (e.g. `"127.0.0.1:0"`) serving
/// only the two metrics sinks.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve(addr: &str, render: RenderFn) -> std::io::Result<MetricsServer> {
    serve_routes(addr, render, Arc::new(|_path| None))
}

/// Starts a metrics endpoint on `addr` serving `/metrics`, `/stats.json`,
/// and whatever extra GET paths `routes` answers (health probes, debug
/// dumps). `routes` wins on path collisions with the built-in sinks.
///
/// # Errors
///
/// Returns the bind error if the address is unavailable.
pub fn serve_routes(
    addr: &str,
    render: RenderFn,
    routes: RouteFn,
) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let bound = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("obs-metrics".into())
        .spawn(move || accept_loop(listener, render, routes, stop_flag))
        .expect("spawn metrics thread");
    crate::info!("metrics endpoint listening"; addr = bound);
    Ok(MetricsServer {
        addr: bound,
        stop,
        handle: Some(handle),
    })
}

fn accept_loop(listener: TcpListener, render: RenderFn, routes: RouteFn, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(e) = handle_request(stream, &render, &routes) {
                    crate::debug!("metrics request failed: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) => {
                crate::warn!("metrics accept error: {e}");
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn status_line(status: u16) -> String {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Status",
    };
    format!("{status} {reason}")
}

fn handle_request(
    mut stream: TcpStream,
    render: &RenderFn,
    routes: &RouteFn,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut read = 0usize;
    // Read until the end of the request head (or the buffer fills — any
    // legitimate GET fits easily).
    while read < buf.len() {
        match stream.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => {
                read += n;
                if buf[..read].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf[..read]);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let raw_path = parts.next().unwrap_or("");
    let path = raw_path.split('?').next().unwrap_or("");
    let reply = if method != "GET" {
        RouteResponse {
            status: 405,
            content_type: "text/plain",
            body: "GET only\n".to_string(),
        }
    } else if let Some(reply) = routes(path) {
        reply
    } else if path == "/metrics" {
        RouteResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render(SinkFormat::Prometheus),
        }
    } else if path == "/stats.json" || path == "/json" {
        RouteResponse::ok_json(render(SinkFormat::Json))
    } else {
        RouteResponse::not_found("routes: /metrics /stats.json\n")
    };
    let response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        status_line(reply.status),
        reply.content_type,
        reply.body.len(),
        reply.body
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn serves_both_sinks_and_404s() {
        let render: RenderFn = Arc::new(|format| match format {
            SinkFormat::Prometheus => "demo_total 1\n".to_string(),
            SinkFormat::Json => "{\"demo_total\":1}".to_string(),
        });
        let server = serve("127.0.0.1:0", render).expect("bind loopback");
        let addr = server.addr();

        let text = get(addr, "/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"), "{text}");
        assert!(text.contains("demo_total 1"));
        assert!(text.contains("Content-Type: text/plain"));

        let json = get(addr, "/stats.json");
        assert!(json.contains("{\"demo_total\":1}"));
        assert!(json.contains("application/json"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));

        drop(server); // joins the thread; a second bind of the port works
    }

    #[test]
    fn caller_routes_control_paths_and_status() {
        let render: RenderFn = Arc::new(|_| "x 1\n".to_string());
        let routes: RouteFn = Arc::new(|path| match path {
            "/healthz" => Some(RouteResponse::ok_text("ok\n")),
            "/readyz" => Some(RouteResponse::unavailable("draining\n")),
            p => p
                .strip_prefix("/debug/trace/")
                .map(|session| RouteResponse::ok_json(format!("{{\"session\":\"{session}\"}}"))),
        });
        let server = serve_routes("127.0.0.1:0", render, routes).expect("bind loopback");
        let addr = server.addr();

        let health = get(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"));

        let ready = get(addr, "/readyz?verbose");
        assert!(
            ready.starts_with("HTTP/1.1 503 Service Unavailable"),
            "{ready}"
        );

        let dump = get(addr, "/debug/trace/kiosk-1");
        assert!(dump.contains("application/json"));
        assert!(dump.ends_with("{\"session\":\"kiosk-1\"}"));

        // Built-in sinks still answer when the route fn passes.
        let text = get(addr, "/metrics");
        assert!(text.contains("x 1"));
        let missing = get(addr, "/debug/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
    }
}
