//! The process-global metric registry.
//!
//! Metrics are identified by a *family* name plus a sorted label set.
//! Registration (or lookup) takes the registry mutex once and hands back an
//! [`Arc`] to the live metric; callers cache the `Arc` so steady-state
//! recording never touches the lock. Registering the same name + labels
//! twice returns the same underlying metric — idempotent by design, so
//! library code can "register" from a `OnceLock` initializer without
//! coordination.
//!
//! Naming scheme (see DESIGN.md §Observability): `snake_case`, prefixed by
//! the owning layer (`rfid_reader_`, `rfipad_stage_`, `rfipad_engine_`,
//! `rfipad_session_`), counters suffixed `_total`, durations suffixed with
//! their unit (`_us`).

use crate::metrics::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// What kind of metric a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Up/down gauge.
    Gauge,
    /// Fixed-bucket histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One named family: a help string, a kind, and one metric per label set.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) series: BTreeMap<Vec<(String, String)>, Metric>,
}

/// A set of metric families keyed by name. Usually accessed through the
/// process-global [`registry()`]; tests can build private instances.
#[derive(Debug, Default)]
pub struct Registry {
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
}

/// Valid metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub(crate) fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Valid label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
pub(crate) fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn label_key(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut key: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| {
            assert!(valid_label_name(k), "invalid label name {k:?}");
            ((*k).to_string(), (*v).to_string())
        })
        .collect();
    key.sort();
    key
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let key = label_key(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric {name:?} already registered as a {}",
            family.kind.as_str()
        );
        family.series.entry(key).or_insert_with(make).clone()
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Panics
    ///
    /// Panics if the name or a label name is malformed, or if `name` is
    /// already registered as a different kind.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, MetricKind::Counter, || {
            Metric::Counter(Arc::new(Counter::new()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a gauge. Panics as [`Registry::counter`] does.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, MetricKind::Gauge, || {
            Metric::Gauge(Arc::new(Gauge::new()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or fetches) a histogram with the given bucket bounds
    /// (bounds are fixed by the first registration). Panics as
    /// [`Registry::counter`] does, or if `bounds` is invalid.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, MetricKind::Histogram, || {
            Metric::Histogram(Arc::new(Histogram::new(bounds)))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Removes one series (e.g. a closed session's gauges). Returns whether
    /// it existed. An emptied family keeps its name and kind.
    pub fn remove(&self, name: &str, labels: &[(&str, &str)]) -> bool {
        let key = label_key(labels);
        let mut families = self.families.lock().expect("registry poisoned");
        families
            .get_mut(name)
            .map(|f| f.series.remove(&key).is_some())
            .unwrap_or(false)
    }

    /// Removes every series of `name` whose labels include `label == value`
    /// (e.g. all gauges of an evicted session). Returns how many were
    /// removed.
    pub fn remove_matching(&self, name: &str, label: &str, value: &str) -> usize {
        let mut families = self.families.lock().expect("registry poisoned");
        let Some(family) = families.get_mut(name) else {
            return 0;
        };
        let before = family.series.len();
        family
            .series
            .retain(|key, _| !key.iter().any(|(k, v)| k == label && v == value));
        before - family.series.len()
    }

    /// Drops every family. Intended for tests with private registries.
    pub fn clear(&self) {
        self.families.lock().expect("registry poisoned").clear();
    }

    /// Names of all registered families, sorted.
    pub fn family_names(&self) -> Vec<String> {
        self.families
            .lock()
            .expect("registry poisoned")
            .keys()
            .cloned()
            .collect()
    }
}

/// The process-global registry. All workspace instrumentation records
/// here; exposition sinks render it.
pub fn registry() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_the_metric() {
        let r = Registry::new();
        let a = r.counter("t_total", "help", &[("k", "v")]);
        let b = r.counter("t_total", "other help ignored", &[("k", "v")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        // A different label set is a different series.
        let c = r.counter("t_total", "help", &[("k", "w")]);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.gauge("g", "help", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("g", "help", &[("b", "2"), ("a", "1")]);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("clash", "help", &[]);
        let _ = r.gauge("clash", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let r = Registry::new();
        let _ = r.counter("9starts_with_digit", "help", &[]);
    }

    #[test]
    #[should_panic(expected = "invalid label name")]
    fn bad_label_panics() {
        let r = Registry::new();
        let _ = r.counter("fine", "help", &[("bad-label", "v")]);
    }

    #[test]
    fn remove_and_remove_matching() {
        let r = Registry::new();
        let _ = r.gauge("q_depth", "help", &[("session", "a")]);
        let _ = r.gauge("q_depth", "help", &[("session", "b")]);
        assert!(r.remove("q_depth", &[("session", "a")]));
        assert!(!r.remove("q_depth", &[("session", "a")]));
        assert_eq!(r.remove_matching("q_depth", "session", "b"), 1);
        assert_eq!(r.remove_matching("q_depth", "session", "b"), 0);
    }

    #[test]
    fn name_validation() {
        assert!(valid_metric_name("rfipad_engine_reports_total"));
        assert!(valid_metric_name("ns:sub"));
        assert!(valid_metric_name("_x"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("1x"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name("has-dash"));
        assert!(valid_label_name("stage"));
        assert!(!valid_label_name("le:")); // colon not allowed in labels
    }
}
