//! Hand-rolled, std-only observability for the RFIPad workspace.
//!
//! The workspace's vendored-dependency policy rules out `tracing`,
//! `prometheus`, and friends, so this crate provides the minimal substrate
//! a long-running recognition service needs, with zero dependencies:
//!
//! - **Metrics** ([`metrics`]): lock-free [`Counter`]/[`Gauge`] atomics and
//!   fixed-bucket [`Histogram`]s that keep a bounded ring of raw samples,
//!   so snapshots report *exact* p50/p90/p99/max over the recent window
//!   (not bucket-interpolated estimates).
//! - **Registry** ([`registry()`]): a process-global, name + label keyed
//!   [`Registry`]. Registration takes a mutex; the returned [`Arc`]s are
//!   cached by callers so the hot path is a single relaxed atomic op.
//! - **Logging** ([`logging`]): leveled [`error!`]/[`warn!`]/[`info!`]/
//!   [`debug!`]/[`trace!`] macros with `key = value` structured fields,
//!   filtered by the `RFIPAD_LOG` environment variable. A disabled level
//!   costs one relaxed atomic load and a branch — no formatting.
//! - **Spans** ([`Histogram::start_span`] / [`span!`]): scoped timers that
//!   record elapsed microseconds into a stage histogram on drop.
//! - **Journal** ([`logging::journal_snapshot`]): a bounded ring buffer of
//!   recent log events for post-mortem dumps.
//! - **Exposition** ([`expo`]): Prometheus-style text and JSON renderings
//!   of a registry, plus a validator for the text format.
//! - **Tracing** ([`mod@trace`]): seedable [`trace::TraceId`]/[`trace::SpanId`]
//!   streams, parent-linked span events, bounded per-session flight
//!   recorders, and deterministic head sampling for hot-path hops.
//! - **Serving** ([`serve`]): a minimal `std::net::TcpListener` HTTP
//!   endpoint exposing `/metrics` (text) and `/stats.json` (JSON), plus
//!   caller-defined routes ([`serve::serve_routes`]) for health and debug
//!   endpoints.
//!
//! # Quickstart
//!
//! ```
//! use std::sync::Arc;
//!
//! let reads = obs::registry().counter(
//!     "demo_reads_total",
//!     "Reports accepted by the demo reader.",
//!     &[("source", "doc")],
//! );
//! reads.add(3);
//!
//! let stage = obs::registry().histogram(
//!     "demo_stage_duration_us",
//!     "Stage wall time in microseconds.",
//!     &[("stage", "framing")],
//!     obs::metrics::DEFAULT_DURATION_BOUNDS_US,
//! );
//! {
//!     let _span = obs::span!(stage); // records on scope exit
//! }
//! obs::info!("demo finished"; reads = reads.get());
//! let text = obs::registry().render_prometheus();
//! assert!(text.contains("demo_reads_total"));
//! obs::expo::validate(&text).expect("well-formed exposition");
//! ```
//!
//! Everything here is deliberately off the data path: recording a metric
//! never blocks, logging below the active level never formats, and with
//! `RFIPAD_LOG=off` span timers do not even read the clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod expo;
pub mod logging;
pub mod metrics;
pub mod registry;
pub mod serve;
pub mod trace;

pub use logging::{emit, enabled, max_level, set_level, telemetry_on, Level};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, SpanGuard};
pub use registry::{registry, MetricKind, Registry};

use std::sync::Arc;

/// Logs at an explicit [`Level`] with optional structured fields.
///
/// The general form is `obs::log!(level, "fmt", args...; key = value, ...)`.
/// Fields are appended to the message as `key=value` using their `Display`
/// impls. Nothing is formatted (and field expressions are not evaluated)
/// unless the level is enabled.
#[macro_export]
macro_rules! log {
    ($lvl:expr, $fmt:expr $(, $arg:expr)* $(; $($key:ident = $val:expr),+ $(,)?)?) => {{
        let __lvl = $lvl;
        if $crate::enabled(__lvl) {
            let mut __msg = ::std::format!($fmt $(, $arg)*);
            $($(
                {
                    use ::std::fmt::Write as _;
                    let _ = ::std::write!(__msg, " {}={}", ::std::stringify!($key), $val);
                }
            )+)?
            $crate::emit(__lvl, ::std::module_path!(), &__msg);
        }
    }};
}

/// Logs an error (always emitted unless `RFIPAD_LOG=off`).
#[macro_export]
macro_rules! error { ($($t:tt)*) => { $crate::log!($crate::Level::Error, $($t)*) }; }

/// Logs a warning.
#[macro_export]
macro_rules! warn { ($($t:tt)*) => { $crate::log!($crate::Level::Warn, $($t)*) }; }

/// Logs an informational message (the default visible level).
#[macro_export]
macro_rules! info { ($($t:tt)*) => { $crate::log!($crate::Level::Info, $($t)*) }; }

/// Logs a debug message (hidden unless `RFIPAD_LOG=debug` or `trace`).
#[macro_export]
macro_rules! debug { ($($t:tt)*) => { $crate::log!($crate::Level::Debug, $($t)*) }; }

/// Logs a trace message (hidden unless `RFIPAD_LOG=trace`).
#[macro_export]
macro_rules! trace { ($($t:tt)*) => { $crate::log!($crate::Level::Trace, $($t)*) }; }

/// Starts a scoped timer recording into the given [`Histogram`] when the
/// returned guard drops. Bind it: `let _span = obs::span!(hist);`.
///
/// Accepts anything that derefs to a [`Histogram`] (`Arc<Histogram>`, a
/// reference, a field). With telemetry off (`RFIPAD_LOG=off`) the guard is
/// inert and the clock is never read.
#[macro_export]
macro_rules! span {
    ($hist:expr) => {
        $crate::Histogram::start_span(&$hist)
    };
}

/// Convenience: registers (or fetches) a stage-duration histogram named
/// `name` with a `stage` label and the default microsecond bounds.
pub fn stage_histogram(
    name: &'static str,
    help: &'static str,
    stage: &'static str,
) -> Arc<Histogram> {
    registry().histogram(
        name,
        help,
        &[("stage", stage)],
        metrics::DEFAULT_DURATION_BOUNDS_US,
    )
}
