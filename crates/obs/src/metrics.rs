//! Lock-free metric primitives: counters, gauges, and histograms.
//!
//! All recording operations are single relaxed atomic ops (a histogram
//! record is a handful). None of them allocate or block, so they are safe
//! to call from the recognition hot path. Snapshots are taken concurrently
//! with recording and are *approximately consistent*: a snapshot racing a
//! record may see the count updated before the sample lands in the window,
//! which is harmless for monitoring.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed log-spaced bucket bounds suited to stage durations in
/// microseconds: 5 µs – 1 s.
pub const DEFAULT_DURATION_BOUNDS_US: &[u64] = &[
    5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
    500_000, 1_000_000,
];

/// Fixed log-spaced bucket bounds for sub-microsecond latencies in
/// nanoseconds: 50 ns – 10 ms. Queue pushes routinely finish in a few
/// hundred nanoseconds, which the microsecond bounds flatten to zero.
pub const DEFAULT_DURATION_BOUNDS_NS: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000, 10_000_000,
];

/// How many raw samples a histogram retains for exact percentiles. Matches
/// the engine's historical `LatencyRecorder` window.
pub const SAMPLE_WINDOW: usize = 4096;

/// A fixed-bucket histogram with an exact-percentile sample window.
///
/// Recording is lock-free: bucket counts, count/sum/max, and a bounded
/// ring of raw samples are all relaxed atomics. [`Histogram::snapshot`]
/// copies and sorts the window (at most [`SAMPLE_WINDOW`] samples), so
/// p50/p90/p99/max are exact over the recent window rather than
/// bucket-boundary estimates.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending inclusive upper bounds; the implicit final bucket is +Inf.
    bounds: Vec<u64>,
    /// Per-bucket counts, `bounds.len() + 1` entries.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    window: Vec<AtomicU64>,
    cursor: AtomicUsize,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            window: (0..SAMPLE_WINDOW).map(|_| AtomicU64::new(0)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The configured bucket bounds (without the implicit +Inf).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        // `le` is inclusive, Prometheus-style: first bound >= value.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.window.len();
        self.window[slot].store(value, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in whole microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records a [`std::time::Duration`] in whole nanoseconds (saturating)
    /// — pair with [`DEFAULT_DURATION_BOUNDS_NS`] for sub-microsecond
    /// latencies that the microsecond resolution would flatten to zero.
    #[inline]
    pub fn record_duration_ns(&self, elapsed: std::time::Duration) {
        self.record(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a scoped timer that records elapsed microseconds on drop.
    /// Inert (clock never read) when telemetry is off — see
    /// [`crate::telemetry_on`].
    pub fn start_span(&self) -> SpanGuard<'_> {
        self.start_span_if(true)
    }

    /// Like [`Histogram::start_span`], but also inert when `sampled` is
    /// false — the head-sampling hook for per-report hot paths, where even
    /// the two clock reads of an always-on span are too expensive (see
    /// `obs::trace::sampler`).
    pub fn start_span_if(&self, sampled: bool) -> SpanGuard<'_> {
        if sampled && crate::telemetry_on() {
            SpanGuard {
                hist: Some((self, Instant::now())),
            }
        } else {
            SpanGuard { hist: None }
        }
    }

    /// Total observations ever recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot with exact percentiles over the recent
    /// sample window.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let filled = (count.min(self.window.len() as u64)) as usize;
        let mut samples: Vec<u64> = self.window[..filled]
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        samples.sort_unstable();
        let pick = |p: f64| -> u64 {
            if samples.is_empty() {
                0
            } else {
                samples[((samples.len() - 1) as f64 * p).round() as usize]
            }
        };
        let mut cumulative = 0u64;
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            let le = self.bounds.get(i).copied().map(|b| b as f64);
            buckets.push((le.unwrap_or(f64::INFINITY), cumulative));
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observations ever recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest value ever recorded.
    pub max: u64,
    /// Exact median over the recent sample window.
    pub p50: u64,
    /// Exact 90th percentile over the recent sample window.
    pub p90: u64,
    /// Exact 99th percentile over the recent sample window.
    pub p99: u64,
    /// `(upper bound, cumulative count)` per bucket; the last bound is
    /// `f64::INFINITY`.
    pub buckets: Vec<(f64, u64)>,
}

/// Scoped timer returned by [`Histogram::start_span`]; records the elapsed
/// microseconds into the histogram when dropped.
#[derive(Debug)]
#[must_use = "bind the span guard to a variable; dropping it immediately records ~0"]
pub struct SpanGuard<'a> {
    hist: Option<(&'a Histogram, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.hist.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100]);
        h.record(10); // lands in le=10
        h.record(11); // lands in le=100
        h.record(1_000); // lands in +Inf
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], (10.0, 1));
        assert_eq!(snap.buckets[1], (100.0, 2));
        assert_eq!(snap.buckets[2], (f64::INFINITY, 3));
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1_021);
        assert_eq!(snap.max, 1_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let h = Histogram::new(DEFAULT_DURATION_BOUNDS_US);
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!((snap.p50, snap.p90, snap.p99, snap.max), (0, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn window_overflow_keeps_recent_samples() {
        let h = Histogram::new(&[1_000_000]);
        // Overfill the window with small values, then flood with 500s: the
        // percentile window must reflect the recent flood.
        for _ in 0..SAMPLE_WINDOW {
            h.record(1);
        }
        for _ in 0..SAMPLE_WINDOW {
            h.record(500);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 2 * SAMPLE_WINDOW as u64);
        assert_eq!(snap.p50, 500);
        assert_eq!(snap.max, 500);
    }

    #[test]
    fn span_guard_records_once() {
        let restore = crate::max_level();
        crate::set_level(crate::Level::Info);
        let h = Histogram::new(&[1_000_000]);
        {
            let _span = h.start_span();
        }
        assert_eq!(h.count(), 1);
        // Telemetry off: the guard is inert.
        crate::set_level(crate::Level::Off);
        {
            let _span = h.start_span();
        }
        assert_eq!(h.count(), 1);
        crate::set_level(restore);
    }
}
