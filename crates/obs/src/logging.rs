//! Leveled logging with `RFIPAD_LOG` filtering and a bounded event journal.
//!
//! The level is parsed from the `RFIPAD_LOG` environment variable once, on
//! first use, and cached in an atomic; [`set_level`] overrides it at run
//! time (tests and benchmarks use this instead of mutating the process
//! environment, which is not thread-safe). A disabled level costs one
//! relaxed atomic load and a branch.
//!
//! Every emitted event also lands in a bounded ring buffer — the
//! *journal* — so a crash handler or stats endpoint can dump the recent
//! history without having captured stderr.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Log verbosity, ordered from silent to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Level {
    /// Telemetry disabled: no log output, spans do not read the clock.
    Off = 0,
    /// Unrecoverable or surprising failures.
    Error = 1,
    /// Degraded but proceeding (drops, clamps, evictions).
    Warn = 2,
    /// Progress and lifecycle notes (the default).
    Info = 3,
    /// Per-operation detail for debugging.
    Debug = 4,
    /// Very chatty, per-report detail.
    Trace = 5,
}

impl Level {
    /// Short uppercase tag used in the output line.
    pub fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }

    /// Parses a level name as accepted in `RFIPAD_LOG` (case-insensitive).
    /// Returns `None` for unrecognized text.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_usize(v: usize) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// Sentinel meaning "not yet initialized from the environment".
const UNINIT: usize = usize::MAX;

static MAX_LEVEL: AtomicUsize = AtomicUsize::new(UNINIT);

/// The default level when `RFIPAD_LOG` is unset or unparseable.
pub const DEFAULT_LEVEL: Level = Level::Info;

/// The active maximum level. First call reads `RFIPAD_LOG`; later calls
/// are one relaxed atomic load.
pub fn max_level() -> Level {
    let raw = MAX_LEVEL.load(Ordering::Relaxed);
    if raw != UNINIT {
        return Level::from_usize(raw);
    }
    let level = std::env::var("RFIPAD_LOG")
        .ok()
        .and_then(|v| Level::parse(&v))
        .unwrap_or(DEFAULT_LEVEL);
    // A racing first call may store the same value; that is fine.
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
    level
}

/// Overrides the active level, taking precedence over `RFIPAD_LOG`.
/// Thread-safe, unlike mutating the environment.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Whether telemetry is on at all. With `RFIPAD_LOG=off` span timers and
/// the journal are disabled; plain counters stay live (they are part of
/// the engine's public statistics).
pub fn telemetry_on() -> bool {
    max_level() != Level::Off
}

/// One journaled log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Monotonic sequence number (process-wide, starts at 1).
    pub seq: u64,
    /// Event level.
    pub level: Level,
    /// Module path that emitted the event.
    pub target: String,
    /// Rendered message, structured fields already appended.
    pub message: String,
}

/// Journal capacity: old events are dropped once this many are retained.
pub const JOURNAL_CAPACITY: usize = 512;

static JOURNAL_SEQ: AtomicU64 = AtomicU64::new(0);
static JOURNAL: Mutex<VecDeque<JournalEntry>> = Mutex::new(VecDeque::new());

/// Emits one event: writes `[LEVEL target] message` to stderr and appends
/// it to the journal. Usually called through the [`crate::log!`] family,
/// which performs the level check first.
pub fn emit(level: Level, target: &str, message: &str) {
    eprintln!("[{} {target}] {message}", level.tag());
    let seq = JOURNAL_SEQ.fetch_add(1, Ordering::Relaxed) + 1;
    let entry = JournalEntry {
        seq,
        level,
        target: target.to_string(),
        message: message.to_string(),
    };
    let mut journal = JOURNAL.lock().expect("journal poisoned");
    if journal.len() >= JOURNAL_CAPACITY {
        journal.pop_front();
    }
    journal.push_back(entry);
}

/// Copies the journal, oldest first.
pub fn journal_snapshot() -> Vec<JournalEntry> {
    JOURNAL
        .lock()
        .expect("journal poisoned")
        .iter()
        .cloned()
        .collect()
}

/// Clears the journal (tests and post-dump housekeeping).
pub fn journal_clear() {
    JOURNAL.lock().expect("journal poisoned").clear();
}

/// Renders the journal as JSON, oldest first:
/// `{"entries":[{"seq":N,"level":"INFO","target":"...","message":"..."}]}`.
/// Backs the `/debug/journal` endpoint.
pub fn journal_json() -> String {
    use crate::expo::escape_json;
    use std::fmt::Write as _;
    let entries = journal_snapshot();
    let mut out = String::with_capacity(64 + entries.len() * 96);
    out.push_str("{\"entries\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"seq\":{},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\"}}",
            e.seq,
            e.level.tag(),
            escape_json(&e.target),
            escape_json(&e.message)
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_names_case_insensitively() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("OFF"), Some(Level::Off));
        assert_eq!(Level::parse("Error"), Some(Level::Error));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Error);
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
    }

    // The level filter is process-global state shared by every test in
    // this binary, so the filtering checks run as ONE test to avoid
    // parallel interleaving.
    #[test]
    fn set_level_filters_and_journal_records() {
        let restore = max_level();

        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        assert!(telemetry_on());

        set_level(Level::Off);
        assert!(!enabled(Level::Error));
        assert!(!telemetry_on());

        set_level(Level::Debug);
        let mark = "journal-filter-probe";
        crate::debug!("{mark}"; answer = 42);
        crate::trace!("must-not-appear {mark}");
        let journal = journal_snapshot();
        let hit = journal
            .iter()
            .rfind(|e| e.message.contains(mark))
            .expect("debug event journaled");
        assert_eq!(hit.level, Level::Debug);
        assert!(
            hit.message.contains("answer=42"),
            "fields appended: {hit:?}"
        );
        assert!(hit.target.contains("logging"), "target is module path");
        assert!(
            !journal
                .iter()
                .any(|e| e.message.contains("must-not-appear")),
            "trace event must be filtered at debug level"
        );

        set_level(restore);
    }

    #[test]
    fn journal_is_bounded() {
        let restore = max_level();
        set_level(Level::Info);
        for i in 0..(JOURNAL_CAPACITY + 40) {
            emit(Level::Info, "obs::test", &format!("bounded {i}"));
        }
        let journal = journal_snapshot();
        assert!(journal.len() <= JOURNAL_CAPACITY);
        // Sequence numbers stay strictly increasing across the wrap.
        assert!(journal.windows(2).all(|w| w[0].seq < w[1].seq));
        set_level(restore);
    }
}
