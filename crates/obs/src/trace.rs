//! Deterministic end-to-end tracing with per-session flight recorders.
//!
//! The ingest path spans several hops — wire decode, engine queue wait,
//! the five pipeline stages, and event emission — and this module ties
//! them together without pulling in `tracing`:
//!
//! - **Ids** ([`TraceId`] / [`SpanId`]): 64-bit ids drawn from a seedable
//!   splitmix64 stream ([`seed_ids`]), so replays and tests produce the
//!   same ids in the same order. Ids are never zero.
//! - **Spans** ([`SpanEvent`]): parent-linked, named, with start/end
//!   timestamps in microseconds since the recorder's epoch.
//! - **Flight recorder** ([`FlightRecorder`]): a bounded per-session ring
//!   of completed spans; old spans are dropped (and counted) once the
//!   ring is full, so a long-lived session costs constant memory. The
//!   process-global session registry ([`recorder`] / [`lookup`] /
//!   [`remove`]) backs the `/debug/trace/<session>` endpoint.
//! - **Head sampling** ([`Sampler`]): a deterministic 1-in-N counter so
//!   per-report hops (the stage pushes) only pay the two clock reads on a
//!   sampled fraction of pushes, keeping telemetry within its 3% overhead
//!   budget. Batch-level hops (decode, queue, emit) are cheap enough to
//!   record unsampled.
//! - **Slow-span journaling** ([`finish_span`]): spans longer than
//!   [`slow_span_us`] (env `RFIPAD_TRACE_SLOW_US`, default 50 ms) are
//!   echoed into the log journal for post-mortem dumps.
//!
//! Everything is inert when telemetry is off ([`crate::telemetry_on`]):
//! recorders accept nothing and samplers return `false`, so a
//! `RFIPAD_LOG=off` replay never reads the clock for tracing.

use crate::expo::escape_json;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Identifies one end-to-end trace (a session's ingest lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// The default id-stream seed; [`seed_ids`] overrides it.
const DEFAULT_ID_SEED: u64 = 0x243f_6a88_85a3_08d3; // pi, like the paper's carrier

static ID_STATE: AtomicU64 = AtomicU64::new(DEFAULT_ID_SEED);

/// Reseeds the process-global id stream. Two processes (or two test runs)
/// seeded identically draw identical id sequences — the property the
/// golden-replay determinism checks rely on.
pub fn seed_ids(seed: u64) {
    ID_STATE.store(seed, Ordering::Relaxed);
}

/// splitmix64 output function over an atomic counter: each call advances
/// the state by the golden-ratio increment and mixes it. Never returns 0
/// (0 is reserved for "absent" on the wire).
fn next_id() -> u64 {
    let mut z = ID_STATE
        .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Draws the next trace id from the seeded stream.
pub fn next_trace_id() -> TraceId {
    TraceId(next_id())
}

/// Draws the next span id from the seeded stream.
pub fn next_span_id() -> SpanId {
    SpanId(next_id())
}

/// One completed span: a named hop with its parent link and wall-clock
/// bounds in microseconds since the owning recorder's epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// The enclosing span, if any (the root span has none).
    pub parent: Option<SpanId>,
    /// Hop name: `session`, `decode`, `queue`, `stage:framing`, `emit`, …
    pub name: String,
    /// Start, microseconds since the recorder epoch.
    pub start_us: u64,
    /// End, microseconds since the recorder epoch (`>= start_us`).
    pub end_us: u64,
}

impl SpanEvent {
    /// Elapsed microseconds (saturating).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Renders the span as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":",
            self.trace.0, self.span.0
        );
        match self.parent {
            Some(p) => {
                let _ = write!(out, "\"{:016x}\"", p.0);
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"name\":\"{}\",\"start_us\":{},\"end_us\":{}}}",
            escape_json(&self.name),
            self.start_us,
            self.end_us
        );
        out
    }

    /// Parses a span from the single-line JSON form [`SpanEvent::to_json`]
    /// writes. Returns `None` on any malformation — the flight-recorder
    /// dump is machine-written, so partial recovery is not worth the
    /// complexity.
    pub fn from_json(line: &str) -> Option<SpanEvent> {
        let hex = |key: &str| -> Option<u64> {
            let field = json_str_field(line, key)?;
            u64::from_str_radix(&field, 16).ok()
        };
        let num = |key: &str| -> Option<u64> {
            let marker = format!("\"{key}\":");
            let at = line.find(&marker)? + marker.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let parent = match json_str_field(line, "parent") {
            Some(p) => Some(SpanId(u64::from_str_radix(&p, 16).ok()?)),
            None if line.contains("\"parent\":null") => None,
            None => return None,
        };
        Some(SpanEvent {
            trace: TraceId(hex("trace")?),
            span: SpanId(hex("span")?),
            parent,
            name: json_str_field(line, "name")?,
            start_us: num("start_us")?,
            end_us: num("end_us")?,
        })
    }
}

/// Extracts the string value of `"key":"..."` from a single-line JSON
/// object, unescaping the sequences [`escape_json`] produces.
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let at = line.find(&marker)? + marker.len();
    let mut out = String::new();
    let mut chars = line[at..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let code: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

/// Default span capacity of a per-session flight recorder.
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// A bounded ring of completed spans for one session.
///
/// Recording takes a short mutex (the ring is per-session and writes are
/// batch-granular, so contention is negligible); once full, the oldest
/// span is dropped and counted so the dump can say how much history was
/// lost.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    ring: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl FlightRecorder {
    /// A fresh recorder holding at most `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(64))),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Microseconds since this recorder's epoch — the timebase every
    /// [`SpanEvent`] it holds uses.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }

    /// Appends a completed span, evicting the oldest if the ring is full.
    pub fn record(&self, event: SpanEvent) {
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Copies the retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Spans evicted so far because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Dumps the recorder as JSON: `{"dropped":N,"spans":[...]}` with one
    /// span object per line inside the array, so a line-oriented parser
    /// ([`SpanEvent::from_json`]) can walk the dump.
    pub fn to_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(64 + spans.len() * 96);
        let _ = write!(out, "{{\"dropped\":{},\"spans\":[", self.dropped());
        for (i, span) in spans.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&span.to_json());
        }
        out.push_str("\n]}\n");
        out
    }
}

/// How many sessions the recorder registry retains. Closed sessions keep
/// their recorder (so `/debug/trace/<session>` works post-mortem) until
/// the registry is full, at which point the oldest-registered session is
/// evicted.
pub const MAX_TRACKED_SESSIONS: usize = 512;

type RecorderMap = Mutex<HashMap<String, (u64, Arc<FlightRecorder>)>>;

fn recorders() -> &'static RecorderMap {
    static RECORDERS: OnceLock<RecorderMap> = OnceLock::new();
    RECORDERS.get_or_init(|| Mutex::new(HashMap::new()))
}

static RECORDER_SEQ: AtomicU64 = AtomicU64::new(0);

/// The flight recorder for `session`, created with
/// [`DEFAULT_RECORDER_CAPACITY`] on first use. A full registry
/// ([`MAX_TRACKED_SESSIONS`]) evicts its oldest-registered session.
pub fn recorder(session: &str) -> Arc<FlightRecorder> {
    let mut map = recorders().lock().expect("recorder registry poisoned");
    if !map.contains_key(session) && map.len() >= MAX_TRACKED_SESSIONS {
        if let Some(oldest) = map
            .iter()
            .min_by_key(|(_, (seq, _))| *seq)
            .map(|(k, _)| k.clone())
        {
            map.remove(&oldest);
        }
    }
    let entry = map.entry(session.to_string()).or_insert_with(|| {
        (
            RECORDER_SEQ.fetch_add(1, Ordering::Relaxed),
            Arc::new(FlightRecorder::new(DEFAULT_RECORDER_CAPACITY)),
        )
    });
    Arc::clone(&entry.1)
}

/// The flight recorder for `session`, if one exists.
pub fn lookup(session: &str) -> Option<Arc<FlightRecorder>> {
    recorders()
        .lock()
        .expect("recorder registry poisoned")
        .get(session)
        .map(|(_, rec)| Arc::clone(rec))
}

/// Drops `session`'s flight recorder (close/eviction housekeeping).
/// Holders of the `Arc` keep their handle; the registry forgets it.
pub fn remove(session: &str) {
    recorders()
        .lock()
        .expect("recorder registry poisoned")
        .remove(session);
}

/// The sessions that currently have a flight recorder, sorted.
pub fn sessions() -> Vec<String> {
    let mut names: Vec<String> = recorders()
        .lock()
        .expect("recorder registry poisoned")
        .keys()
        .cloned()
        .collect();
    names.sort();
    names
}

/// A deterministic 1-in-N head sampler.
///
/// `sample()` is one relaxed `fetch_add` plus a compare; with `every <= 1`
/// everything is sampled, and the first call is always sampled so short
/// sessions still produce spans. When telemetry is off it returns `false`
/// without touching the counter.
#[derive(Debug)]
pub struct Sampler {
    every: AtomicU64,
    counter: AtomicU64,
}

impl Sampler {
    /// A sampler keeping 1 in `every` decisions.
    pub const fn new(every: u64) -> Self {
        Self {
            every: AtomicU64::new(every),
            counter: AtomicU64::new(0),
        }
    }

    /// Changes the sampling period.
    pub fn set_every(&self, every: u64) {
        self.every.store(every.max(1), Ordering::Relaxed);
    }

    /// The current sampling period.
    pub fn every(&self) -> u64 {
        self.every.load(Ordering::Relaxed).max(1)
    }

    /// Whether this decision is sampled.
    #[inline]
    pub fn sample(&self) -> bool {
        if !crate::telemetry_on() {
            return false;
        }
        let every = self.every.load(Ordering::Relaxed);
        if every <= 1 {
            return true;
        }
        self.counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(every)
    }
}

/// Default sampling period for per-report hops; `RFIPAD_TRACE_SAMPLE`
/// overrides it at startup.
pub const DEFAULT_SAMPLE_EVERY: u64 = 16;

/// The process-global head sampler for per-report hops (stage pushes).
/// Initialized from `RFIPAD_TRACE_SAMPLE` on first use.
pub fn sampler() -> &'static Sampler {
    static SAMPLER: OnceLock<Sampler> = OnceLock::new();
    SAMPLER.get_or_init(|| {
        let every = std::env::var("RFIPAD_TRACE_SAMPLE")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_SAMPLE_EVERY)
            .max(1);
        Sampler::new(every)
    })
}

/// Default slow-span journaling threshold: 50 ms.
pub const DEFAULT_SLOW_SPAN_US: u64 = 50_000;

/// Sentinel meaning "not yet initialized from the environment".
const SLOW_UNINIT: u64 = u64::MAX;

static SLOW_SPAN_US: AtomicU64 = AtomicU64::new(SLOW_UNINIT);

/// The slow-span threshold in microseconds; spans at least this long are
/// journaled by [`finish_span`]. First call reads `RFIPAD_TRACE_SLOW_US`.
pub fn slow_span_us() -> u64 {
    let raw = SLOW_SPAN_US.load(Ordering::Relaxed);
    if raw != SLOW_UNINIT {
        return raw;
    }
    let us = std::env::var("RFIPAD_TRACE_SLOW_US")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_SLOW_SPAN_US);
    SLOW_SPAN_US.store(us, Ordering::Relaxed);
    us
}

/// Overrides the slow-span threshold (tests and tuning).
pub fn set_slow_span_us(us: u64) {
    SLOW_SPAN_US.store(us.min(SLOW_UNINIT - 1), Ordering::Relaxed);
}

/// Completes a span: journals it if it crossed the slow threshold, then
/// records it into the session's flight recorder.
pub fn finish_span(recorder: &FlightRecorder, event: SpanEvent) {
    let duration = event.duration_us();
    if duration >= slow_span_us() {
        crate::warn!("slow span"; name = event.name, duration_us = duration,
            trace = format_args!("{:016x}", event.trace.0));
    }
    recorder.record(event);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_id_streams_repeat() {
        seed_ids(42);
        let a: Vec<u64> = (0..8).map(|_| next_id()).collect();
        seed_ids(42);
        let b: Vec<u64> = (0..8).map(|_| next_id()).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|&id| id != 0));
        // Distinct ids within the window.
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        seed_ids(DEFAULT_ID_SEED);
    }

    #[test]
    fn span_json_round_trips() {
        let span = SpanEvent {
            trace: TraceId(0xdead_beef),
            span: SpanId(7),
            parent: Some(SpanId(3)),
            name: "stage:framing \"odd\"\nname".into(),
            start_us: 10,
            end_us: 35,
        };
        let line = span.to_json();
        assert_eq!(SpanEvent::from_json(&line), Some(span.clone()));
        assert_eq!(span.duration_us(), 25);

        let root = SpanEvent {
            parent: None,
            ..span
        };
        let line = root.to_json();
        assert!(line.contains("\"parent\":null"));
        assert_eq!(SpanEvent::from_json(&line), Some(root));
        assert_eq!(SpanEvent::from_json("{\"nope\":1}"), None);
    }

    #[test]
    fn recorder_is_bounded_and_counts_drops() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(SpanEvent {
                trace: TraceId(1),
                span: SpanId(i + 1),
                parent: None,
                name: "hop".into(),
                start_us: i,
                end_us: i + 1,
            });
        }
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(rec.dropped(), 6);
        // Oldest first, and the retained spans are the most recent.
        assert_eq!(spans[0].span, SpanId(7));
        assert_eq!(spans[3].span, SpanId(10));
        let dump = rec.to_json();
        assert!(dump.contains("\"dropped\":6"));
        let parsed: Vec<SpanEvent> = dump.lines().filter_map(SpanEvent::from_json).collect();
        assert_eq!(parsed, spans);
    }

    #[test]
    fn registry_creates_looks_up_and_removes() {
        let name = "trace-test-session";
        assert!(lookup(name).is_none());
        let rec = recorder(name);
        assert!(Arc::ptr_eq(&rec, &recorder(name)));
        assert!(sessions().contains(&name.to_string()));
        remove(name);
        assert!(lookup(name).is_none());
    }

    #[test]
    fn sampler_keeps_one_in_n() {
        let restore = crate::max_level();
        crate::set_level(crate::Level::Info);
        let s = Sampler::new(4);
        let hits = (0..16).filter(|_| s.sample()).count();
        assert_eq!(hits, 4);
        s.set_every(1);
        assert!(s.sample());
        crate::set_level(crate::Level::Off);
        assert!(!s.sample(), "telemetry off disables sampling");
        crate::set_level(restore);
    }

    #[test]
    fn slow_spans_reach_the_journal() {
        let restore_level = crate::max_level();
        crate::set_level(crate::Level::Info);
        let restore_slow = slow_span_us();
        set_slow_span_us(5);
        let rec = FlightRecorder::new(8);
        finish_span(
            &rec,
            SpanEvent {
                trace: TraceId(0xabc),
                span: SpanId(1),
                parent: None,
                name: "slow-span-probe".into(),
                start_us: 0,
                end_us: 100,
            },
        );
        let journal = crate::logging::journal_snapshot();
        assert!(
            journal
                .iter()
                .any(|e| e.message.contains("slow-span-probe")),
            "slow span journaled"
        );
        assert_eq!(rec.snapshot().len(), 1);
        set_slow_span_us(restore_slow);
        crate::set_level(restore_level);
    }

    #[test]
    fn concurrent_records_and_snapshots_stay_consistent() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let rec = std::sync::Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        rec.record(SpanEvent {
                            trace: TraceId(1),
                            span: SpanId(w * 1000 + i + 1),
                            parent: None,
                            name: format!("w{w}"),
                            start_us: i,
                            end_us: i + 1,
                        });
                    }
                })
            })
            .collect();
        // Snapshot and dump concurrently with the writers: every observed
        // state must be internally consistent and line-parseable.
        for _ in 0..50 {
            let snap = rec.snapshot();
            assert!(snap.len() <= 64, "ring overflowed: {}", snap.len());
            let dump = rec.to_json();
            let parsed = dump
                .lines()
                .filter_map(|l| SpanEvent::from_json(l.trim().trim_end_matches(',')))
                .count();
            assert!(parsed <= 64);
            std::thread::yield_now();
        }
        for w in writers {
            w.join().expect("writer");
        }
        // Quiesced: retention accounting is exact.
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 64);
        assert_eq!(rec.dropped() + snap.len() as u64, 800);
        let dump = rec.to_json();
        let parsed = dump
            .lines()
            .filter_map(|l| SpanEvent::from_json(l.trim().trim_end_matches(',')))
            .count();
        assert_eq!(parsed, 64);
    }
}
