//! Property and concurrency tests for the obs metric primitives.

use obs::metrics::{Histogram, SAMPLE_WINDOW};
use proptest::prelude::*;
use std::sync::Arc;

/// The reference percentile definition the histogram window must match:
/// sort and pick `round((len - 1) * p)` — the same formula the engine's
/// original `LatencyRecorder` used.
fn reference_percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * p).round() as usize]
}

/// Reference bucketing: count of samples `<=` each bound, cumulatively.
fn reference_buckets(samples: &[u64], bounds: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(bounds.len() + 1);
    for &b in bounds {
        out.push(samples.iter().filter(|&&s| s <= b).count() as u64);
    }
    out.push(samples.len() as u64);
    out
}

proptest! {
    #[test]
    fn histogram_matches_sorted_vector_reference(
        samples in prop::collection::vec(0u64..2_000_000, 1..512),
    ) {
        let bounds = [10u64, 100, 1_000, 10_000, 100_000, 1_000_000];
        let h = Histogram::new(&bounds);
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *sorted.last().unwrap());
        prop_assert_eq!(snap.p50, reference_percentile(&sorted, 0.50));
        prop_assert_eq!(snap.p90, reference_percentile(&sorted, 0.90));
        prop_assert_eq!(snap.p99, reference_percentile(&sorted, 0.99));

        let reference = reference_buckets(&samples, &bounds);
        let got: Vec<u64> = snap.buckets.iter().map(|&(_, c)| c).collect();
        prop_assert_eq!(got, reference);

        // Percentiles are ordered and bounded by the observed extremes.
        prop_assert!(snap.p50 <= snap.p90);
        prop_assert!(snap.p90 <= snap.p99);
        prop_assert!(snap.p99 <= snap.max);
        prop_assert!(snap.p50 >= sorted[0]);
    }

    #[test]
    fn window_overflow_keeps_the_most_recent_samples(
        old in prop::collection::vec(1u64..100, 1..64),
        recent_value in 5_000u64..10_000,
    ) {
        let h = Histogram::new(&[1_000_000]);
        for &s in &old {
            h.record(s);
        }
        // Flood a full window of a single recent value: every percentile
        // must land on it exactly.
        for _ in 0..SAMPLE_WINDOW {
            h.record(recent_value);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, (old.len() + SAMPLE_WINDOW) as u64);
        prop_assert_eq!(snap.p50, recent_value);
        prop_assert_eq!(snap.p99, recent_value);
    }
}

#[test]
fn concurrent_counter_increments_are_all_counted() {
    let registry = obs::Registry::new();
    let counter = registry.counter("contended_total", "Contended test counter.", &[]);
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no panic");
    }
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
}

#[test]
fn concurrent_histogram_records_preserve_count_and_sum() {
    let h = Arc::new(Histogram::new(&[10, 100, 1_000]));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 10_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * 7 + i % 50);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no panic");
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS)
        .map(|t| (0..PER_THREAD).map(|i| t * 7 + i % 50).sum::<u64>())
        .sum();
    assert_eq!(snap.sum, expected_sum);
    // The final bucket is cumulative over everything.
    assert_eq!(snap.buckets.last().unwrap().1, THREADS * PER_THREAD);
}
