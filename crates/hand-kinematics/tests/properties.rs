//! Property-based tests of the kinematics invariants.

use hand_kinematics::letters::{letter_strokes, ALPHABET};
use hand_kinematics::pad::PadFrame;
use hand_kinematics::stroke::{default_placement, PlacedStroke, Stroke, StrokeShape};
use hand_kinematics::trajectory::{min_jerk, trapezoid, Trajectory};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rf_sim::geometry::Vec3;
use rf_sim::tags::{TagArray, TagModel};

fn writer(speed: f64) -> Writer {
    let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
    Writer::new(
        PadFrame::over_array(&array, 0.03),
        UserProfile::average().with_speed(speed),
    )
}

proptest! {
    /// Both velocity profiles are monotone with pinned endpoints.
    #[test]
    fn progress_functions_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(min_jerk(lo) <= min_jerk(hi) + 1e-12);
        prop_assert!(trapezoid(lo) <= trapezoid(hi) + 1e-12);
        prop_assert!(min_jerk(0.0) == 0.0 && (min_jerk(1.0) - 1.0).abs() < 1e-12);
        prop_assert!(trapezoid(0.0) == 0.0 && (trapezoid(1.0) - 1.0).abs() < 1e-12);
    }

    /// A trajectory never teleports: consecutive positions are within the
    /// physically possible step for the segment's peak speed.
    #[test]
    fn trajectories_are_continuous(
        x in -0.2f64..0.4,
        y in -0.4f64..0.2,
        duration in 0.3f64..3.0,
    ) {
        let mut tr = Trajectory::new();
        let from = Vec3::new(0.0, 0.0, 0.03);
        let to = Vec3::new(x, y, 0.03);
        tr.push_segment(0.0, duration, vec![from, to]);
        let len = from.distance(to);
        // Peak speed of min-jerk is 1.875 × mean speed.
        let max_step = 1.9 * len / duration * 0.011;
        let samples = tr.sample(0.01);
        for pair in samples.windows(2) {
            prop_assert!(pair[0].1.distance(pair[1].1) <= max_step + 1e-9);
        }
    }

    /// Stroke durations respect isochrony: longer strokes take longer, but
    /// sub-linearly; faster users finish sooner.
    #[test]
    fn stroke_duration_isochrony(speed in 0.5f64..2.5) {
        let w = writer(speed);
        let short = PlacedStroke::new(Stroke::new(StrokeShape::HLine), (0.5, 0.3), (0.5, 0.7));
        let long = PlacedStroke::new(Stroke::new(StrokeShape::HLine), (0.5, 0.02), (0.5, 0.98));
        let d_short = w.stroke_duration(&short);
        let d_long = w.stroke_duration(&long);
        prop_assert!(d_long > d_short);
        // Sub-linear: 2.4× the length takes < 2.4× the time.
        prop_assert!(d_long / d_short < 2.4);
        // Faster user is faster.
        let faster = writer(speed * 1.5);
        prop_assert!(faster.stroke_duration(&long) < d_long);
    }

    /// Written sessions have ordered, non-overlapping ground-truth strokes
    /// separated by genuine pauses, for every letter and any seed.
    #[test]
    fn sessions_have_ordered_strokes(letter_idx in 0usize..26, seed in 0u64..500) {
        let letter = ALPHABET[letter_idx];
        let w = writer(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let session = w.write_letter(letter, 1.0, &mut rng);
        prop_assert_eq!(session.strokes.len(), letter_strokes(letter).unwrap().len());
        for pair in session.strokes.windows(2) {
            prop_assert!(pair[1].start > pair[0].end, "strokes overlap");
        }
        for s in &session.strokes {
            prop_assert!(s.end > s.start);
        }
    }

    /// The hand stays near write height during every ground-truth stroke
    /// span and gets raised between strokes (for a careful, never-sloppy
    /// writer).
    #[test]
    fn hand_height_profile(seed in 0u64..200) {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
        let mut careful = UserProfile::average();
        careful.sloppy_adjust_prob = 0.0;
        let w = Writer::new(PadFrame::over_array(&array, 0.03), careful);
        let mut rng = StdRng::seed_from_u64(seed);
        let session = w.write_letter('H', 1.0, &mut rng);
        for s in &session.strokes {
            let mid = 0.5 * (s.start + s.end);
            let p = session.trajectory.position(mid).expect("inside span");
            prop_assert!(p.z < 0.06, "writing height {}", p.z);
        }
        // Midpoint of the first pause: raised.
        let gap_mid = 0.5 * (session.strokes[0].end + session.strokes[1].start);
        let p = session.trajectory.position(gap_mid).expect("inside span");
        prop_assert!(p.z > 0.12, "adjustment height {}", p.z);
    }

    /// Default placements keep every stroke of every shape inside the pad.
    #[test]
    fn default_placements_in_unit_box(shape_idx in 0usize..7) {
        let shape = StrokeShape::all()[shape_idx];
        let p = default_placement(Stroke::new(shape));
        for (r, c) in p.waypoints() {
            prop_assert!((-0.05..=1.05).contains(&r), "row {}", r);
            prop_assert!((-0.05..=1.05).contains(&c), "col {}", c);
        }
    }
}
