//! The tree-structure letter grammar (paper Fig. 10, after Agrawal et al.).
//!
//! Every uppercase English letter decomposes into a sequence of the six
//! directional stroke shapes. This module is the *canonical* table both the
//! workload generator (how letters are written) and the recognizer (the
//! grammar trie in the `rfipad` crate) share.
//!
//! The paper's evaluation groups letters by stroke count (Fig. 23):
//! group #1 = 1 stroke {C, I}, #2 = 2 strokes {D,J,L,O,P,S,T,V,X},
//! #3 = 3 strokes {A,B,F,G,H,K,N,Q,R,U,Y,Z}, #4 = 4 strokes {E,M,W}.
//! Some letters share a stroke-shape sequence (D/P, O/S, V/X) and are
//! disambiguated by stroke *positions*, exactly as §III-C2 describes.

use crate::stroke::{PlacedStroke, Stroke, StrokeShape};

use StrokeShape::{ArcLeft, ArcRight, Backslash, HLine, Slash, VLine};

/// The 26 uppercase letters RFIPad recognizes.
pub const ALPHABET: [char; 26] = [
    'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L', 'M', 'N', 'O', 'P', 'Q', 'R', 'S',
    'T', 'U', 'V', 'W', 'X', 'Y', 'Z',
];

fn fwd(shape: StrokeShape, from: (f64, f64), to: (f64, f64)) -> PlacedStroke {
    PlacedStroke::new(Stroke::new(shape), from, to)
}

fn rev(shape: StrokeShape, from: (f64, f64), to: (f64, f64)) -> PlacedStroke {
    PlacedStroke::new(Stroke::reversed(shape), from, to)
}

/// The placed stroke sequence for an uppercase letter, in writing order,
/// over the normalized pad box (`(row, col)` in `[0, 1]²`, row 0 = top).
///
/// Returns `None` for characters outside `A..=Z`.
///
/// ```
/// use hand_kinematics::letters::letter_strokes;
/// let h = letter_strokes('H').unwrap();
/// assert_eq!(h.len(), 3); // | − |
/// ```
pub fn letter_strokes(letter: char) -> Option<Vec<PlacedStroke>> {
    let strokes = match letter.to_ascii_uppercase() {
        'A' => vec![
            fwd(Slash, (1.0, 0.02), (0.0, 0.5)),
            fwd(Backslash, (0.0, 0.5), (1.0, 0.98)),
            fwd(HLine, (0.6, 0.2), (0.6, 0.8)),
        ],
        'B' => vec![
            fwd(VLine, (0.0, 0.15), (1.0, 0.15)),
            fwd(ArcRight, (0.0, 0.15), (0.5, 0.15)),
            fwd(ArcRight, (0.5, 0.15), (1.0, 0.15)),
        ],
        'C' => vec![fwd(ArcLeft, (0.1, 0.75), (0.9, 0.75))],
        'D' => vec![
            fwd(VLine, (0.0, 0.25), (1.0, 0.25)),
            fwd(ArcRight, (0.0, 0.25), (1.0, 0.25)),
        ],
        'E' => vec![
            fwd(VLine, (0.0, 0.15), (1.0, 0.15)),
            fwd(HLine, (0.0, 0.15), (0.0, 0.95)),
            fwd(HLine, (0.5, 0.15), (0.5, 0.9)),
            fwd(HLine, (1.0, 0.15), (1.0, 0.95)),
        ],
        'F' => vec![
            fwd(VLine, (0.0, 0.15), (1.0, 0.15)),
            fwd(HLine, (0.0, 0.15), (0.0, 0.95)),
            fwd(HLine, (0.5, 0.15), (0.5, 0.9)),
        ],
        'G' => vec![
            fwd(ArcLeft, (0.08, 0.85), (0.92, 0.85)),
            fwd(HLine, (0.5, 0.3), (0.5, 0.95)),
            fwd(VLine, (0.5, 0.95), (0.95, 0.95)),
        ],
        'H' => vec![
            fwd(VLine, (0.0, 0.2), (1.0, 0.2)),
            fwd(HLine, (0.5, 0.2), (0.5, 0.8)),
            fwd(VLine, (0.0, 0.8), (1.0, 0.8)),
        ],
        'I' => vec![fwd(VLine, (0.0, 0.5), (1.0, 0.5))],
        'J' => vec![
            fwd(VLine, (0.0, 0.65), (0.7, 0.65)),
            rev(ArcLeft, (0.7, 0.65), (0.85, 0.05)),
        ],
        'K' => vec![
            fwd(VLine, (0.0, 0.2), (1.0, 0.2)),
            rev(Slash, (0.0, 0.8), (0.5, 0.2)),
            fwd(Backslash, (0.5, 0.2), (1.0, 0.8)),
        ],
        'L' => vec![
            fwd(VLine, (0.0, 0.25), (1.0, 0.25)),
            fwd(HLine, (1.0, 0.25), (1.0, 0.8)),
        ],
        'M' => vec![
            fwd(VLine, (0.0, 0.08), (1.0, 0.08)),
            fwd(Backslash, (0.0, 0.08), (0.6, 0.5)),
            fwd(Slash, (0.6, 0.5), (0.0, 0.92)),
            fwd(VLine, (0.0, 0.92), (1.0, 0.92)),
        ],
        'N' => vec![
            fwd(VLine, (0.0, 0.2), (1.0, 0.2)),
            fwd(Backslash, (0.0, 0.2), (1.0, 0.8)),
            rev(VLine, (1.0, 0.8), (0.0, 0.8)),
        ],
        'O' => vec![
            fwd(ArcLeft, (0.08, 0.5), (0.92, 0.5)),
            fwd(ArcRight, (0.08, 0.5), (0.92, 0.5)),
        ],
        'P' => vec![
            fwd(VLine, (0.0, 0.25), (1.0, 0.25)),
            fwd(ArcRight, (0.0, 0.25), (0.55, 0.25)),
        ],
        'Q' => vec![
            fwd(ArcLeft, (0.08, 0.5), (0.85, 0.5)),
            fwd(ArcRight, (0.08, 0.5), (0.85, 0.5)),
            fwd(Backslash, (0.55, 0.45), (1.0, 0.95)),
        ],
        'R' => vec![
            fwd(VLine, (0.0, 0.2), (1.0, 0.2)),
            fwd(ArcRight, (0.0, 0.2), (0.55, 0.2)),
            fwd(Backslash, (0.55, 0.2), (1.0, 0.95)),
        ],
        'S' => vec![
            fwd(ArcLeft, (0.02, 0.9), (0.5, 0.5)),
            fwd(ArcRight, (0.5, 0.5), (0.98, 0.1)),
        ],
        'T' => vec![
            fwd(HLine, (0.0, 0.2), (0.0, 0.8)),
            fwd(VLine, (0.0, 0.5), (1.0, 0.5)),
        ],
        'U' => vec![
            fwd(VLine, (0.0, 0.2), (0.55, 0.2)),
            fwd(ArcLeft, (0.55, 0.2), (0.55, 0.8)),
            rev(VLine, (0.55, 0.8), (0.0, 0.8)),
        ],
        'V' => vec![
            fwd(Backslash, (0.0, 0.08), (1.0, 0.5)),
            fwd(Slash, (1.0, 0.5), (0.0, 0.92)),
        ],
        'W' => vec![
            fwd(Backslash, (0.0, 0.02), (0.65, 0.3)),
            fwd(Slash, (0.65, 0.3), (0.05, 0.5)),
            fwd(Backslash, (0.05, 0.5), (0.65, 0.75)),
            fwd(Slash, (0.65, 0.75), (0.0, 0.98)),
        ],
        'X' => vec![
            fwd(Backslash, (0.0, 0.2), (1.0, 0.8)),
            fwd(Slash, (1.0, 0.2), (0.0, 0.8)),
        ],
        'Y' => vec![
            fwd(Backslash, (0.0, 0.1), (0.5, 0.5)),
            fwd(Slash, (0.5, 0.5), (0.0, 0.9)),
            fwd(VLine, (0.5, 0.5), (1.0, 0.5)),
        ],
        'Z' => vec![
            fwd(HLine, (0.0, 0.1), (0.0, 0.9)),
            rev(Slash, (0.0, 0.9), (1.0, 0.1)),
            fwd(HLine, (1.0, 0.1), (1.0, 0.9)),
        ],
        _ => return None,
    };
    Some(strokes)
}

/// Number of strokes in a letter, or `None` for non-letters.
pub fn stroke_count(letter: char) -> Option<usize> {
    letter_strokes(letter).map(|s| s.len())
}

/// The letters with exactly `n` strokes — the paper's Fig. 23 groups.
pub fn letters_with_stroke_count(n: usize) -> Vec<char> {
    ALPHABET
        .iter()
        .copied()
        .filter(|&c| stroke_count(c) == Some(n))
        .collect()
}

/// The shape sequence of a letter (directions stripped), the key the
/// grammar tree is indexed by.
pub fn shape_sequence(letter: char) -> Option<Vec<StrokeShape>> {
    letter_strokes(letter).map(|v| v.iter().map(|p| p.stroke.shape).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_26_letters_defined() {
        for c in ALPHABET {
            assert!(letter_strokes(c).is_some(), "letter {c} missing");
        }
        assert!(letter_strokes('1').is_none());
        assert!(letter_strokes('é').is_none());
    }

    #[test]
    fn lowercase_maps_to_uppercase() {
        assert_eq!(stroke_count('h'), stroke_count('H'));
    }

    #[test]
    fn stroke_count_groups_match_paper_fig23() {
        assert_eq!(letters_with_stroke_count(1), vec!['C', 'I']);
        assert_eq!(
            letters_with_stroke_count(2),
            vec!['D', 'J', 'L', 'O', 'P', 'S', 'T', 'V', 'X']
        );
        assert_eq!(
            letters_with_stroke_count(3),
            vec!['A', 'B', 'F', 'G', 'H', 'K', 'N', 'Q', 'R', 'U', 'Y', 'Z']
        );
        assert_eq!(letters_with_stroke_count(4), vec!['E', 'M', 'W']);
    }

    #[test]
    fn h_is_bar_dash_bar() {
        use StrokeShape::*;
        assert_eq!(shape_sequence('H').unwrap(), vec![VLine, HLine, VLine]);
    }

    #[test]
    fn t_is_dash_bar() {
        use StrokeShape::*;
        assert_eq!(shape_sequence('T').unwrap(), vec![HLine, VLine]);
    }

    #[test]
    fn d_and_p_share_shapes_but_not_geometry() {
        assert_eq!(shape_sequence('D'), shape_sequence('P'));
        let d = letter_strokes('D').unwrap();
        let p = letter_strokes('P').unwrap();
        // P's bowl ends mid-height, D's at the bottom — the positional cue
        // §III-C2 uses for disambiguation.
        assert!((d[1].to.0 - 1.0).abs() < 1e-9);
        assert!(p[1].to.0 < 0.7);
    }

    #[test]
    fn o_and_s_share_shapes_but_not_geometry() {
        assert_eq!(shape_sequence('O'), shape_sequence('S'));
        let o = letter_strokes('O').unwrap();
        let s = letter_strokes('S').unwrap();
        // O's two arcs share endpoints; S's are stacked.
        assert_eq!(o[0].from, o[1].from);
        assert_ne!(s[0].from, s[1].from);
    }

    #[test]
    fn v_and_x_share_shapes_but_not_geometry() {
        assert_eq!(shape_sequence('V'), shape_sequence('X'));
        let v = letter_strokes('V').unwrap();
        // V's strokes meet where the first ends and second starts.
        assert_eq!(v[0].to, v[1].from);
        let x = letter_strokes('X').unwrap();
        assert_ne!(x[0].to, x[1].from);
    }

    #[test]
    fn placements_stay_in_unit_box() {
        for c in ALPHABET {
            for p in letter_strokes(c).unwrap() {
                for (r, col) in [p.from, p.to] {
                    assert!((0.0..=1.0).contains(&r), "{c}: row {r}");
                    assert!((0.0..=1.0).contains(&col), "{c}: col {col}");
                }
            }
        }
    }

    #[test]
    fn directions_consistent_with_shape() {
        // The travel vector of each placed stroke must match its declared
        // shape and direction flag.
        use StrokeShape::*;
        for c in ALPHABET {
            for p in letter_strokes(c).unwrap() {
                let dr = p.to.0 - p.from.0;
                let dc = p.to.1 - p.from.1;
                let ok = match (p.stroke.shape, p.stroke.reversed) {
                    (Click, _) => true,
                    (HLine, false) => dc > 0.0 && dr.abs() < 0.3,
                    (HLine, true) => dc < 0.0 && dr.abs() < 0.3,
                    (VLine, false) => dr > 0.0 && dc.abs() < 0.3,
                    (VLine, true) => dr < 0.0 && dc.abs() < 0.3,
                    (Slash, false) => dr < 0.0 && dc > 0.0,
                    (Slash, true) => dr > 0.0 && dc < 0.0,
                    (Backslash, false) => dr > 0.0 && dc > 0.0,
                    (Backslash, true) => dr < 0.0 && dc < 0.0,
                    // Arcs: canonical travel is top→bottom-ish; reversed
                    // arcs travel upward or sideways (J's hook).
                    (ArcLeft | ArcRight, false) => dr >= 0.0,
                    (ArcLeft | ArcRight, true) => dr <= 0.3,
                };
                assert!(ok, "{c}: {:?} travels ({dr:.2},{dc:.2})", p.stroke);
            }
        }
    }

    #[test]
    fn consecutive_strokes_reasonably_close() {
        // Writing order should not teleport across the pad more than the
        // pad diagonal (sanity on the table's ordering).
        for c in ALPHABET {
            let strokes = letter_strokes(c).unwrap();
            for w in strokes.windows(2) {
                let d =
                    ((w[1].from.0 - w[0].to.0).powi(2) + (w[1].from.1 - w[0].to.1).powi(2)).sqrt();
                assert!(d <= 1.5, "{c}: jump {d}");
            }
        }
    }
}
