//! A simulated Kinect ground-truth tracker.
//!
//! The paper validates RFIPad against a Kinect placed behind the user: its
//! SDK's skeletal output provides the hand trajectory at ~30 Hz with
//! centimetre-level noise. This module reproduces that reference sensor so
//! trajectory-comparison experiments (Fig. 25) have the same two data
//! sources the paper had.

use crate::trajectory::Trajectory;
use rand::Rng;
use rf_sim::geometry::Vec3;
use rf_sim::noise::gaussian;
use serde::{Deserialize, Serialize};

/// Kinect skeletal-tracking model: sampling rate and joint noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KinectTracker {
    /// Skeleton frames per second (Kinect v1/v2: 30 Hz).
    pub rate_hz: f64,
    /// Standard deviation of joint position noise per axis (≈ 1 cm for a
    /// hand joint at 2 m).
    pub noise_sigma_m: f64,
}

impl Default for KinectTracker {
    fn default() -> Self {
        Self {
            rate_hz: 30.0,
            noise_sigma_m: 0.01,
        }
    }
}

/// One skeletal hand-joint sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkeletalSample {
    /// Frame timestamp in seconds.
    pub time: f64,
    /// Tracked hand-joint position.
    pub position: Vec3,
}

impl KinectTracker {
    /// Tracks a hand trajectory, producing noisy skeletal samples at the
    /// configured frame rate over the trajectory's span.
    pub fn track<R: Rng + ?Sized>(
        &self,
        trajectory: &Trajectory,
        rng: &mut R,
    ) -> Vec<SkeletalSample> {
        assert!(self.rate_hz > 0.0, "frame rate must be positive");
        let (Some(start), Some(end)) = (trajectory.start_time(), trajectory.end_time()) else {
            return Vec::new();
        };
        let dt = 1.0 / self.rate_hz;
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(p) = trajectory.position(t) {
                out.push(SkeletalSample {
                    time: t,
                    position: Vec3::new(
                        p.x + gaussian(rng, 0.0, self.noise_sigma_m),
                        p.y + gaussian(rng, 0.0, self.noise_sigma_m),
                        p.z + gaussian(rng, 0.0, self.noise_sigma_m),
                    ),
                });
            }
            t += dt;
        }
        out
    }

    /// Mean Euclidean error of tracked samples against the true trajectory
    /// (a self-check experiments use to quote ground-truth quality).
    pub fn mean_error(&self, trajectory: &Trajectory, samples: &[SkeletalSample]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = samples
            .iter()
            .filter_map(|s| trajectory.position(s.time).map(|p| p.distance(s.position)))
            .sum();
        sum / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_trajectory() -> Trajectory {
        let mut tr = Trajectory::new();
        tr.push_segment(0.0, 2.0, vec![Vec3::ZERO, Vec3::new(0.3, -0.2, 0.03)]);
        tr
    }

    #[test]
    fn tracks_at_30hz() {
        let k = KinectTracker::default();
        let mut rng = StdRng::seed_from_u64(1);
        let samples = k.track(&line_trajectory(), &mut rng);
        assert!((samples.len() as i64 - 60).abs() <= 2, "{}", samples.len());
    }

    #[test]
    fn noise_is_centimetre_scale() {
        let k = KinectTracker::default();
        let tr = line_trajectory();
        let mut rng = StdRng::seed_from_u64(2);
        let samples = k.track(&tr, &mut rng);
        let err = k.mean_error(&tr, &samples);
        assert!(err > 0.005 && err < 0.05, "mean error {err}");
    }

    #[test]
    fn noiseless_tracker_is_exact() {
        let k = KinectTracker {
            rate_hz: 30.0,
            noise_sigma_m: 0.0,
        };
        let tr = line_trajectory();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = k.track(&tr, &mut rng);
        assert!(k.mean_error(&tr, &samples) < 1e-12);
    }

    #[test]
    fn empty_trajectory_gives_no_samples() {
        let k = KinectTracker::default();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(k.track(&Trajectory::new(), &mut rng).is_empty());
    }

    #[test]
    fn samples_are_time_ordered() {
        let k = KinectTracker::default();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = k.track(&line_trajectory(), &mut rng);
        for pair in samples.windows(2) {
            assert!(pair[1].time > pair[0].time);
        }
    }
}
