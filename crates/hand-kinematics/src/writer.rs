//! Composing strokes and letters into full hand-writing sessions.
//!
//! A session is a single continuous [`Trajectory`]: the hand approaches the
//! pad, draws each stroke at writing height, and between strokes raises and
//! repositions — the *adjustment interval* whose low phase variance RFIPad's
//! segmentation detects (§III-C1). Ground-truth stroke spans are recorded
//! alongside so experiments can score segmentation and recognition.

use crate::letters;
use crate::pad::PadFrame;
use crate::stroke::{default_placement, PlacedStroke, Stroke, StrokeShape};
use crate::trajectory::Trajectory;
use crate::user::UserProfile;
use rand::Rng;
use rf_sim::geometry::Vec3;
use rf_sim::noise::gaussian;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Ground truth for one drawn stroke.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WrittenStroke {
    /// What was drawn.
    pub stroke: Stroke,
    /// The placement it was drawn at.
    pub placement: PlacedStroke,
    /// Time the pen-down phase begins.
    pub start: f64,
    /// Time the pen-down phase ends.
    pub end: f64,
}

/// One complete writing session: the hand trajectory plus ground truth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WritingSession {
    /// The full hand trajectory (approach, strokes, adjustments, retreat).
    /// Shared behind an [`Arc`] so the hand and forearm scene targets (and
    /// any cloned trial records) reference one allocation.
    pub trajectory: Arc<Trajectory>,
    /// Ground-truth stroke spans in time order.
    pub strokes: Vec<WrittenStroke>,
    /// The letter written, if the session spells one.
    pub letter: Option<char>,
}

impl WritingSession {
    /// Session end time (when the hand leaves), or `start` if empty.
    pub fn end_time(&self) -> f64 {
        self.trajectory.end_time().unwrap_or(0.0)
    }
}

/// Builds writing sessions for a pad and user.
#[derive(Debug, Clone)]
pub struct Writer {
    pad: PadFrame,
    user: UserProfile,
}

impl Writer {
    /// Creates a writer.
    pub fn new(pad: PadFrame, user: UserProfile) -> Self {
        Self { pad, user }
    }

    /// The pad frame in use.
    pub fn pad(&self) -> &PadFrame {
        &self.pad
    }

    /// The user profile in use.
    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    /// Draws one placed stroke starting (pen-down) at `start`; the hand
    /// enters raised above the start point slightly earlier.
    pub fn write_stroke<R: Rng + ?Sized>(
        &self,
        placement: PlacedStroke,
        start: f64,
        rng: &mut R,
    ) -> WritingSession {
        let mut traj = Trajectory::new();
        let approach = self.approach_duration();
        let entry_t = start - approach;
        self.push_approach(&mut traj, entry_t, placement.from);
        let stroke_end = self.push_stroke(&mut traj, start, &placement, rng);
        self.push_retreat(&mut traj, stroke_end, placement.to);
        WritingSession {
            trajectory: Arc::new(traj),
            strokes: vec![WrittenStroke {
                stroke: placement.stroke,
                placement,
                start,
                end: stroke_end,
            }],
            letter: None,
        }
    }

    /// Draws a bare stroke at its default central placement (the motion-
    /// detection experiments).
    pub fn write_motion<R: Rng + ?Sized>(
        &self,
        stroke: Stroke,
        start: f64,
        rng: &mut R,
    ) -> WritingSession {
        self.write_stroke(default_placement(stroke), start, rng)
    }

    /// Writes a full letter beginning (pen-down on the first stroke) at
    /// `start`, with adjustment intervals between strokes.
    ///
    /// # Panics
    ///
    /// Panics if `letter` is not an English letter.
    pub fn write_letter<R: Rng + ?Sized>(
        &self,
        letter: char,
        start: f64,
        rng: &mut R,
    ) -> WritingSession {
        let placements =
            letters::letter_strokes(letter).unwrap_or_else(|| panic!("not a letter: {letter:?}"));
        let mut traj = Trajectory::new();
        let mut strokes = Vec::with_capacity(placements.len());
        let approach = self.approach_duration();
        self.push_approach(&mut traj, start - approach, placements[0].from);
        let mut t = start;
        for (i, placement) in placements.iter().enumerate() {
            let end = self.push_stroke(&mut traj, t, placement, rng);
            strokes.push(WrittenStroke {
                stroke: placement.stroke,
                placement: *placement,
                start: t,
                end,
            });
            if i + 1 < placements.len() {
                // Adjustment interval: raise, glide to the next stroke's
                // start, lower. Occasionally the writer is sloppy and
                // glides low — the source of segmentation insertions.
                let next = placements[i + 1].from;
                let pause = self.adjustment_duration();
                let sloppy = rng.random::<f64>() < self.user.sloppy_adjust_prob;
                if sloppy {
                    self.push_sloppy_adjustment(&mut traj, end, pause, placement.to, next);
                } else {
                    self.push_adjustment_with_height(
                        &mut traj,
                        end,
                        pause,
                        placement.to,
                        next,
                        self.user.raise_height_m,
                    );
                }
                t = end + pause;
            } else {
                self.push_retreat(&mut traj, end, placement.to);
            }
        }
        WritingSession {
            trajectory: Arc::new(traj),
            strokes,
            letter: Some(letter.to_ascii_uppercase()),
        }
    }

    /// Writes a word as a sequence of letter sessions separated by
    /// `letter_gap_s` of absent hand; returns one session per letter.
    pub fn write_word<R: Rng + ?Sized>(
        &self,
        word: &str,
        start: f64,
        letter_gap_s: f64,
        rng: &mut R,
    ) -> Vec<WritingSession> {
        let mut sessions = Vec::new();
        let mut t = start;
        for c in word.chars().filter(|c| c.is_ascii_alphabetic()) {
            let session = self.write_letter(c, t, rng);
            t = session.end_time() + letter_gap_s + self.approach_duration();
            sessions.push(session);
        }
        sessions
    }

    /// Duration of the pen-down phase of a stroke for this user.
    ///
    /// Handwriting follows *isochrony*: stroke duration grows far slower
    /// than stroke length (people speed up for long strokes and slow down
    /// for short ones). Duration scales with a 0.4 power of relative
    /// length, anchored so a pad-height stroke at normal speed takes
    /// ≈ 1.2 s — consistent with the paper's Fig. 21 timing distribution
    /// (90% of simple strokes complete within 2 s; arcs take longer).
    pub fn stroke_duration(&self, placement: &PlacedStroke) -> f64 {
        if placement.stroke.shape == StrokeShape::Click {
            return (0.5 / self.user.speed_scale).max(0.25);
        }
        let pad_size = self.pad.width.max(self.pad.height);
        let rel = (placement.path_len() * pad_size) / pad_size.max(1e-9) / 0.8;
        (1.2 * rel.powf(0.4) / self.user.speed_scale).max(0.35)
    }

    fn approach_duration(&self) -> f64 {
        (0.5 / self.user.speed_scale).max(0.3)
    }

    fn adjustment_duration(&self) -> f64 {
        self.user.pause_s
    }

    fn push_approach(&self, traj: &mut Trajectory, t: f64, at: (f64, f64)) {
        let raised = self.pad.point_at(at.0, at.1, self.user.raise_height_m);
        let down = self.pad.point_at(at.0, at.1, self.user.write_height_m);
        traj.push_segment(t, self.approach_duration(), vec![raised, down]);
    }

    fn push_retreat(&self, traj: &mut Trajectory, t: f64, at: (f64, f64)) {
        let down = self.pad.point_at(at.0, at.1, self.user.write_height_m);
        let raised = self.pad.point_at(at.0, at.1, self.user.raise_height_m);
        traj.push_segment(t, self.approach_duration(), vec![down, raised]);
    }

    /// A *sloppy* adjustment: the hand is raised but hesitates mid-pause,
    /// dipping back toward the plate before continuing — the brief burst of
    /// activity that produces the paper's segmentation insertions
    /// (Fig. 22).
    fn push_sloppy_adjustment(
        &self,
        traj: &mut Trajectory,
        t: f64,
        duration: f64,
        from: (f64, f64),
        to: (f64, f64),
    ) {
        let z_up = self.user.raise_height_m;
        let z_dip = self.user.write_height_m + 0.015;
        let mid = (0.5 * (from.0 + to.0), 0.5 * (from.1 + to.1));
        let raise = 0.16 * duration;
        let glide = 0.17 * duration;
        let dip = 0.17 * duration;
        traj.push_segment(
            t,
            raise,
            vec![
                self.pad.point_at(from.0, from.1, self.user.write_height_m),
                self.pad.point_at(from.0, from.1, z_up),
            ],
        );
        traj.push_segment(
            t + raise,
            glide,
            vec![
                self.pad.point_at(from.0, from.1, z_up),
                self.pad.point_at(mid.0, mid.1, z_up),
            ],
        );
        // The hesitation: down to near the plate and back up.
        traj.push_segment(
            t + raise + glide,
            dip,
            vec![
                self.pad.point_at(mid.0, mid.1, z_up),
                self.pad.point_at(mid.0, mid.1, z_dip),
            ],
        );
        traj.push_segment(
            t + raise + glide + dip,
            dip,
            vec![
                self.pad.point_at(mid.0, mid.1, z_dip),
                self.pad.point_at(mid.0, mid.1, z_up),
            ],
        );
        traj.push_segment(
            t + raise + glide + 2.0 * dip,
            glide,
            vec![
                self.pad.point_at(mid.0, mid.1, z_up),
                self.pad.point_at(to.0, to.1, z_up),
            ],
        );
        traj.push_segment(
            t + raise + 2.0 * glide + 2.0 * dip,
            duration - raise - 2.0 * glide - 2.0 * dip,
            vec![
                self.pad.point_at(to.0, to.1, z_up),
                self.pad.point_at(to.0, to.1, self.user.write_height_m),
            ],
        );
    }

    #[allow(dead_code)]
    fn push_adjustment(
        &self,
        traj: &mut Trajectory,
        t: f64,
        duration: f64,
        from: (f64, f64),
        to: (f64, f64),
    ) {
        self.push_adjustment_with_height(traj, t, duration, from, to, self.user.raise_height_m);
    }

    fn push_adjustment_with_height(
        &self,
        traj: &mut Trajectory,
        t: f64,
        duration: f64,
        from: (f64, f64),
        to: (f64, f64),
        z_up: f64,
    ) {
        // Quick raise, unhurried glide, quick lower: the hand spends most
        // of the pause well above the plate, which is what makes the
        // adjustment interval RF-quiet (the segmentation's assumption).
        let raise = 0.22 * duration;
        let glide = duration - 2.0 * raise;
        traj.push_segment(
            t,
            raise,
            vec![
                self.pad.point_at(from.0, from.1, self.user.write_height_m),
                self.pad.point_at(from.0, from.1, z_up),
            ],
        );
        traj.push_segment(
            t + raise,
            glide,
            vec![
                self.pad.point_at(from.0, from.1, z_up),
                self.pad.point_at(to.0, to.1, z_up),
            ],
        );
        traj.push_segment(
            t + raise + glide,
            raise,
            vec![
                self.pad.point_at(to.0, to.1, z_up),
                self.pad.point_at(to.0, to.1, self.user.write_height_m),
            ],
        );
    }

    /// Appends the pen-down phase of one stroke; returns its end time.
    fn push_stroke<R: Rng + ?Sized>(
        &self,
        traj: &mut Trajectory,
        t: f64,
        placement: &PlacedStroke,
        rng: &mut R,
    ) -> f64 {
        let duration = self.stroke_duration(placement);
        let points: Vec<Vec3> = if placement.stroke.shape == StrokeShape::Click {
            // A push toward the tag: dip from write height to near-contact
            // and back.
            let (r, c) = placement.from;
            vec![
                self.pad.point_at(r, c, self.user.write_height_m),
                self.pad.point_at(r, c, 0.012),
                self.pad.point_at(r, c, self.user.write_height_m),
            ]
        } else {
            placement
                .waypoints()
                .iter()
                .map(|&(r, c)| {
                    let jr = gaussian(rng, 0.0, self.user.jitter_sigma_m);
                    let jc = gaussian(rng, 0.0, self.user.jitter_sigma_m);
                    let p = self.pad.point_at(r, c, self.user.write_height_m);
                    Vec3::new(p.x + jc, p.y + jr, p.z)
                })
                .collect()
        };
        traj.push_segment_with_profile(
            t,
            duration,
            points,
            crate::trajectory::VelocityProfile::Trapezoid,
        );
        t + duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rf_sim::tags::{TagArray, TagModel};

    fn writer() -> Writer {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
        Writer::new(PadFrame::over_array(&array, 0.03), UserProfile::average())
    }

    #[test]
    fn stroke_session_has_one_ground_truth_span() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(1);
        let s = w.write_motion(Stroke::new(StrokeShape::VLine), 1.0, &mut rng);
        assert_eq!(s.strokes.len(), 1);
        assert_eq!(s.strokes[0].start, 1.0);
        assert!(s.strokes[0].end > 1.0);
        assert!(s.letter.is_none());
    }

    #[test]
    fn hand_is_at_write_height_mid_stroke() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(2);
        let s = w.write_motion(Stroke::new(StrokeShape::HLine), 1.0, &mut rng);
        let mid = 0.5 * (s.strokes[0].start + s.strokes[0].end);
        let p = s.trajectory.position(mid).expect("present");
        assert!((p.z - 0.03).abs() < 0.001, "z={}", p.z);
    }

    #[test]
    fn hand_raised_during_adjustment() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(3);
        let s = w.write_letter('H', 1.0, &mut rng);
        assert_eq!(s.strokes.len(), 3);
        // Midpoint of the first adjustment interval.
        let t = 0.5 * (s.strokes[0].end + s.strokes[1].start);
        let p = s.trajectory.position(t).expect("present");
        assert!(p.z > 0.08, "adjustment height {}", p.z);
    }

    #[test]
    fn letter_strokes_are_ordered_and_spaced() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(4);
        let s = w.write_letter('E', 0.0, &mut rng);
        assert_eq!(s.strokes.len(), 4);
        for pair in s.strokes.windows(2) {
            assert!(pair[1].start > pair[0].end, "adjustment gap missing");
            let gap = pair[1].start - pair[0].end;
            assert!((gap - 1.0).abs() < 0.25, "gap {gap}");
        }
        assert_eq!(s.letter, Some('E'));
    }

    #[test]
    fn click_dips_toward_plate() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(5);
        let s = w.write_motion(Stroke::new(StrokeShape::Click), 1.0, &mut rng);
        let span = &s.strokes[0];
        let mut min_z = f64::INFINITY;
        let mut t = span.start;
        while t <= span.end {
            if let Some(p) = s.trajectory.position(t) {
                min_z = min_z.min(p.z);
            }
            t += 0.01;
        }
        assert!(min_z < 0.02, "click min z {min_z}");
    }

    #[test]
    fn faster_user_finishes_sooner() {
        let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
        let pad = PadFrame::over_array(&array, 0.03);
        let slow = Writer::new(pad, UserProfile::average());
        let fast = Writer::new(pad, UserProfile::average().with_speed(2.0));
        let mut rng = StdRng::seed_from_u64(6);
        let s1 = slow.write_letter('Z', 0.0, &mut rng);
        let s2 = fast.write_letter('Z', 0.0, &mut rng);
        assert!(s2.end_time() < s1.end_time());
    }

    #[test]
    fn longer_strokes_take_longer() {
        let w = writer();
        let arc = default_placement(Stroke::new(StrokeShape::ArcLeft));
        let line = default_placement(Stroke::new(StrokeShape::VLine));
        assert!(w.stroke_duration(&arc) > w.stroke_duration(&line));
    }

    #[test]
    fn word_sessions_do_not_overlap() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(7);
        let sessions = w.write_word("HI", 0.0, 1.0, &mut rng);
        assert_eq!(sessions.len(), 2);
        assert!(sessions[1].strokes[0].start > sessions[0].end_time());
        assert_eq!(sessions[0].letter, Some('H'));
        assert_eq!(sessions[1].letter, Some('I'));
    }

    #[test]
    fn word_skips_non_letters() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(8);
        let sessions = w.write_word("A-B!", 0.0, 0.5, &mut rng);
        assert_eq!(sessions.len(), 2);
    }

    #[test]
    fn trajectory_is_continuous_at_stroke_boundaries() {
        let w = writer();
        let mut rng = StdRng::seed_from_u64(9);
        let s = w.write_letter('H', 0.0, &mut rng);
        // Sample densely; consecutive positions should never jump more than
        // a few cm (no teleports).
        let samples = s.trajectory.sample(0.01);
        for pair in samples.windows(2) {
            let d = pair[0].1.distance(pair[1].1);
            assert!(d < 0.05, "jump of {d} m at t={}", pair[0].0);
        }
    }
}
