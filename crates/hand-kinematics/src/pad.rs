//! Mapping between normalized pad coordinates and world space.

use rf_sim::geometry::Vec3;
use rf_sim::tags::TagArray;
use serde::{Deserialize, Serialize};

/// The writing surface: a rectangle in the `z = 0` plane that normalized
/// `(row, col)` coordinates map onto, plus the height at which the hand
/// writes (the paper's prototype works best within 5 cm of the plate,
/// §VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PadFrame {
    /// World position of the pad's top-left corner (row 0, col 0).
    pub top_left: Vec3,
    /// Pad width in metres (along +x, increasing col).
    pub width: f64,
    /// Pad height in metres (along −y, increasing row).
    pub height: f64,
    /// Height above the plate at which strokes are drawn.
    pub write_z: f64,
}

impl PadFrame {
    /// Builds the frame covering a tag array, writing `write_z` metres above
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if the array is degenerate (single row or column would give a
    /// zero-sized pad) or `write_z` is not positive.
    pub fn over_array(array: &TagArray, write_z: f64) -> Self {
        assert!(write_z > 0.0, "write height must be positive");
        let width = (array.cols() - 1) as f64 * array.spacing();
        let height = (array.rows() - 1) as f64 * array.spacing();
        assert!(width > 0.0 && height > 0.0, "array too small for a pad");
        Self {
            top_left: array.origin(),
            width,
            height,
            write_z,
        }
    }

    /// Maps normalized `(row, col)` to a world point at height `z` above the
    /// plate.
    pub fn point_at(&self, row: f64, col: f64, z: f64) -> Vec3 {
        self.top_left + Vec3::new(col * self.width, -row * self.height, z)
    }

    /// Maps normalized `(row, col)` to the writing height.
    pub fn write_point(&self, row: f64, col: f64) -> Vec3 {
        self.point_at(row, col, self.write_z)
    }

    /// Inverse of [`point_at`](Self::point_at)'s planar part: world point →
    /// normalized `(row, col)`.
    pub fn normalize(&self, world: Vec3) -> (f64, f64) {
        (
            (self.top_left.y - world.y) / self.height,
            (world.x - self.top_left.x) / self.width,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rf_sim::tags::TagModel;

    fn array() -> TagArray {
        TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0)
    }

    #[test]
    fn frame_covers_array() {
        let f = PadFrame::over_array(&array(), 0.03);
        assert!((f.width - 0.24).abs() < 1e-12);
        assert!((f.height - 0.24).abs() < 1e-12);
    }

    #[test]
    fn corners_map_to_corner_tags() {
        let a = array();
        let f = PadFrame::over_array(&a, 0.03);
        let tl = f.write_point(0.0, 0.0);
        let br = f.write_point(1.0, 1.0);
        assert!(tl.distance(a.at(0, 0).position + Vec3::new(0.0, 0.0, 0.03)) < 1e-9);
        assert!(br.distance(a.at(4, 4).position + Vec3::new(0.0, 0.0, 0.03)) < 1e-9);
    }

    #[test]
    fn normalize_round_trip() {
        let f = PadFrame::over_array(&array(), 0.03);
        let p = f.write_point(0.3, 0.7);
        let (r, c) = f.normalize(p);
        assert!((r - 0.3).abs() < 1e-9);
        assert!((c - 0.7).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "write height must be positive")]
    fn zero_write_height_rejected() {
        PadFrame::over_array(&array(), 0.0);
    }
}
