//! User profiles: how different people write in the air.
//!
//! The paper's usability study (Fig. 20) spans ten volunteers differing in
//! gender, age, height (158–183 cm), weight, and arm length (56–70 cm), and
//! finds two of them (#6 and #9) move fast enough to lose some accuracy.
//! A [`UserProfile`] captures the parameters that matter to the RF channel:
//! stroke speed, writing height, positional jitter, pause behaviour, and
//! the scattering cross-sections of hand and forearm.

use rf_sim::geometry::Vec3;
use serde::{Deserialize, Serialize};

/// Parameters describing one writer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Display name ("volunteer 1" …).
    pub name: String,
    /// Multiplier on stroke speed (1.0 ≈ 0.25 m/s pen speed).
    pub speed_scale: f64,
    /// Height above the plate at which strokes are drawn (paper: accuracy
    /// holds within ≈ 5 cm).
    pub write_height_m: f64,
    /// Height the hand is raised to during the adjustment interval between
    /// strokes.
    pub raise_height_m: f64,
    /// Standard deviation of way-point positioning error (sloppiness).
    pub jitter_sigma_m: f64,
    /// Nominal pause duration between strokes (the adjustment interval the
    /// segmentation detects).
    pub pause_s: f64,
    /// Hand radar cross-section in m².
    pub hand_rcs_m2: f64,
    /// Forearm radar cross-section in m².
    pub arm_rcs_m2: f64,
    /// Forearm offset from the hand (the user stands at the pad's bottom
    /// edge, so the arm trails toward −y and slightly above).
    pub arm_offset: Vec3,
    /// Probability that a between-stroke adjustment is *sloppy*: the hand
    /// hesitates and dips back toward the plate mid-pause, the behaviour
    /// behind the paper's segmentation insertions (Fig. 22). Defaults to
    /// zero — the simulated writers pause cleanly — and can be raised to
    /// study insertion-robustness.
    pub sloppy_adjust_prob: f64,
}

impl UserProfile {
    /// A careful average writer — the baseline for most experiments.
    pub fn average() -> Self {
        Self {
            name: "average".to_string(),
            speed_scale: 1.0,
            write_height_m: 0.03,
            raise_height_m: 0.22,
            jitter_sigma_m: 0.006,
            pause_s: 1.0,
            hand_rcs_m2: 0.02,
            arm_rcs_m2: 0.06,
            arm_offset: Vec3::new(0.0, -0.22, 0.12),
            sloppy_adjust_prob: 0.0,
        }
    }

    /// One of the paper's ten volunteers (`1..=10`), with diversity in speed,
    /// height, and sloppiness. Volunteers 6 and 9 are the paper's fast
    /// movers whose accuracy dips slightly.
    ///
    /// # Panics
    ///
    /// Panics unless `index` is in `1..=10`.
    pub fn volunteer(index: usize) -> Self {
        assert!(
            (1..=10).contains(&index),
            "volunteer index must be 1..=10, got {index}"
        );
        // (speed, write height, jitter, pause, hand RCS)
        let params: [(f64, f64, f64, f64, f64); 10] = [
            (0.90, 0.030, 0.005, 1.05, 0.020), // 1
            (1.00, 0.035, 0.006, 1.00, 0.022), // 2
            (0.85, 0.028, 0.004, 1.10, 0.018), // 3
            (1.10, 0.032, 0.007, 0.95, 0.024), // 4
            (0.95, 0.030, 0.005, 1.02, 0.019), // 5
            (1.75, 0.038, 0.010, 0.70, 0.021), // 6 — fast mover
            (1.00, 0.033, 0.006, 1.00, 0.023), // 7
            (0.92, 0.029, 0.005, 1.04, 0.020), // 8
            (1.65, 0.036, 0.009, 0.75, 0.022), // 9 — fast mover
            (1.05, 0.031, 0.006, 0.98, 0.021), // 10
        ];
        let (speed, z, jitter, pause, rcs) = params[index - 1];
        Self {
            name: format!("volunteer {index}"),
            speed_scale: speed,
            write_height_m: z,
            jitter_sigma_m: jitter,
            pause_s: pause,
            hand_rcs_m2: rcs,
            ..Self::average()
        }
    }

    /// Nominal pen speed in m/s for this user.
    pub fn pen_speed(&self) -> f64 {
        0.25 * self.speed_scale
    }

    /// A copy writing at a given speed multiple (for the Fig. 21 speed
    /// study).
    pub fn with_speed(&self, speed_scale: f64) -> Self {
        assert!(speed_scale > 0.0, "speed must be positive");
        Self {
            speed_scale,
            name: format!("{} ×{speed_scale:.2}", self.name),
            ..self.clone()
        }
    }
}

impl Default for UserProfile {
    fn default() -> Self {
        Self::average()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_volunteers_defined() {
        for i in 1..=10 {
            let v = UserProfile::volunteer(i);
            assert!(v.speed_scale > 0.0);
            assert!(v.write_height_m > 0.0 && v.write_height_m < 0.06);
        }
    }

    #[test]
    #[should_panic(expected = "volunteer index must be 1..=10")]
    fn volunteer_zero_rejected() {
        UserProfile::volunteer(0);
    }

    #[test]
    fn volunteers_6_and_9_are_fast() {
        let speeds: Vec<f64> = (1..=10)
            .map(|i| UserProfile::volunteer(i).speed_scale)
            .collect();
        let fast = [speeds[5], speeds[8]];
        for (i, &s) in speeds.iter().enumerate() {
            if i != 5 && i != 8 {
                assert!(
                    fast[0] > 1.3 * s && fast[1] > 1.3 * s,
                    "volunteer {} speed",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn pen_speed_scales() {
        let u = UserProfile::average().with_speed(2.0);
        assert!((u.pen_speed() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn arm_sits_behind_and_above_hand() {
        let u = UserProfile::average();
        assert!(u.arm_offset.y < 0.0);
        assert!(u.arm_offset.z > 0.0);
        assert!(u.arm_rcs_m2 > u.hand_rcs_m2);
    }
}
