//! Time-parameterized 3-D hand trajectories.
//!
//! Human point-to-point hand movements follow a minimum-jerk velocity
//! profile (smooth bell-shaped speed, zero velocity at the endpoints). A
//! [`Trajectory`] carries a piecewise-linear spatial path re-timed by that
//! profile, plus helpers to compose paths sequentially (strokes, raises,
//! repositioning moves).

use rf_sim::geometry::Vec3;
use rf_sim::targets::{MovingTarget, TargetSample};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Minimum-jerk progress function: fraction of path completed at normalized
/// time `τ ∈ [0, 1]`: `s(τ) = 10τ³ − 15τ⁴ + 6τ⁵`.
///
/// ```
/// use hand_kinematics::trajectory::min_jerk;
/// assert_eq!(min_jerk(0.0), 0.0);
/// assert_eq!(min_jerk(1.0), 1.0);
/// assert!((min_jerk(0.5) - 0.5).abs() < 1e-12); // symmetric
/// ```
pub fn min_jerk(tau: f64) -> f64 {
    let t = tau.clamp(0.0, 1.0);
    t * t * t * (10.0 - 15.0 * t + 6.0 * t * t)
}

/// Velocity profile of a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum VelocityProfile {
    /// Bell-shaped minimum-jerk speed — point-to-point *reaching* movements
    /// (approach, raise, reposition).
    #[default]
    MinJerk,
    /// Trapezoidal speed with short ramps — *drawing* movements, where the
    /// pen keeps near-constant speed through the stroke.
    Trapezoid,
}

/// Trapezoidal progress function with 20% acceleration/deceleration ramps.
///
/// ```
/// use hand_kinematics::trajectory::trapezoid;
/// assert_eq!(trapezoid(0.0), 0.0);
/// assert_eq!(trapezoid(1.0), 1.0);
/// assert!((trapezoid(0.5) - 0.5).abs() < 1e-12);
/// ```
pub fn trapezoid(tau: f64) -> f64 {
    const R: f64 = 0.2;
    let t = tau.clamp(0.0, 1.0);
    let v = 1.0 / (1.0 - R); // cruise speed for unit displacement
    if t < R {
        v * t * t / (2.0 * R)
    } else if t <= 1.0 - R {
        v * (t - R / 2.0)
    } else {
        1.0 - v * (1.0 - t) * (1.0 - t) / (2.0 * R)
    }
}

/// One timed segment of a trajectory: a spatial poly-line traversed with
/// the segment's velocity profile over `[t_start, t_end]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Segment {
    t_start: f64,
    t_end: f64,
    points: Vec<Vec3>,
    profile: VelocityProfile,
    /// Cumulative arc length at each point (first entry 0).
    cum_len: Vec<f64>,
}

impl Segment {
    fn new(t_start: f64, t_end: f64, points: Vec<Vec3>, profile: VelocityProfile) -> Self {
        assert!(t_end >= t_start, "segment ends before it starts");
        assert!(!points.is_empty(), "segment needs points");
        let mut cum_len = Vec::with_capacity(points.len());
        let mut acc = 0.0;
        cum_len.push(0.0);
        for w in points.windows(2) {
            acc += w[0].distance(w[1]);
            cum_len.push(acc);
        }
        Self {
            t_start,
            t_end,
            points,
            profile,
            cum_len,
        }
    }

    fn total_len(&self) -> f64 {
        *self.cum_len.last().expect("nonempty")
    }

    fn position(&self, t: f64) -> Vec3 {
        if self.t_end == self.t_start || self.points.len() == 1 {
            return self.points[0];
        }
        let tau = (t - self.t_start) / (self.t_end - self.t_start);
        let progress = match self.profile {
            VelocityProfile::MinJerk => min_jerk(tau),
            VelocityProfile::Trapezoid => trapezoid(tau),
        };
        let target = progress * self.total_len();
        if self.total_len() == 0.0 {
            return self.points[0];
        }
        let idx = self
            .cum_len
            .partition_point(|&l| l < target)
            .clamp(1, self.points.len() - 1);
        let (l0, l1) = (self.cum_len[idx - 1], self.cum_len[idx]);
        let frac = if l1 > l0 {
            (target - l0) / (l1 - l0)
        } else {
            0.0
        };
        self.points[idx - 1] + (self.points[idx] - self.points[idx - 1]) * frac
    }
}

/// A hand trajectory: a sequence of timed segments. The hand is absent
/// before the first segment and after the last.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trajectory {
    segments: Vec<Segment>,
}

impl Trajectory {
    /// Creates an empty trajectory (hand always absent).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a segment traversing `points` from `t_start` for `duration`
    /// seconds with a minimum-jerk profile.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, `duration < 0`, or `t_start` precedes
    /// the end of the previous segment.
    pub fn push_segment(&mut self, t_start: f64, duration: f64, points: Vec<Vec3>) {
        self.push_segment_with_profile(t_start, duration, points, VelocityProfile::MinJerk);
    }

    /// Appends a segment with an explicit velocity profile.
    ///
    /// # Panics
    ///
    /// Same conditions as [`push_segment`](Self::push_segment).
    pub fn push_segment_with_profile(
        &mut self,
        t_start: f64,
        duration: f64,
        points: Vec<Vec3>,
        profile: VelocityProfile,
    ) {
        assert!(duration >= 0.0, "negative duration");
        if let Some(last) = self.segments.last() {
            assert!(
                t_start >= last.t_end - 1e-12,
                "segment starts before previous ends"
            );
        }
        self.segments
            .push(Segment::new(t_start, t_start + duration, points, profile));
    }

    /// Appends a hold: the hand stays at `point` for `duration`.
    pub fn push_hold(&mut self, t_start: f64, duration: f64, point: Vec3) {
        self.push_segment(t_start, duration, vec![point]);
    }

    /// Hand position at time `t`; `None` outside the trajectory's span.
    /// Between segments (a gap), the hand holds the previous segment's end.
    pub fn position(&self, t: f64) -> Option<Vec3> {
        let first = self.segments.first()?;
        if t < first.t_start {
            return None;
        }
        let last = self.segments.last().expect("nonempty");
        if t > last.t_end {
            return None;
        }
        // Find the segment containing t, or the gap after one.
        for seg in &self.segments {
            if t < seg.t_start {
                // In a gap: previous segment's endpoint (there must be one
                // because t >= first.t_start).
                break;
            }
            if t <= seg.t_end {
                return Some(seg.position(t));
            }
        }
        let prev = self
            .segments
            .iter()
            .rev()
            .find(|s| s.t_end <= t)
            .expect("gap implies a finished segment");
        Some(*prev.points.last().expect("nonempty"))
    }

    /// Start time, if any segment exists.
    pub fn start_time(&self) -> Option<f64> {
        self.segments.first().map(|s| s.t_start)
    }

    /// End time, if any segment exists.
    pub fn end_time(&self) -> Option<f64> {
        self.segments.last().map(|s| s.t_end)
    }

    /// Instantaneous speed at `t` (central difference, m/s); 0 outside.
    pub fn speed(&self, t: f64) -> f64 {
        const DT: f64 = 1e-4;
        match (self.position(t - DT), self.position(t + DT)) {
            (Some(a), Some(b)) => a.distance(b) / (2.0 * DT),
            _ => 0.0,
        }
    }

    /// Samples positions at fixed `dt` over the whole span.
    pub fn sample(&self, dt: f64) -> Vec<(f64, Vec3)> {
        assert!(dt > 0.0, "sample interval must be positive");
        let (Some(start), Some(end)) = (self.start_time(), self.end_time()) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = start;
        while t <= end + 1e-12 {
            if let Some(p) = self.position(t.min(end)) {
                out.push((t.min(end), p));
            }
            t += dt;
        }
        out
    }
}

/// A hand (or arm) following a trajectory, exposed to the RF scene as a
/// moving scatterer.
///
/// The trajectory is held behind an [`Arc`], so building the usual
/// hand + forearm target pair from one session shares a single trajectory
/// allocation instead of deep-copying the segment list per target.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandTarget {
    trajectory: Arc<Trajectory>,
    rcs_m2: f64,
    /// Constant offset applied to every position (used to hang an arm
    /// behind the hand).
    offset: Vec3,
}

impl HandTarget {
    /// Wraps a trajectory as a hand with the given RCS (a hand is roughly
    /// 0.01–0.03 m²). Accepts an owned [`Trajectory`] or a shared
    /// `Arc<Trajectory>`.
    ///
    /// # Panics
    ///
    /// Panics if `rcs_m2` is not positive.
    pub fn new(trajectory: impl Into<Arc<Trajectory>>, rcs_m2: f64) -> Self {
        assert!(rcs_m2 > 0.0, "RCS must be positive");
        Self {
            trajectory: trajectory.into(),
            rcs_m2,
            offset: Vec3::ZERO,
        }
    }

    /// A second scatterer (the forearm) rigidly offset from the hand with
    /// its own, larger RCS.
    pub fn with_offset(trajectory: impl Into<Arc<Trajectory>>, rcs_m2: f64, offset: Vec3) -> Self {
        assert!(rcs_m2 > 0.0, "RCS must be positive");
        Self {
            trajectory: trajectory.into(),
            rcs_m2,
            offset,
        }
    }

    /// The wrapped trajectory.
    pub fn trajectory(&self) -> &Trajectory {
        &self.trajectory
    }
}

impl MovingTarget for HandTarget {
    fn sample(&self, t: f64) -> Option<TargetSample> {
        self.trajectory.position(t).map(|p| TargetSample {
            position: p + self.offset,
            rcs_m2: self.rcs_m2,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_jerk_endpoints_and_monotonicity() {
        assert_eq!(min_jerk(0.0), 0.0);
        assert_eq!(min_jerk(1.0), 1.0);
        let mut prev = 0.0;
        for i in 1..=100 {
            let v = min_jerk(i as f64 / 100.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn min_jerk_clamps_outside_range() {
        assert_eq!(min_jerk(-0.5), 0.0);
        assert_eq!(min_jerk(1.5), 1.0);
    }

    #[test]
    fn straight_segment_hits_endpoints() {
        let mut tr = Trajectory::new();
        tr.push_segment(1.0, 2.0, vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        assert_eq!(tr.position(1.0), Some(Vec3::ZERO));
        let end = tr.position(3.0).expect("in span");
        assert!((end.x - 1.0).abs() < 1e-9);
        assert_eq!(tr.position(0.5), None);
        assert_eq!(tr.position(3.5), None);
    }

    #[test]
    fn speed_is_bell_shaped() {
        let mut tr = Trajectory::new();
        tr.push_segment(0.0, 1.0, vec![Vec3::ZERO, Vec3::new(0.3, 0.0, 0.0)]);
        let v_mid = tr.speed(0.5);
        let v_early = tr.speed(0.1);
        let v_late = tr.speed(0.9);
        assert!(v_mid > v_early && v_mid > v_late);
        // Min-jerk peak speed = 1.875 · mean speed.
        assert!((v_mid - 1.875 * 0.3).abs() < 0.02, "peak {v_mid}");
    }

    #[test]
    fn hold_keeps_position() {
        let mut tr = Trajectory::new();
        tr.push_hold(0.0, 1.0, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(tr.position(0.5), Some(Vec3::new(1.0, 2.0, 3.0)));
        assert_eq!(tr.speed(0.5), 0.0);
    }

    #[test]
    fn gap_holds_previous_endpoint() {
        let mut tr = Trajectory::new();
        tr.push_segment(0.0, 1.0, vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        tr.push_segment(2.0, 1.0, vec![Vec3::new(1.0, 0.0, 0.0), Vec3::ZERO]);
        let mid_gap = tr.position(1.5).expect("inside span");
        assert!((mid_gap.x - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "segment starts before previous ends")]
    fn overlapping_segments_rejected() {
        let mut tr = Trajectory::new();
        tr.push_segment(0.0, 2.0, vec![Vec3::ZERO]);
        tr.push_segment(1.0, 1.0, vec![Vec3::ZERO]);
    }

    #[test]
    fn polyline_passes_through_interior_points() {
        let mut tr = Trajectory::new();
        let elbow = Vec3::new(1.0, 1.0, 0.0);
        tr.push_segment(0.0, 2.0, vec![Vec3::ZERO, elbow, Vec3::new(2.0, 0.0, 0.0)]);
        // At the path midpoint (by arc length and min-jerk symmetry, t=1.0)
        // the hand is at the elbow.
        let p = tr.position(1.0).expect("in span");
        assert!(p.distance(elbow) < 1e-6, "{p:?}");
    }

    #[test]
    fn sample_covers_span() {
        let mut tr = Trajectory::new();
        tr.push_segment(0.0, 1.0, vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)]);
        let s = tr.sample(0.1);
        assert!(s.len() >= 10);
        assert_eq!(s[0].0, 0.0);
    }

    #[test]
    fn hand_target_present_only_during_span() {
        let mut tr = Trajectory::new();
        tr.push_segment(1.0, 1.0, vec![Vec3::ZERO, Vec3::new(0.1, 0.0, 0.0)]);
        let hand = HandTarget::new(tr, 0.02);
        assert!(hand.sample(0.5).is_none());
        assert!(hand.sample(1.5).is_some());
        assert!(hand.sample(2.5).is_none());
    }

    #[test]
    fn offset_target_shifts_position() {
        let mut tr = Trajectory::new();
        tr.push_hold(0.0, 1.0, Vec3::ZERO);
        let arm = HandTarget::with_offset(tr, 0.06, Vec3::new(0.0, -0.2, 0.1));
        let s = arm.sample(0.5).expect("present");
        assert_eq!(s.position, Vec3::new(0.0, -0.2, 0.1));
        assert_eq!(s.rcs_m2, 0.06);
    }

    #[test]
    fn empty_trajectory_has_no_span() {
        let tr = Trajectory::new();
        assert_eq!(tr.start_time(), None);
        assert_eq!(tr.position(0.0), None);
        assert!(tr.sample(0.1).is_empty());
    }
}
