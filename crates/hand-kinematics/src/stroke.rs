//! The paper's seven basic hand motions and thirteen directed strokes.
//!
//! RFIPad defines 7 basic motions (§II-C): a *click* (push toward a tag)
//! plus six shapes — `−`, `|`, `/`, `\`, `⊂`, `⊃` — each of which can be
//! drawn in two directions, giving the 13 strokes the evaluation exercises
//! (motion #1 = click, #2–#7 = the six shapes, each bidirectional).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The geometric shape of a stroke, ignoring travel direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StrokeShape {
    /// A push toward one tag ("click", motion #1).
    Click,
    /// Horizontal line `−` (motion #2).
    HLine,
    /// Vertical line `|` (motion #3).
    VLine,
    /// Diagonal `/` (motion #4), canonical travel bottom-left → top-right.
    Slash,
    /// Diagonal `\` (motion #5), canonical travel top-left → bottom-right.
    Backslash,
    /// Arc `⊂` opening to the right (motion #6).
    ArcLeft,
    /// Arc `⊃` opening to the left (motion #7).
    ArcRight,
}

impl StrokeShape {
    /// All seven shapes, in the paper's motion numbering (#1–#7).
    pub fn all() -> [StrokeShape; 7] {
        [
            StrokeShape::Click,
            StrokeShape::HLine,
            StrokeShape::VLine,
            StrokeShape::Slash,
            StrokeShape::Backslash,
            StrokeShape::ArcLeft,
            StrokeShape::ArcRight,
        ]
    }

    /// The paper's motion category number (1–7).
    pub fn motion_number(self) -> u8 {
        match self {
            StrokeShape::Click => 1,
            StrokeShape::HLine => 2,
            StrokeShape::VLine => 3,
            StrokeShape::Slash => 4,
            StrokeShape::Backslash => 5,
            StrokeShape::ArcLeft => 6,
            StrokeShape::ArcRight => 7,
        }
    }

    /// Whether the shape supports two travel directions (everything except
    /// the click).
    pub fn is_directional(self) -> bool {
        self != StrokeShape::Click
    }
}

impl fmt::Display for StrokeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StrokeShape::Click => "click",
            StrokeShape::HLine => "-",
            StrokeShape::VLine => "|",
            StrokeShape::Slash => "/",
            StrokeShape::Backslash => "\\",
            StrokeShape::ArcLeft => "⊂",
            StrokeShape::ArcRight => "⊃",
        };
        f.write_str(s)
    }
}

/// A directed stroke: a shape plus whether it is drawn against its
/// canonical direction.
///
/// Canonical directions: `−` left→right, `|` top→bottom, `/` bottom-left →
/// top-right, `\` top-left → bottom-right, `⊂` top-end → bottom-end, `⊃`
/// top-end → bottom-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Stroke {
    /// Geometric shape.
    pub shape: StrokeShape,
    /// Drawn opposite to the canonical direction.
    pub reversed: bool,
}

impl Stroke {
    /// A stroke in its canonical direction.
    pub fn new(shape: StrokeShape) -> Self {
        Self {
            shape,
            reversed: false,
        }
    }

    /// A stroke drawn against its canonical direction.
    ///
    /// # Panics
    ///
    /// Panics for [`StrokeShape::Click`], which has no direction.
    pub fn reversed(shape: StrokeShape) -> Self {
        assert!(shape.is_directional(), "a click has no direction");
        Self {
            shape,
            reversed: true,
        }
    }

    /// The paper's 13 evaluation strokes: the click plus both directions of
    /// the six shapes.
    pub fn all_thirteen() -> Vec<Stroke> {
        let mut out = vec![Stroke::new(StrokeShape::Click)];
        for shape in StrokeShape::all()
            .into_iter()
            .filter(|s| s.is_directional())
        {
            out.push(Stroke::new(shape));
            out.push(Stroke::reversed(shape));
        }
        out
    }
}

impl fmt::Display for Stroke {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.reversed {
            write!(f, "{}·rev", self.shape)
        } else {
            write!(f, "{}", self.shape)
        }
    }
}

/// A stroke placed on the writing pad: its shape and direction plus the
/// normalized pad coordinates it spans.
///
/// Pad coordinates are `(row, col)` fractions in `[0, 1]`: row 0 is the top
/// edge, col 0 the left edge (matching the tag-array layout in `rf-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacedStroke {
    /// The directed stroke.
    pub stroke: Stroke,
    /// Start point `(row, col)` in normalized pad coordinates.
    pub from: (f64, f64),
    /// End point `(row, col)` in normalized pad coordinates.
    pub to: (f64, f64),
}

impl PlacedStroke {
    /// Creates a placed stroke.
    pub fn new(stroke: Stroke, from: (f64, f64), to: (f64, f64)) -> Self {
        Self { stroke, from, to }
    }

    /// The way-points of the stroke's path in pad coordinates, including
    /// intermediate points for arcs (quadratic Bézier bulge) and the dip of
    /// a click. Way-points are ordered along the travel direction.
    pub fn waypoints(&self) -> Vec<(f64, f64)> {
        let (from, to) = (self.from, self.to);
        match self.stroke.shape {
            StrokeShape::Click => vec![from, from],
            StrokeShape::HLine
            | StrokeShape::VLine
            | StrokeShape::Slash
            | StrokeShape::Backslash => vec![from, to],
            StrokeShape::ArcLeft | StrokeShape::ArcRight => {
                // Quadratic Bézier with the control point offset
                // perpendicular to the chord. For the canonical top→bottom
                // chord this puts ⊂'s bulge toward smaller col (left) and
                // ⊃'s toward larger col (right); for other chord
                // orientations (e.g. the cup of a 'U') the bulge follows the
                // rotated perpendicular.
                let chord = chord_len(from, to).max(1e-9);
                // A quadratic Bézier's apex sits halfway to the control point,
                // so a full-chord offset yields a semicircle-like depth of
                // chord/2 — what a handwritten ⊂ / ⊃ actually looks like.
                let bulge = 1.0 * chord;
                // Unit perpendicular of the travel chord (row, col):
                // perp = (-Δcol, Δrow) / |chord|.
                let perp = (-(to.1 - from.1) / chord, (to.0 - from.0) / chord);
                // The spatial side of the bulge must not depend on travel
                // direction: a ⊂ drawn bottom-up is still a ⊂. The chord
                // perpendicular flips with direction, so the sign flips too.
                let base = if self.stroke.shape == StrokeShape::ArcLeft {
                    -1.0
                } else {
                    1.0
                };
                let sign = if self.stroke.reversed { -base } else { base };
                let mid = (
                    0.5 * (from.0 + to.0) + sign * bulge * perp.0,
                    0.5 * (from.1 + to.1) + sign * bulge * perp.1,
                );
                const STEPS: usize = 8;
                (0..=STEPS)
                    .map(|i| {
                        let t = i as f64 / STEPS as f64;
                        bezier2(from, mid, to, t)
                    })
                    .collect()
            }
        }
    }

    /// Approximate drawn length in pad units (0 for a click).
    pub fn path_len(&self) -> f64 {
        let wp = self.waypoints();
        wp.windows(2).map(|w| chord_len(w[0], w[1])).sum()
    }
}

fn chord_len(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

fn bezier2(p0: (f64, f64), p1: (f64, f64), p2: (f64, f64), t: f64) -> (f64, f64) {
    let u = 1.0 - t;
    (
        u * u * p0.0 + 2.0 * u * t * p1.0 + t * t * p2.0,
        u * u * p0.1 + 2.0 * u * t * p1.1 + t * t * p2.1,
    )
}

/// Standard pad placement for a bare stroke (used by the motion-detection
/// experiments): the stroke spans the central region of the pad in its
/// canonical orientation, honouring `reversed`.
pub fn default_placement(stroke: Stroke) -> PlacedStroke {
    use StrokeShape::*;
    let (from, to) = match stroke.shape {
        Click => ((0.5, 0.5), (0.5, 0.5)),
        HLine => ((0.5, 0.1), (0.5, 0.9)),
        VLine => ((0.1, 0.5), (0.9, 0.5)),
        Slash => ((0.9, 0.1), (0.1, 0.9)),
        Backslash => ((0.1, 0.1), (0.9, 0.9)),
        ArcLeft => ((0.15, 0.7), (0.85, 0.7)),
        ArcRight => ((0.15, 0.3), (0.85, 0.3)),
    };
    if stroke.reversed {
        PlacedStroke::new(stroke, to, from)
    } else {
        PlacedStroke::new(stroke, from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_strokes() {
        let all = Stroke::all_thirteen();
        assert_eq!(all.len(), 13);
        let clicks = all.iter().filter(|s| s.shape == StrokeShape::Click).count();
        assert_eq!(clicks, 1);
        // Every directional shape appears exactly twice.
        for shape in StrokeShape::all()
            .into_iter()
            .filter(|s| s.is_directional())
        {
            assert_eq!(all.iter().filter(|s| s.shape == shape).count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "a click has no direction")]
    fn click_cannot_reverse() {
        Stroke::reversed(StrokeShape::Click);
    }

    #[test]
    fn motion_numbers_cover_1_to_7() {
        let nums: Vec<u8> = StrokeShape::all()
            .iter()
            .map(|s| s.motion_number())
            .collect();
        assert_eq!(nums, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn line_waypoints_are_endpoints() {
        let p = default_placement(Stroke::new(StrokeShape::HLine));
        let wp = p.waypoints();
        assert_eq!(wp.len(), 2);
        assert_eq!(wp[0], p.from);
        assert_eq!(wp[1], p.to);
    }

    #[test]
    fn arc_bulges_to_the_correct_side() {
        let left = default_placement(Stroke::new(StrokeShape::ArcLeft));
        let right = default_placement(Stroke::new(StrokeShape::ArcRight));
        let l_mid = left.waypoints()[4];
        let r_mid = right.waypoints()[4];
        assert!(l_mid.1 < left.from.1, "⊂ bulges left");
        assert!(r_mid.1 > right.from.1, "⊃ bulges right");
    }

    #[test]
    fn arc_longer_than_chord() {
        let p = default_placement(Stroke::new(StrokeShape::ArcLeft));
        let chord = chord_len(p.from, p.to);
        assert!(p.path_len() > 1.1 * chord);
    }

    #[test]
    fn reversed_placement_swaps_endpoints() {
        let fwd = default_placement(Stroke::new(StrokeShape::VLine));
        let rev = default_placement(Stroke::reversed(StrokeShape::VLine));
        assert_eq!(fwd.from, rev.to);
        assert_eq!(fwd.to, rev.from);
    }

    #[test]
    fn click_has_zero_length() {
        let p = default_placement(Stroke::new(StrokeShape::Click));
        assert_eq!(p.path_len(), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Stroke::new(StrokeShape::Slash).to_string(), "/");
        assert_eq!(Stroke::reversed(StrokeShape::Slash).to_string(), "/·rev");
    }
}
