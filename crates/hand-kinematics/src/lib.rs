//! In-air handwriting workload generator.
//!
//! This crate replaces the paper's ten human volunteers (and the Kinect that
//! watched them): it synthesizes hand trajectories for the 13 basic strokes
//! and 26 letters of the RFIPad vocabulary, with per-user speed/height/
//! sloppiness diversity, minimum-jerk kinematics, and the between-stroke
//! *adjustment intervals* the recognizer's segmentation depends on.
//!
//! - [`stroke`] — the 7 motion shapes / 13 directed strokes and their pad
//!   geometry;
//! - [`letters`] — the tree-grammar stroke table for A–Z (paper Fig. 10);
//! - [`trajectory`] — minimum-jerk timed paths and the [`MovingTarget`]
//!   adapters exposing hand and forearm to the RF scene;
//! - [`pad`] — normalized pad ↔ world mapping over a tag array;
//! - [`user`] — volunteer profiles (paper Fig. 20 diversity);
//! - [`writer`] — full writing sessions with ground-truth stroke spans;
//! - [`kinect`] — the simulated ground-truth tracker (paper Fig. 25).
//!
//! # Example
//!
//! ```
//! use hand_kinematics::pad::PadFrame;
//! use hand_kinematics::trajectory::HandTarget;
//! use hand_kinematics::user::UserProfile;
//! use hand_kinematics::writer::Writer;
//! use rf_sim::geometry::Vec3;
//! use rf_sim::tags::{TagArray, TagModel};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let array = TagArray::grid(5, 5, 0.06, Vec3::ZERO, TagModel::TypeB, |_| 0.0);
//! let writer = Writer::new(PadFrame::over_array(&array, 0.03), UserProfile::average());
//! let mut rng = StdRng::seed_from_u64(1);
//! let session = writer.write_letter('H', 1.0, &mut rng);
//! assert_eq!(session.strokes.len(), 3); // | − |
//!
//! // Expose the hand to the RF scene:
//! let hand = HandTarget::new(session.trajectory.clone(), 0.02);
//! # let _ = hand;
//! ```
//!
//! [`MovingTarget`]: rf_sim::targets::MovingTarget

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kinect;
pub mod letters;
pub mod pad;
pub mod stroke;
pub mod trajectory;
pub mod user;
pub mod writer;

pub use kinect::{KinectTracker, SkeletalSample};
pub use pad::PadFrame;
pub use stroke::{default_placement, PlacedStroke, Stroke, StrokeShape};
pub use trajectory::{HandTarget, Trajectory};
pub use user::UserProfile;
pub use writer::{Writer, WritingSession, WrittenStroke};
