//! Experiment harness for the RFIPad reproduction.
//!
//! Reproduces every table and figure of the paper's evaluation (§V) plus
//! its design studies (§III–IV): [`setup`] builds the deployment variants
//! (LOS/NLOS, lab locations, TX power, tilt, distance, tag models),
//! [`trial`] calibrates a bench and runs stroke/letter trials end to end
//! through the simulated reader, and [`report`] prints the tables/series.
//!
//! One binary per table/figure lives in `src/bin/` — see `DESIGN.md` for
//! the experiment index and `EXPERIMENTS.md` for recorded results.

#![warn(missing_docs)]

pub mod benchjson;
pub mod golden;
pub mod multiplex;
pub mod report;
pub mod serveload;
pub mod setup;
pub mod trial;

pub use multiplex::{run_multiplexed, Port};
pub use setup::{AntennaPlacement, Deployment, DeploymentSpec};
pub use trial::{Bench, LetterTrial, StrokeTrial, CALIBRATION_SECS};
