//! Plain-text table and series printers for experiment binaries.
//!
//! Every experiment binary prints the same rows/series its paper table or
//! figure reports, through these helpers, so output stays consistent and
//! greppable (`EXPERIMENTS.md` records the results).

use std::fmt::Display;

/// Prints a titled, aligned table: a header row then data rows.
///
/// # Panics
///
/// Panics if a row's length differs from the header's.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Prints an `(x, y)` series as two aligned columns (one figure curve).
pub fn print_series<X: Display, Y: Display>(
    title: &str,
    x_label: &str,
    y_label: &str,
    points: &[(X, Y)],
) {
    println!("\n== {title} ==");
    println!("{x_label:>12}  {y_label}");
    for (x, y) in points {
        println!("{x:>12}  {y}");
    }
}

/// Formats a probability/rate with three decimals.
pub fn rate(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(rate(0.9412), "0.941");
        assert_eq!(pct(0.915), "91.5%");
    }

    #[test]
    fn table_prints_without_panic() {
        print_table(
            "demo",
            &["case", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        print_table("demo", &["one"], &[vec!["a".into(), "b".into()]]);
    }
}
