//! Loopback load generation for the TCP ingest server.
//!
//! [`replay_over_loopback`] stands up an [`rfipad::serve::IngestServer`]
//! on `127.0.0.1:0`, replays a report stream over N concurrent client
//! connections (each multiplexing M sessions, batches round-robined
//! across them), and checks every served session's recognitions against
//! the single-stream reference bit for bit — the wire must be a
//! transparent transport. Both the `load_gen` binary (which merges the
//! `serve_loopback` entry into `BENCH_pipeline.json`) and the
//! `serve_loopback` integration test drive it.

use rfid_gen2::report::TagReport;
use rfid_gen2::source::{ReportSource, TraceSource};
use rfid_gen2::wire::IngestClient;
use rfipad::engine::{normalize_events, Backpressure, Engine};
use rfipad::serve::{CollectingSink, EventSink, IngestServer};
use rfipad::{OnlinePipeline, PipelineEvent, Recognizer};
use std::sync::Arc;
use std::time::Instant;

/// Where the committed golden trace lives relative to the repo root.
pub const GOLDEN_TRACE_PATH: &str = "tests/data/golden_session.rftrace";

/// Shape of a loopback replay.
#[derive(Debug, Clone)]
pub struct LoopbackConfig {
    /// Concurrent client connections.
    pub connections: usize,
    /// Sessions multiplexed on each connection.
    pub sessions_per_connection: usize,
    /// Reports per BATCH frame.
    pub batch: usize,
    /// Engine worker threads (0 = one per core).
    pub jobs: usize,
    /// Engine per-session queue capacity.
    pub capacity: usize,
    /// When set, the engine serves its metrics/health/debug endpoint
    /// here for the replay's duration (e.g. `127.0.0.1:7939`).
    pub metrics_addr: Option<String>,
    /// Keep the engine (and its endpoint) alive this long after the
    /// replay drains, so external probes can scrape a live process.
    pub hold_s: f64,
}

impl Default for LoopbackConfig {
    fn default() -> Self {
        Self {
            connections: 4,
            sessions_per_connection: 2,
            batch: 64,
            jobs: 0,
            capacity: 1024,
            metrics_addr: None,
            hold_s: 0.0,
        }
    }
}

/// Outcome of one loopback replay in which every session reproduced the
/// reference events.
#[derive(Debug, Clone, Copy)]
pub struct LoopbackRun {
    /// Wall time of the replay, connect to drain.
    pub wall_s: f64,
    /// Total reports delivered per second across all sessions.
    pub reports_per_s: f64,
    /// Engine workers actually used.
    pub workers: usize,
    /// Total sessions served.
    pub sessions: usize,
    /// Events each session produced.
    pub events_per_session: usize,
    /// Median end-to-end response time over every served event, seconds
    /// (the paper's response-time metric, measured through the wire).
    pub e2e_p50_s: f64,
    /// 99th-percentile end-to-end response time, seconds.
    pub e2e_p99_s: f64,
    /// Events the percentiles were computed over.
    pub e2e_samples: usize,
}

/// The golden report stream: decoded from the committed trace when it is
/// reachable, otherwise re-recorded live (bit-identical by construction —
/// the session is seeded).
pub fn golden_reports(bench: &crate::Bench) -> Vec<TagReport> {
    // Repo-root relative for binaries run from the root, manifest
    // relative for tests whose working directory is the crate.
    let candidates = [
        GOLDEN_TRACE_PATH,
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../tests/data/golden_session.rftrace"
        ),
    ];
    for path in candidates {
        match TraceSource::open(path) {
            Ok(mut source) => match source.try_collect_reports() {
                Ok(reports) if !reports.is_empty() => return reports,
                Ok(_) => obs::warn!("trace is empty"; path = path),
                Err(e) => obs::warn!("{e}"; path = path),
            },
            Err(e) => obs::debug!("{e}"; path = path),
        }
    }
    obs::warn!("no readable trace; re-recording the golden session");
    crate::golden::golden_trial(bench).reports
}

/// The session pipeline every replay (serial, in-process, served) uses.
pub fn session_pipeline(recognizer: &Recognizer) -> OnlinePipeline {
    OnlinePipeline::builder()
        .recognizer(recognizer.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("valid pipeline")
}

/// The single-stream reference replay, normalized for comparison.
pub fn serial_replay(recognizer: &Recognizer, reports: &[TagReport]) -> Vec<PipelineEvent> {
    let mut pipeline = session_pipeline(recognizer);
    let mut events = Vec::new();
    for r in reports {
        events.extend(pipeline.push(*r));
    }
    events.extend(pipeline.finish());
    normalize_events(&mut events);
    events
}

/// Replays `reports` over loopback TCP through an in-process ingest
/// server and checks every session's recognitions against `expected`
/// (the normalized reference from [`serial_replay`]).
///
/// # Errors
///
/// A description of the first divergence: a wire error, a session whose
/// receipt lost reports, or a session whose events differ from the
/// reference.
pub fn replay_over_loopback(
    recognizer: &Recognizer,
    reports: &Arc<Vec<TagReport>>,
    expected: &[PipelineEvent],
    cfg: &LoopbackConfig,
) -> Result<LoopbackRun, String> {
    if cfg.connections == 0 || cfg.sessions_per_connection == 0 || cfg.batch == 0 {
        return Err("connections, sessions and batch must all be at least 1".into());
    }
    let mut builder = Engine::builder()
        .workers(cfg.jobs)
        .queue_capacity(cfg.capacity)
        .backpressure(Backpressure::Block);
    if let Some(addr) = &cfg.metrics_addr {
        builder = builder.metrics_addr(addr.clone());
    }
    let engine = Arc::new(builder.build().map_err(|e| e.to_string())?);
    let workers = engine.config().workers;
    let sink = Arc::new(CollectingSink::new());
    let factory_recognizer = recognizer.clone();
    let server = IngestServer::builder()
        .engine(Arc::clone(&engine))
        .pipeline_factory(move |_| Ok(session_pipeline(&factory_recognizer)))
        .event_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
        .build()
        .map_err(|e| e.to_string())?;
    let addr = server.local_addr();

    let start = Instant::now();
    let clients: Vec<_> = (0..cfg.connections)
        .map(|c| {
            let reports = Arc::clone(reports);
            let sessions = cfg.sessions_per_connection;
            let batch = cfg.batch;
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = IngestClient::connect(addr).map_err(|e| e.to_string())?;
                let ids: Vec<String> = (0..sessions).map(|s| format!("pad-{s}")).collect();
                for id in &ids {
                    client.open(id).map_err(|e| e.to_string())?;
                }
                // Round-robin the batches across the connection's
                // sessions: genuine frame-level multiplexing, not one
                // session after another.
                let mut seq = 0u32;
                for chunk in reports.chunks(batch) {
                    for id in &ids {
                        seq += 1;
                        let delivery = client
                            .send_batch(id, seq, chunk.iter().copied().collect())
                            .map_err(|e| e.to_string())?;
                        if delivery.accepted != chunk.len() as u64 || delivery.dropped != 0 {
                            return Err(format!(
                                "connection {c} session {id}: delivered {} / dropped {}, \
                                 expected {} / 0",
                                delivery.accepted,
                                delivery.dropped,
                                chunk.len()
                            ));
                        }
                    }
                }
                for id in &ids {
                    client.close(id).map_err(|e| e.to_string())?;
                }
                Ok(())
            })
        })
        .collect();
    for client in clients {
        client.join().map_err(|_| "client panicked".to_string())??;
    }
    let wall_s = start.elapsed().as_secs_f64();
    server.shutdown();

    let sessions = cfg.connections * cfg.sessions_per_connection;
    let collected = sink.take();
    if collected.len() != sessions {
        return Err(format!(
            "served {} sessions but the sink drained {}",
            sessions,
            collected.len()
        ));
    }
    // End-to-end response times ride the raw events; they are zeroed by
    // normalization, so collect them before comparing.
    let mut e2e_s: Vec<f64> = Vec::new();
    for (id, events) in collected {
        let mut events = events;
        for event in &events {
            match event {
                PipelineEvent::StrokeDetected {
                    response_time_s, ..
                }
                | PipelineEvent::LetterRecognized {
                    response_time_s, ..
                } => e2e_s.push(*response_time_s),
            }
        }
        normalize_events(&mut events);
        if events != expected {
            return Err(format!(
                "session {id}: served replay diverged from the single-stream replay \
                 ({} events vs {})",
                events.len(),
                expected.len()
            ));
        }
    }
    e2e_s.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        if e2e_s.is_empty() {
            0.0
        } else {
            e2e_s[((e2e_s.len() - 1) as f64 * p).round() as usize]
        }
    };
    let (e2e_p50_s, e2e_p99_s, e2e_samples) = (pct(0.50), pct(0.99), e2e_s.len());

    if cfg.hold_s > 0.0 {
        obs::info!("holding the engine alive for probes"; hold_s = cfg.hold_s,
            addr = cfg.metrics_addr.as_deref().unwrap_or("-"));
        std::thread::sleep(std::time::Duration::from_secs_f64(cfg.hold_s));
    }

    let total_reports = sessions * reports.len();
    Ok(LoopbackRun {
        wall_s,
        reports_per_s: total_reports as f64 / wall_s,
        workers,
        sessions,
        events_per_session: expected.len(),
        e2e_p50_s,
        e2e_p99_s,
        e2e_samples,
    })
}
