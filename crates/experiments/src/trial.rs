//! Trial runner: calibrate a deployment, write strokes/letters over it, and
//! score the recognizer — the machinery behind every table and figure.

use crate::setup::Deployment;
use hand_kinematics::stroke::Stroke;
use hand_kinematics::trajectory::HandTarget;
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::{Writer, WritingSession};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use rf_sim::targets::MovingTarget;
use rfid_gen2::reader::{Gen2Reader, ReaderConfig};
use rfid_gen2::report::TagReport;
use rfipad::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Seconds of static recording used for calibration (the paper samples each
/// tag ~100 times; at ~8 reads/s/tag this takes a few seconds).
pub const CALIBRATION_SECS: f64 = 6.0;

/// Idle margin recorded before and after each writing session.
pub const SESSION_MARGIN_SECS: f64 = 1.2;

/// Letter gap the trial replay graph uses. Longer than
/// [`SESSION_MARGIN_SECS`], so a trial's letter never closes before the
/// recording ends — the flush closes it, like the offline recognizer.
pub const LETTER_GAP_SECS: f64 = 1.5;

/// A calibrated test bench: deployment + reader + recognizer.
#[derive(Debug)]
pub struct Bench {
    /// The deployment under test.
    pub deployment: Deployment,
    /// The simulated Gen2 reader.
    pub reader: Gen2Reader,
    /// The calibrated recognizer.
    pub recognizer: Recognizer,
}

impl Bench {
    /// Builds and calibrates a bench: runs the reader over the static scene
    /// for [`CALIBRATION_SECS`] and derives the calibration from the
    /// resulting report stream.
    ///
    /// # Panics
    ///
    /// Panics if calibration fails (e.g. a tag was unreadable throughout —
    /// a broken deployment). Use [`Bench::try_calibrate`] to handle the
    /// error instead.
    pub fn calibrate(deployment: Deployment, config: RfipadConfig, seed: u64) -> Bench {
        Self::try_calibrate(deployment, config, seed).expect("calibration over a static scene")
    }

    /// Fallible variant of [`Bench::calibrate`]: surfaces calibration and
    /// configuration faults as [`RfipadError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// Whatever [`Calibration::from_observations`] or the recognizer
    /// builder reject — an under-sampled tag, an invalid config…
    pub fn try_calibrate(
        deployment: Deployment,
        config: RfipadConfig,
        seed: u64,
    ) -> Result<Bench, RfipadError> {
        let reader = Gen2Reader::new(ReaderConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let run = reader.run(&deployment.scene, &[], 0.0, CALIBRATION_SECS, &mut rng);
        let calibration = Calibration::from_observations(&deployment.layout, &run.events, &config)?;
        let recognizer = Recognizer::builder()
            .layout(deployment.layout.clone())
            .calibration(calibration)
            .config(config)
            .build()?;
        Ok(Bench {
            deployment,
            reader,
            recognizer,
        })
    }

    /// The hand and forearm targets for a session written by `user`. Both
    /// targets share the session's trajectory allocation (Arc refcount
    /// bumps, not deep copies of the segment list).
    pub fn targets(session: &WritingSession, user: &UserProfile) -> (HandTarget, HandTarget) {
        let hand = HandTarget::new(Arc::clone(&session.trajectory), user.hand_rcs_m2);
        let arm = HandTarget::with_offset(
            Arc::clone(&session.trajectory),
            user.arm_rcs_m2,
            user.arm_offset,
        );
        (hand, arm)
    }

    /// Records the reader stream for one writing session (with margins) and
    /// returns the tag reports.
    pub fn record_session<R: Rng + ?Sized>(
        &self,
        session: &WritingSession,
        user: &UserProfile,
        rng: &mut R,
    ) -> Vec<TagReport> {
        let (hand, arm) = Self::targets(session, user);
        let targets: Vec<&dyn MovingTarget> = vec![&hand, &arm];
        let start = session
            .trajectory
            .start_time()
            .unwrap_or(0.0)
            .min(session.strokes.first().map(|s| s.start).unwrap_or(0.0))
            - SESSION_MARGIN_SECS;
        let duration = session.end_time() - start + SESSION_MARGIN_SECS;
        let run = self
            .reader
            .run(&self.deployment.scene, &targets, start, duration, rng);
        run.events
    }

    /// Replays a recorded trial through the online stage graph and folds
    /// the emitted events back into a batch-style [`SessionResult`], so
    /// every figure is scored against the same code path a live deployment
    /// runs. Trial recordings end within the letter gap of the last
    /// stroke, so the letter closes at flush time and the final
    /// segmentation covers the whole session — matching the offline
    /// [`Recognizer::recognize_session`] result.
    pub fn replay_session(&self, reports: &[TagReport]) -> SessionResult {
        let mut graph = StageGraph::builder()
            .recognizer(self.recognizer.clone())
            .letter_gap_s(LETTER_GAP_SECS)
            .build()
            .expect("recognizer already validated");
        let mut events = Vec::new();
        for &report in reports {
            graph.push_into(report, &mut events);
        }
        graph.finish_into(&mut events);
        let mut strokes = Vec::new();
        let mut letter = None;
        for event in events {
            match event {
                PipelineEvent::StrokeDetected { stroke, .. } => strokes.push(stroke),
                PipelineEvent::LetterRecognized { letter: l, .. } => letter = l,
            }
        }
        let segmentation = graph.last_segmentation().cloned().unwrap_or(Segmentation {
            spans: Vec::new(),
            frames: Vec::new(),
            threshold: 0.0,
        });
        SessionResult {
            strokes,
            letter,
            segmentation,
        }
    }

    /// Runs one stroke trial end to end.
    pub fn run_stroke_trial(&self, stroke: Stroke, user: &UserProfile, seed: u64) -> StrokeTrial {
        let writer = Writer::new(self.deployment.pad, user.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let session = writer.write_motion(stroke, 1.0, &mut rng);
        let reports = self.record_session(&session, user, &mut rng);
        let result = self.replay_session(&reports);
        StrokeTrial {
            truth: stroke,
            session,
            reports,
            result,
        }
    }

    /// Runs one letter trial end to end.
    pub fn run_letter_trial(&self, letter: char, user: &UserProfile, seed: u64) -> LetterTrial {
        let writer = Writer::new(self.deployment.pad, user.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let session = writer.write_letter(letter, 1.0, &mut rng);
        let reports = self.record_session(&session, user, &mut rng);
        let result = self.replay_session(&reports);
        LetterTrial {
            truth: letter,
            session,
            reports,
            result,
        }
    }

    /// Runs a list of `(stroke, seed)` jobs across worker threads and
    /// returns the trials in input order.
    ///
    /// Each trial owns its seed, so the outcome of job `i` is a pure
    /// function of `jobs[i]` — the result vector is bit-identical to
    /// mapping [`Bench::run_stroke_trial`] over the jobs serially, whatever
    /// the thread count.
    pub fn run_stroke_trials(
        &self,
        jobs: &[(Stroke, u64)],
        user: &UserProfile,
    ) -> Vec<StrokeTrial> {
        jobs.par_iter()
            .map(|&(stroke, seed)| self.run_stroke_trial(stroke, user, seed))
            .collect()
    }

    /// Runs a list of `(letter, seed)` jobs across worker threads and
    /// returns the trials in input order. Same determinism contract as
    /// [`Bench::run_stroke_trials`].
    pub fn run_letter_trials(&self, jobs: &[(char, u64)], user: &UserProfile) -> Vec<LetterTrial> {
        jobs.par_iter()
            .map(|&(letter, seed)| self.run_letter_trial(letter, user, seed))
            .collect()
    }
}

/// Outcome of one stroke trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrokeTrial {
    /// The stroke that was written.
    pub truth: Stroke,
    /// The ground-truth session.
    pub session: WritingSession,
    /// The raw reader report stream of the trial.
    pub reports: Vec<TagReport>,
    /// What the recognizer saw.
    pub result: SessionResult,
}

impl StrokeTrial {
    /// Whether exactly one stroke was detected with the right shape and
    /// direction.
    pub fn correct(&self) -> bool {
        self.result.strokes.len() == 1 && self.result.strokes[0].stroke == self.truth
    }

    /// Whether the shape (ignoring direction) was right.
    pub fn shape_correct(&self) -> bool {
        self.result.strokes.len() == 1 && self.result.strokes[0].stroke.shape == self.truth.shape
    }

    /// False positive: more detections than true strokes.
    pub fn has_false_positive(&self) -> bool {
        self.result.strokes.len() > 1
    }

    /// False negative: no detection at all.
    pub fn has_false_negative(&self) -> bool {
        self.result.strokes.is_empty()
    }
}

/// Outcome of one letter trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LetterTrial {
    /// The letter that was written.
    pub truth: char,
    /// The ground-truth session.
    pub session: WritingSession,
    /// The raw reader report stream of the trial.
    pub reports: Vec<TagReport>,
    /// What the recognizer saw.
    pub result: SessionResult,
}

impl LetterTrial {
    /// Whether the letter was recognized correctly.
    pub fn correct(&self) -> bool {
        self.result.letter == Some(self.truth)
    }

    /// Ground-truth stroke intervals for segmentation scoring.
    pub fn truth_spans(&self) -> Vec<(f64, f64)> {
        self.session
            .strokes
            .iter()
            .map(|s| (s.start, s.end))
            .collect()
    }

    /// Segmentation outcome against ground truth.
    pub fn segmentation_outcome(&self) -> rfipad::metrics::SegmentationOutcome {
        rfipad::metrics::score_segmentation(&self.result.segmentation.spans, &self.truth_spans())
    }

    /// Fraction of ground-truth strokes whose recognized shape matches.
    pub fn stroke_accuracy(&self) -> f64 {
        let truth = &self.session.strokes;
        if truth.is_empty() {
            return 0.0;
        }
        let mut correct = 0usize;
        for t in truth {
            // Match by time overlap.
            let best = self.result.strokes.iter().max_by(|a, b| {
                overlap(a.span, t.start, t.end)
                    .partial_cmp(&overlap(b.span, t.start, t.end))
                    .expect("finite")
            });
            if let Some(r) = best {
                if overlap(r.span, t.start, t.end) > 0.0 && r.stroke.shape == t.stroke.shape {
                    correct += 1;
                }
            }
        }
        correct as f64 / truth.len() as f64
    }
}

fn overlap(span: StrokeSpan, start: f64, end: f64) -> f64 {
    (span.end.min(end) - span.start.max(start)).max(0.0)
}

/// Aggregate result of a batch of motion trials (the unit most evaluation
/// figures are built from).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct MotionBatch {
    /// Trials run.
    pub trials: usize,
    /// Trials whose single stroke was recognized exactly (shape+direction).
    pub exact: usize,
    /// Trials whose shape was right (direction ignored).
    pub shape: usize,
    /// Binary detection tallies for FPR/FNR.
    pub counts: rfipad::metrics::DetectionCounts,
}

impl MotionBatch {
    /// Exact-recognition accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.exact as f64 / self.trials as f64
        }
    }

    /// Shape-only accuracy.
    pub fn shape_accuracy(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.shape as f64 / self.trials as f64
        }
    }
}

impl Bench {
    /// Runs `repetitions` of each of the 13 strokes and tallies accuracy
    /// and detection rates. Seeds derive from `seed0` so batches are
    /// reproducible yet distinct.
    ///
    /// Trials are independent (each reseeds its own rng from the derived
    /// per-trial seed), so they fan out across worker threads; the tally is
    /// then folded in job order, making the batch bit-identical to a serial
    /// run regardless of thread count.
    pub fn run_motion_batch(
        &self,
        user: &UserProfile,
        repetitions: usize,
        seed0: u64,
    ) -> MotionBatch {
        let mut jobs = Vec::with_capacity(13 * repetitions);
        for stroke in Stroke::all_thirteen() {
            for rep in 0..repetitions {
                let seed = seed0
                    .wrapping_mul(1_000_003)
                    .wrapping_add(stroke.shape.motion_number() as u64 * 131)
                    .wrapping_add(stroke.reversed as u64 * 17)
                    .wrapping_add(rep as u64);
                jobs.push((stroke, seed));
            }
        }
        let trials = self.run_stroke_trials(&jobs, user);
        let mut batch = MotionBatch::default();
        for trial in &trials {
            batch.trials += 1;
            if trial.correct() {
                batch.exact += 1;
            }
            if trial.shape_correct() {
                batch.shape += 1;
            }
            if trial.has_false_negative() {
                batch.counts.false_negatives += 1;
            } else {
                batch.counts.true_positives += 1;
            }
            // The paper's FPR counts *falsely detected motions*: a
            // detection reporting the wrong motion, or spurious extra
            // detections.
            let falsely_detected =
                trial.has_false_positive() || (!trial.has_false_negative() && !trial.correct());
            if falsely_detected {
                batch.counts.false_positives += 1;
            } else {
                batch.counts.true_negatives += 1;
            }
        }
        batch
    }
}
