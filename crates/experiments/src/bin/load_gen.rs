//! Loopback load generator for the TCP ingest server: replays the golden
//! trace over N concurrent client connections, each multiplexing M
//! sessions onto an in-process `rfipad::serve` server, and requires every
//! served session to reproduce the single-stream replay bit for bit —
//! the wire is a transport, never an interpretation.
//!
//! On success the run merges a `serve_loopback` entry into
//! `BENCH_pipeline.json` next to the other perf-trajectory probes.
//!
//! Usage: `cargo run --release -p experiments --bin load_gen [-- \
//!   --connections N] [--sessions N] [--batch N] [--jobs N] [--capacity N] \
//!   [--metrics-addr HOST:PORT] [--hold SECS]`
//!
//! `--metrics-addr` serves the engine's metrics/health/debug endpoint for
//! the replay's duration, and `--hold` keeps the process (and endpoint)
//! alive after the drain so external probes — `bench-check.sh` smoke-curls
//! `/healthz`, `/readyz` and `/debug/journal` — hit a live engine.
//!
//! Defaults: 4 connections × 2 sessions, 64-report batches, one engine
//! worker per core, 1024-item queues. The golden trace is read from
//! `tests/data/golden_session.rftrace` when run from the repo root; a
//! missing trace falls back to re-recording the golden session live
//! (bit-identical by construction — it is seeded).

use experiments::golden::{golden_bench, GOLDEN_LETTER};
use experiments::serveload::{golden_reports, replay_over_loopback, serial_replay, LoopbackConfig};
use rfipad::PipelineEvent;
use std::process::ExitCode;
use std::sync::Arc;

fn parse_args() -> Result<LoopbackConfig, String> {
    let mut cfg = LoopbackConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--connections" => cfg.connections = grab("--connections")?,
            "--sessions" => cfg.sessions_per_connection = grab("--sessions")?,
            "--batch" => cfg.batch = grab("--batch")?,
            "--jobs" => cfg.jobs = grab("--jobs")?,
            "--capacity" => cfg.capacity = grab("--capacity")?,
            "--metrics-addr" => {
                cfg.metrics_addr = Some(
                    it.next()
                        .ok_or("--metrics-addr needs a value".to_string())?,
                )
            }
            "--hold" => {
                cfg.hold_s = it
                    .next()
                    .ok_or("--hold needs a value".to_string())?
                    .parse::<f64>()
                    .map_err(|e| format!("--hold: {e}"))?
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if cfg.connections == 0 || cfg.sessions_per_connection == 0 || cfg.batch == 0 {
        return Err("--connections, --sessions and --batch must be at least 1".into());
    }
    Ok(cfg)
}

fn run() -> Result<(), String> {
    let cfg = parse_args()?;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    obs::info!("calibrating golden bench");
    let bench = golden_bench();
    let reports = Arc::new(golden_reports(&bench));
    let expected = serial_replay(&bench.recognizer, &reports);
    let letters: Vec<_> = expected
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::LetterRecognized { letter, .. } => Some(*letter),
            _ => None,
        })
        .collect();
    if letters != vec![Some(GOLDEN_LETTER)] {
        return Err(format!(
            "serial replay must recognize '{GOLDEN_LETTER}', got {letters:?}"
        ));
    }

    obs::info!("replaying over loopback"; connections = cfg.connections,
        sessions_per_connection = cfg.sessions_per_connection, batch = cfg.batch,
        reports = reports.len());
    let run = replay_over_loopback(&bench.recognizer, &reports, &expected, &cfg)?;
    println!(
        "{} connections × {} sessions replayed '{GOLDEN_LETTER}' identically over \
         loopback in {:.3} s ({:.0} reports/s through {} workers)",
        cfg.connections, cfg.sessions_per_connection, run.wall_s, run.reports_per_s, run.workers,
    );

    let entry = format!(
        "{{ \"connections\": {}, \"sessions_per_connection\": {}, \"workers\": {}, \
         \"cores\": {cores}, \"batch\": {}, \"reports_per_session\": {}, \
         \"wall_s\": {:.3}, \"reports_per_s\": {:.0}, \"events_per_session\": {}, \
         \"identical_to_serial\": true }}",
        cfg.connections,
        cfg.sessions_per_connection,
        run.workers,
        cfg.batch,
        reports.len(),
        run.wall_s,
        run.reports_per_s,
        run.events_per_session,
    );
    experiments::benchjson::merge_entry("serve_loopback", &entry)
        .map_err(|e| format!("BENCH_pipeline.json: {e}"))?;
    obs::info!("merged serve_loopback entry into BENCH_pipeline.json");

    println!(
        "end-to-end response time over {} served events: p50 {:.6} s, p99 {:.6} s",
        run.e2e_samples, run.e2e_p50_s, run.e2e_p99_s,
    );
    let entry = format!(
        "{{ \"sessions\": {}, \"events\": {}, \"p50_s\": {:.6}, \"p99_s\": {:.6} }}",
        run.sessions, run.e2e_samples, run.e2e_p50_s, run.e2e_p99_s,
    );
    experiments::benchjson::merge_entry("serve_e2e_latency", &entry)
        .map_err(|e| format!("BENCH_pipeline.json: {e}"))?;
    obs::info!("merged serve_e2e_latency entry into BENCH_pipeline.json");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("{e}");
            ExitCode::FAILURE
        }
    }
}
