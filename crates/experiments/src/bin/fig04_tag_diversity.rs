//! Fig. 4 — average static phase of each tag in the 5×5 array.
//!
//! The paper interrogates each tag 100 times with no hand present and finds
//! the per-tag mean phases spread irregularly over [0, 2π) — the *tag
//! diversity* that motivates the Eq. 6–8 suppression.

use experiments::report::print_series;
use experiments::{Deployment, DeploymentSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_gen2::reader::Gen2Reader;
use std::collections::HashMap;

fn main() {
    let deployment = Deployment::build(DeploymentSpec::default(), 42);
    let reader = Gen2Reader::default();
    let mut rng = StdRng::seed_from_u64(4);
    // ~13 s gives each tag ≈ 100 interrogations, as in the paper.
    let run = reader.run(&deployment.scene, &[], 0.0, 13.0, &mut rng);

    let mut sums: HashMap<u64, (f64, f64, usize)> = HashMap::new();
    for e in &run.events {
        let entry = sums.entry(e.tag.0).or_insert((0.0, 0.0, 0));
        entry.0 += e.phase.sin();
        entry.1 += e.phase.cos();
        entry.2 += 1;
    }
    let mut points = Vec::new();
    for id in 0..25u64 {
        let (s, c, n) = sums.get(&id).copied().unwrap_or((0.0, 0.0, 0));
        let mean = s.atan2(c).rem_euclid(std::f64::consts::TAU);
        points.push((id + 1, format!("{mean:.3} rad ({n} reads)")));
    }
    print_series(
        "Fig. 4 — average static phase per tag (1..25)",
        "tag #",
        "mean phase",
        &points,
    );
    let phases: Vec<f64> = points
        .iter()
        .map(|p| p.1.split(' ').next().unwrap().parse::<f64>().unwrap())
        .collect();
    let lo = phases.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nSpread: {lo:.2}..{hi:.2} rad — per-tag central phases distribute irregularly\n\
         within [0, 2π), as the paper's Fig. 4 shows (tag diversity)."
    );
}
