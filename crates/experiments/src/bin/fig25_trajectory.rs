//! Fig. 25 — trajectory comparison while a user writes 'Z': Kinect skeletal
//! ground truth vs. RFIPad's gray maps / estimated path.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::kinect::KinectTracker;
use hand_kinematics::user::UserProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfipad::accumulate::accumulative_image;
use rfipad::RfipadConfig;

fn main() {
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();
    let trial = bench.run_letter_trial('Z', &user, 2525);
    println!("letter written: Z   recognized: {:?}", trial.result.letter);

    // Kinect ground truth (30 Hz skeletal samples of the same trajectory).
    let kinect = KinectTracker::default();
    let mut rng = StdRng::seed_from_u64(25);
    let samples = kinect.track(&trial.session.trajectory, &mut rng);
    let err = kinect.mean_error(&trial.session.trajectory, &samples);
    println!(
        "Kinect: {} skeletal samples at {:.0} Hz, mean joint error {:.1} mm",
        samples.len(),
        kinect.rate_hz,
        err * 1000.0
    );

    // RFIPad's view: per-stroke gray maps + estimated hand paths.
    let streams = bench.recognizer.streams(&trial.reports);
    let pad = bench.deployment.pad;
    for (i, stroke) in trial.result.strokes.iter().enumerate() {
        println!(
            "\n== stroke {} — recognized {} over {:.2}..{:.2} s ==",
            i + 1,
            stroke.stroke,
            stroke.span.start,
            stroke.span.end
        );
        let img = accumulative_image(
            &bench.deployment.layout,
            &streams,
            Some(bench.recognizer.calibration()),
            stroke.span.start,
            stroke.span.end,
        )
        .expect("image");
        println!("RFIPad gray map:");
        print!("{}", img.to_ascii());
        println!("after Otsu:");
        print!("{}", stroke.motion.mask.to_ascii());

        // Estimated path vs the Kinect track over the same span.
        let path = bench.recognizer.span_path(&streams, stroke.span);
        println!("RFIPad path (grid row,col) vs Kinect (normalized row,col):");
        for p in &path {
            let t = stroke.span.start + p.frac * stroke.span.duration();
            let kinect_point = samples
                .iter()
                .min_by(|a, b| (a.time - t).abs().partial_cmp(&(b.time - t).abs()).unwrap())
                .map(|s| pad.normalize(s.position));
            match kinect_point {
                Some((kr, kc)) => println!(
                    "  t={:.2}s  rfipad=({:.2},{:.2})  kinect=({:.2},{:.2})  Δ={:.2} cells",
                    t,
                    p.point.0,
                    p.point.1,
                    kr * 4.0,
                    kc * 4.0,
                    ((p.point.0 - kr * 4.0).powi(2) + (p.point.1 - kc * 4.0).powi(2)).sqrt()
                ),
                None => println!("  t={t:.2}s  rfipad=({:.2},{:.2})", p.point.0, p.point.1),
            }
        }
    }
    println!(
        "\nPaper's finding: the two trajectories are very consistent — the gray maps\n\
         trace the same Z the Kinect skeleton records."
    );
}
