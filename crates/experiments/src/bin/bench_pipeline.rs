//! Perf-trajectory probe: times the static-channel cache and the parallel
//! trial fan-out, then writes machine-readable results to
//! `BENCH_pipeline.json` so future PRs can compare against this one.
//!
//! Measures four levels:
//!   1. `Scene::observe` cached vs. from-scratch (`observe_uncached`) — the
//!      Layer-1 win; the uncached path is the seed's per-read cost.
//!   2. A 13-stroke trial batch serial vs. parallel — the Layer-2 win
//!      (thread count pinned via `RAYON_NUM_THREADS`).
//!   3. Trace replay: decode the golden session from both framings and
//!      recognize it — the cost of running from a recorded trace instead
//!      of a live reader.
//!   4. Optionally (`--run-all`), the full `run_all quick` roster with
//!      `--jobs 1` vs. `--jobs 0` (all cores).
//!
//! Usage: `cargo run --release -p experiments --bin bench_pipeline [-- --run-all]`

use experiments::golden::golden_trial;
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::targets::StaticTarget;
use rf_sim::Vec3;
use rfipad::RfipadConfig;
use std::time::Instant;

fn time_observe(bench: &Bench, cached: bool, iters: u32) -> f64 {
    let scene = &bench.deployment.scene;
    let id = bench.deployment.layout.tags()[6];
    let hand = StaticTarget::new(Vec3::new(-0.08, -0.11, 0.04), 0.02);
    let mut rng = StdRng::seed_from_u64(3);
    let start = Instant::now();
    let mut acc = 0.0;
    for i in 0..iters {
        let t = i as f64 * 1e-4;
        let obs = if cached {
            scene.observe(id, t, &[&hand], &mut rng)
        } else {
            scene.observe_uncached(id, t, &[&hand], &mut rng)
        };
        if let Some(o) = obs {
            acc += o.phase;
        }
    }
    std::hint::black_box(acc);
    start.elapsed().as_secs_f64() / iters as f64 * 1e9
}

fn time_batch(bench: &Bench, user: &UserProfile, threads: Option<usize>) -> f64 {
    match threads {
        Some(n) => std::env::set_var("RAYON_NUM_THREADS", n.to_string()),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    let jobs: Vec<(Stroke, u64)> = Stroke::all_thirteen()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 400 + i as u64))
        .collect();
    let start = Instant::now();
    let trials = bench.run_stroke_trials(&jobs, user);
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(trials.len());
    std::env::remove_var("RAYON_NUM_THREADS");
    elapsed
}

/// Times decode-from-buffer + batch recognition of the golden session in
/// one trace framing; returns (ms per replay, encoded bytes).
fn time_trace_replay(bench: &Bench, encoded: &[u8], iters: u32) -> (f64, usize) {
    use rfid_gen2::source::{ReportSource, TraceSource};
    let start = Instant::now();
    for _ in 0..iters {
        let mut source =
            TraceSource::from_reader(std::io::BufReader::new(encoded)).expect("readable trace");
        let reports = source.collect_reports();
        assert!(source.error().is_none(), "golden trace decodes");
        let result = bench.recognizer.recognize_session(&reports);
        std::hint::black_box(result.letter);
    }
    (
        start.elapsed().as_secs_f64() / iters as f64 * 1e3,
        encoded.len(),
    )
}

/// Times the serial streaming pipeline over the golden session: every
/// report pushed through `OnlinePipeline::push_into` (the incremental
/// framing / cached-streams hot path) plus the final flush. Returns
/// (reports per second, reports per replay); asserts the letter so a
/// regression in the incremental path cannot silently score as a speedup.
fn time_incremental_framing(
    bench: &Bench,
    reports: &[rfid_gen2::report::TagReport],
) -> (f64, usize) {
    use rfipad::{OnlinePipeline, PipelineEvent};
    let rounds = 20;
    let mut events = Vec::new();
    let start = Instant::now();
    for _ in 0..rounds {
        let mut pipeline = OnlinePipeline::builder()
            .recognizer(bench.recognizer.clone())
            .letter_gap_s(1.5)
            .build()
            .expect("valid pipeline");
        let mut letter = None;
        for r in reports {
            pipeline.push_into(*r, &mut events);
        }
        pipeline.finish_into(&mut events);
        for e in events.drain(..) {
            if let PipelineEvent::LetterRecognized { letter: l, .. } = e {
                letter = l;
            }
        }
        assert_eq!(
            letter,
            Some(experiments::golden::GOLDEN_LETTER),
            "incremental replay must still recognize the golden letter"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((rounds * reports.len()) as f64 / elapsed, reports.len())
}

/// Times the raw stage graph over the golden session — the same replay as
/// [`time_incremental_framing`] but driving [`rfipad::StageGraph`]
/// directly, bypassing the facade. The entry feeds bench-check's
/// `stage_overhead` gate: the graph-composed replay must hold the
/// committed `trace_replay` throughput.
fn time_stage_graph(bench: &Bench, reports: &[rfid_gen2::report::TagReport]) -> (f64, usize) {
    use rfipad::{PipelineEvent, StageGraph};
    let rounds = 20;
    let mut events = Vec::new();
    let start = Instant::now();
    for _ in 0..rounds {
        let mut graph = StageGraph::builder()
            .recognizer(bench.recognizer.clone())
            .letter_gap_s(1.5)
            .build()
            .expect("valid graph");
        let mut letter = None;
        for r in reports {
            graph.push_into(*r, &mut events);
        }
        graph.finish_into(&mut events);
        for e in events.drain(..) {
            if let PipelineEvent::LetterRecognized { letter: l, .. } = e {
                letter = l;
            }
        }
        assert_eq!(
            letter,
            Some(experiments::golden::GOLDEN_LETTER),
            "graph replay must still recognize the golden letter"
        );
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((rounds * reports.len()) as f64 / elapsed, reports.len())
}

fn time_run_all(jobs_flag: &str) -> Option<f64> {
    let exe_dir = std::env::current_exe().ok()?.parent()?.to_path_buf();
    let start = Instant::now();
    let status = std::process::Command::new(exe_dir.join("run_all"))
        .args(["quick", "--jobs", jobs_flag])
        .stdout(std::process::Stdio::null())
        .status()
        .ok()?;
    if !status.success() {
        return None;
    }
    Some(start.elapsed().as_secs_f64())
}

fn main() {
    let with_run_all = std::env::args().any(|a| a == "--run-all");
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    obs::info!("calibrating bench");
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let user = UserProfile::average();

    obs::info!("timing Scene::observe (cached vs uncached)");
    // Warm up, then measure.
    time_observe(&bench, true, 2_000);
    let cached_ns = time_observe(&bench, true, 20_000);
    let uncached_ns = time_observe(&bench, false, 20_000);

    obs::info!("timing 13-stroke batch"; serial_vs_threads = cores);
    let serial_s = time_batch(&bench, &user, Some(1));
    let parallel_s = time_batch(&bench, &user, None);

    obs::info!("timing golden-trace replay (JSON lines vs binary)");
    use rfid_gen2::trace::{write_trace, TraceFormat};
    let golden = golden_trial(&bench);
    let mut json_buf = Vec::new();
    write_trace(&mut json_buf, TraceFormat::JsonLines, &golden.reports).expect("encode json");
    let mut bin_buf = Vec::new();
    write_trace(&mut bin_buf, TraceFormat::Binary, &golden.reports).expect("encode binary");
    let (json_ms, json_bytes) = time_trace_replay(&bench, &json_buf, 20);
    let (bin_ms, bin_bytes) = time_trace_replay(&bench, &bin_buf, 20);

    obs::info!("timing serial streaming replay (incremental framing)");
    let (framing_rps, framing_reports) = time_incremental_framing(&bench, &golden.reports);

    obs::info!("timing raw stage-graph replay (facade bypassed)");
    let (graph_rps, graph_reports) = time_stage_graph(&bench, &golden.reports);

    let run_all = if with_run_all {
        obs::info!("timing run_all quick --jobs 1 (serial)");
        let one = time_run_all("1");
        obs::info!("timing run_all quick --jobs 0 (all cores)");
        let all = time_run_all("0");
        one.zip(all)
    } else {
        None
    };

    let observe_speedup = uncached_ns / cached_ns;
    let batch_speedup = serial_s / parallel_s;
    // The seed ran uncached AND serial, so its estimated cost multiplies
    // both ratios; the measured components are recorded separately.
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"cores\": {cores},\n"));
    json.push_str(&format!(
        "  \"scene_observe\": {{ \"cached_ns\": {cached_ns:.1}, \"uncached_ns\": {uncached_ns:.1}, \"speedup\": {observe_speedup:.2} }},\n"
    ));
    json.push_str(&format!(
        "  \"stroke_batch_13\": {{ \"serial_s\": {serial_s:.3}, \"parallel_s\": {parallel_s:.3}, \"speedup\": {batch_speedup:.2}, \"cores\": {cores} }},\n"
    ));
    json.push_str(&format!(
        "  \"trace_replay\": {{ \"reports\": {}, \"json_ms\": {json_ms:.2}, \"json_bytes\": {json_bytes}, \"binary_ms\": {bin_ms:.2}, \"binary_bytes\": {bin_bytes} }},\n",
        golden.reports.len()
    ));
    json.push_str(&format!(
        "  \"incremental_framing\": {{ \"reports\": {framing_reports}, \"reports_per_s\": {framing_rps:.0} }},\n"
    ));
    json.push_str(&format!(
        "  \"stage_overhead\": {{ \"reports\": {graph_reports}, \"reports_per_s\": {graph_rps:.0} }},\n"
    ));
    if let Some((one, all)) = run_all {
        json.push_str(&format!(
            "  \"run_all_quick\": {{ \"jobs1_s\": {one:.1}, \"jobs_all_s\": {all:.1}, \"speedup\": {:.2}, \"cores\": {cores} }},\n",
            one / all
        ));
    }
    json.push_str(&format!(
        "  \"estimated_speedup_vs_uncached_serial\": {:.1},\n",
        observe_speedup * batch_speedup
    ));
    json.push_str(
        "  \"note\": \"uncached_ns x serial_s approximate the pre-cache single-core seed; all trials are seeded and bit-identical across thread counts\"\n}\n",
    );

    std::fs::write("BENCH_pipeline.json", &json).expect("write BENCH_pipeline.json");
    print!("{json}");
    obs::info!("wrote BENCH_pipeline.json");
}
