//! Fig. 17 — false-positive and false-negative rate vs. reader TX power.
//!
//! The paper sweeps 15–32.5 dBm: at full power error rates sit around 5%,
//! rising toward ≈20% at 15 dBm (battery-free tags harvest less energy, so
//! the hand's influence is less distinct).

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for power in [15.0, 18.0, 20.0, 25.0, 32.5] {
        let bench = Bench::calibrate(
            Deployment::build(
                DeploymentSpec {
                    tx_power_dbm: power,
                    ..DeploymentSpec::default()
                },
                42,
            ),
            RfipadConfig::default(),
            1,
        );
        let batch = bench.run_motion_batch(&user, reps, 1700);
        rows.push(vec![
            format!("{power}"),
            rate(batch.counts.fpr()),
            rate(batch.counts.fnr()),
            rate(batch.accuracy()),
        ]);
    }
    print_table(
        &format!(
            "Fig. 17 — error rates vs. reader TX power ({} motions per level)",
            13 * reps
        ),
        &["power (dBm)", "FPR", "FNR", "accuracy"],
        &rows,
    );
    println!(
        "\nPaper: ≈5% error at 32.5 dBm, rising to ≈20% at 15 dBm. Shape check: both\n\
         rates fall as power rises — use the highest allowed power in deployments."
    );
}
