//! Fig. 16 — detection accuracy in four lab locations, with and without
//! diversity suppression.
//!
//! The paper's location 4 (strongest multipath) shows the largest gain:
//! 75% → 93% once the suppression algorithm runs.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let user = UserProfile::average();
    let mut rows = Vec::new();
    for location in 1..=4usize {
        let deployment = || {
            Deployment::build(
                DeploymentSpec {
                    location,
                    ..DeploymentSpec::default()
                },
                42 + location as u64,
            )
        };
        let with = Bench::calibrate(deployment(), RfipadConfig::default(), 1).run_motion_batch(
            &user,
            reps,
            3000 + location as u64,
        );
        let without = Bench::calibrate(
            deployment(),
            RfipadConfig::default().without_suppression(),
            1,
        )
        .run_motion_batch(&user, reps, 3000 + location as u64);
        rows.push(vec![
            format!("location {location}"),
            rate(without.accuracy()),
            rate(with.accuracy()),
            format!("{:+.3}", with.accuracy() - without.accuracy()),
        ]);
    }
    print_table(
        &format!(
            "Fig. 16 — detection accuracy vs. environment ({} motions per cell)",
            13 * reps
        ),
        &["environment", "w/o suppression", "with suppression", "gain"],
        &rows,
    );
    println!(
        "\nPaper: suppression improves every location, most at location 4\n\
         (strongest multipath; 0.75 → 0.93). Shape check: the gain column should\n\
         be positive everywhere and largest in location 4."
    );
}
