//! Fig. 11 — interference within a pair of tags.
//!
//! A target tag sits 2 m from the reader (RSS ≈ −41 dBm); a testing tag
//! approaches it. Same-facing placement at 3 cm (inside the near field
//! λ/2π ≈ 5.2 cm) suppresses the target strongly; opposite facing nearly
//! removes the interference; beyond ≈ 12 cm it is negligible.

use experiments::report::print_table;
use rf_sim::antenna::ReaderAntenna;
use rf_sim::channel;
use rf_sim::coupling;
use rf_sim::geometry::Vec3;
use rf_sim::tags::{Facing, Tag, TagId, TagModel};
use rf_sim::units::{Db, Dbi, Dbm, Meters, CARRIER_FREQUENCY};

fn main() {
    let lambda = CARRIER_FREQUENCY.wavelength();
    let antenna = ReaderAntenna::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0), Dbi(8.0));
    let target_pos = Vec3::new(0.0, 0.0, -2.0);
    let target = Tag::new(TagId(0), target_pos, Facing::Front, TagModel::TypeB, 0.0);

    let baseline = channel::backscatter_power(
        Dbm(30.0),
        antenna.gain_toward(target_pos),
        target.model.rcs_m2(),
        Meters(2.0),
        lambda,
        Db(0.0),
    );
    println!(
        "target tag alone, 2 m from antenna: RSS = {:.1} dBm",
        baseline.value()
    );
    println!(
        "near-field boundary λ/2π = {:.1} cm, far-field 2λ/2π = {:.1} cm",
        coupling::near_field_boundary(lambda).value() * 100.0,
        coupling::far_field_boundary(lambda).value() * 100.0
    );

    let mut rows = Vec::new();
    for distance_cm in [3.0, 4.0, 6.0, 8.0, 10.0, 12.0, 15.0] {
        let mut cells = vec![format!("{distance_cm:.0}")];
        for facing in [Facing::Front, Facing::Back] {
            let tester = Tag::new(
                TagId(1),
                target_pos + Vec3::new(distance_cm / 100.0, 0.0, 0.0),
                facing,
                TagModel::TypeB,
                0.0,
            );
            let shadow = coupling::pair_shadow_db(&tester, &target, lambda);
            let rss = baseline - Db(2.0 * shadow.value());
            cells.push(format!("{:.1}", rss.value()));
        }
        rows.push(cells);
    }
    print_table(
        "Fig. 11 — target-tag RSS (dBm) vs. testing-tag distance and facing",
        &["distance (cm)", "same facing", "opposite facing"],
        &rows,
    );
    println!(
        "\nShape check: same-facing at 3 cm shows a significant drop; opposite facing\n\
         stays near the baseline; past ≈12 cm interference is negligible — matching\n\
         the paper's deployment guidance (6 cm pitch, alternating facings)."
    );
}
