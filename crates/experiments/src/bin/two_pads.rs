//! Two RFIPads on one reader — the multi-pad half of the §I claim.
//!
//! Two plates hang side by side (a bilingual kiosk, or adjacent exhibits),
//! each on its own antenna port of the same reader. Two users write
//! different letters at overlapping times; the shared report stream is
//! routed by [`rfipad::PadDispatcher`] and both letters must come out.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::geometry::Vec3;
use rf_sim::scene::Scene;
use rf_sim::tags::{Tag, TagId};
use rf_sim::targets::MovingTarget;
use rfipad::multipad::{PadDispatcher, PadEvent};
use rfipad::{ArrayLayout, Calibration, PipelineEvent, Recognizer, RfipadConfig};

fn main() {
    // Pad A: the standard deployment.
    let bench_a = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );

    // Pad B: a second plate one metre to the right, its tags renumbered
    // 100.. so both pads coexist in one id space, watched by the reader's
    // second antenna port (its own scene).
    let offset = Vec3::new(1.0, 0.0, 0.0);
    let tags_b: Vec<Tag> = bench_a
        .deployment
        .scene
        .tags()
        .iter()
        .map(|t| {
            Tag::new(
                TagId(t.id.0 + 100),
                t.position + offset,
                t.facing,
                t.model,
                t.theta_tag,
            )
        })
        .collect();
    let antenna_b = rf_sim::antenna::ReaderAntenna::new(
        bench_a.deployment.scene.antenna().position() + offset,
        bench_a.deployment.scene.antenna().boresight(),
        bench_a.deployment.scene.antenna().peak_gain(),
    );
    let scene_b = Scene::new(
        antenna_b,
        tags_b,
        bench_a.deployment.scene.environment().clone(),
        bench_a.deployment.scene.config().clone(),
    );
    let layout_b = ArrayLayout::new(5, 5, (100..125).map(TagId).collect());

    // Calibrate pad B from its own static recording.
    let mut rng = StdRng::seed_from_u64(21);
    let config = RfipadConfig::default();
    let static_run = bench_a.reader.run(&scene_b, &[], 0.0, 6.0, &mut rng);
    let static_obs: Vec<_> = static_run.events.clone();
    let cal_b =
        Calibration::from_observations(&layout_b, &static_obs, &config).expect("pad B calibrates");
    let recognizer_b = Recognizer::builder()
        .layout(layout_b)
        .calibration(cal_b)
        .config(config)
        .build()
        .expect("valid");

    // Two users write concurrently: 'L' on pad A, 'T' on pad B.
    let user_a = UserProfile::volunteer(2);
    let user_b = UserProfile::volunteer(5);
    let writer_a = Writer::new(bench_a.deployment.pad, user_a.clone());
    let mut pad_b_frame = bench_a.deployment.pad;
    pad_b_frame.top_left = pad_b_frame.top_left + offset;
    let writer_b = Writer::new(pad_b_frame, user_b.clone());
    let session_a = writer_a.write_letter('L', 1.0, &mut rng);
    let session_b = writer_b.write_letter('T', 1.4, &mut rng);

    // The reader alternates antenna ports in 300 ms dwells.
    let hand_a = hand_kinematics::trajectory::HandTarget::new(
        session_a.trajectory.clone(),
        user_a.hand_rcs_m2,
    );
    let arm_a = hand_kinematics::trajectory::HandTarget::with_offset(
        session_a.trajectory.clone(),
        user_a.arm_rcs_m2,
        user_a.arm_offset,
    );
    let hand_b = hand_kinematics::trajectory::HandTarget::new(
        session_b.trajectory.clone(),
        user_b.hand_rcs_m2,
    );
    let arm_b = hand_kinematics::trajectory::HandTarget::with_offset(
        session_b.trajectory.clone(),
        user_b.arm_rcs_m2,
        user_b.arm_offset,
    );
    let targets_a: Vec<&dyn MovingTarget> = vec![&hand_a, &arm_a];
    let targets_b: Vec<&dyn MovingTarget> = vec![&hand_b, &arm_b];

    let duration = session_a.end_time().max(session_b.end_time()) + 2.0;
    let events = experiments::run_multiplexed(
        &bench_a.reader,
        &[
            experiments::Port {
                scene: &bench_a.deployment.scene,
                targets: &targets_a,
            },
            experiments::Port {
                scene: &scene_b,
                targets: &targets_b,
            },
        ],
        0.3,
        -0.5,
        duration,
        &mut rng,
    );

    // Dispatch.
    let mut dispatcher = PadDispatcher::new();
    let pad_a = dispatcher
        .register(bench_a.recognizer.clone(), 1.8)
        .expect("pad A");
    let pad_b = dispatcher.register(recognizer_b, 1.8).expect("pad B");
    let mut letters = std::collections::HashMap::new();
    for e in &events {
        for routed in dispatcher.push(*e) {
            if let PadEvent::Recognition {
                pad,
                event: PipelineEvent::LetterRecognized { letter, .. },
            } = routed
            {
                letters.insert(pad, letter);
            }
        }
    }
    for routed in dispatcher.finish() {
        if let PadEvent::Recognition {
            pad,
            event: PipelineEvent::LetterRecognized { letter, .. },
        } = routed
        {
            letters.insert(pad, letter);
        }
    }

    println!("== Two pads, one reader ==");
    println!("reads captured: {}", events.len());
    println!(
        "pad A (user writes 'L'): recognized {:?}",
        letters.get(&pad_a).copied().flatten()
    );
    println!(
        "pad B (user writes 'T'): recognized {:?}",
        letters.get(&pad_b).copied().flatten()
    );
    assert_eq!(letters.get(&pad_a).copied().flatten(), Some('L'));
    assert_eq!(letters.get(&pad_b).copied().flatten(), Some('T'));
    println!("\nBoth letters recovered from one reader's multiplexed stream — the §I\nmulti-pad claim demonstrated.");
}
