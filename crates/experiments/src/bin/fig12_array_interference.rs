//! Fig. 12 — RSS of a target tag behind the plate as the array population
//! and tag model vary.
//!
//! The paper populates the plane with 1–5 rows × 1–3 columns of four
//! commercial tag designs and measures the suppression of a target tag
//! behind it: three columns of the largest-RCS design (Tag D) cost ≈ 20 dB;
//! the small Impinj AZ-E53 (Tag B) only ≈ 2 dB.

use experiments::report::print_table;
use rf_sim::coupling;
use rf_sim::geometry::Vec3;
use rf_sim::tags::{Facing, Tag, TagId, TagModel};

fn main() {
    let antenna_pos = Vec3::new(0.0, 0.0, 0.5); // 50 cm in front of the plane
    let victim_pos = Vec3::new(0.0, 0.0, -0.02); // target tag just behind it
    let spacing = 0.06;

    for model in TagModel::all() {
        let mut rows_out = Vec::new();
        for n_rows in 1..=5usize {
            let mut cells = vec![n_rows.to_string()];
            for n_cols in 1..=3usize {
                let tags: Vec<Tag> = (0..n_rows)
                    .flat_map(|r| {
                        (0..n_cols).map(move |c| {
                            Tag::new(
                                TagId((r * n_cols + c) as u64),
                                Vec3::new(
                                    (c as f64 - (n_cols as f64 - 1.0) / 2.0) * spacing,
                                    (r as f64 - (n_rows as f64 - 1.0) / 2.0) * spacing,
                                    0.0,
                                ),
                                Facing::Front,
                                model,
                                0.0,
                            )
                        })
                    })
                    .collect();
                let shadow =
                    coupling::array_shadow_db(&tags, victim_pos, Facing::Front, antenna_pos);
                // Baseline victim RSS ≈ −44 dBm at this geometry.
                cells.push(format!("{:.1}", -44.0 - shadow.value()));
            }
            rows_out.push(cells);
        }
        print_table(
            &format!(
                "Fig. 12 — target-tag RSS (dBm) behind a plate of {model} (RCS {:.4} m²)",
                model.rcs_m2()
            ),
            &["rows", "1 column", "2 columns", "3 columns"],
            &rows_out,
        );
    }
    println!(
        "\nShape check: RSS falls as rows/columns are added; the drop ordering follows\n\
         RCS (D ≫ A > C ≫ B). Three columns of Tag D cost ≈20 dB, of Tag B only ≈2 dB\n\
         — Tag B (Impinj AZ-E53) is the right choice for dense arrays."
    );
}
