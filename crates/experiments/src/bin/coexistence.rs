//! The paper's cost-efficiency claim (§I): one existing reader monitors an
//! RFIPad *while performing its regular applications such as
//! identification and tracking*.
//!
//! One reader inventories a scene holding the 5×5 pad plus a population of
//! ordinary asset tags spread around the room. The mixed report stream is
//! routed by [`rfipad::PadDispatcher`]: pad reads feed the online
//! recognizer, asset reads pass through to the host application. We verify
//! (a) the letter is still recognized, (b) every asset tag is still
//! identified, and (c) how the read budget is shared.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use hand_kinematics::writer::Writer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::{Facing, Tag, TagId, TagModel};
use rf_sim::targets::MovingTarget;
use rfipad::multipad::{PadDispatcher, PadEvent};
use rfipad::PipelineEvent;
use std::collections::HashSet;

fn main() {
    // Calibrate the pad alone first (the asset tags join afterwards — a
    // calibration does not need them quiet, but this mirrors a staged
    // deployment).
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        rfipad::RfipadConfig::default(),
        1,
    );

    // Extend the scene with 50 asset tags scattered around the room.
    const ASSETS: u64 = 50;
    let mut tags: Vec<Tag> = bench.deployment.scene.tags().to_vec();
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..ASSETS {
        use rand::Rng;
        let id = TagId(1000 + i);
        // Within the pad antenna's forward coverage cone (it points +z
        // from behind the plate; tags behind it sit in the sidelobe and
        // would need the reader's second antenna port).
        let z = rng.random_range(0.1..1.2);
        let lateral = 0.7 * z;
        let position = Vec3::new(
            0.12 + rng.random_range(-lateral..lateral),
            -0.12 + rng.random_range(-lateral..lateral),
            z,
        );
        tags.push(Tag::new(
            id,
            position,
            Facing::Front,
            TagModel::TypeA,
            rng.random_range(0.0..std::f64::consts::TAU),
        ));
    }
    let scene = Scene::new(
        *bench.deployment.scene.antenna(),
        tags,
        bench.deployment.scene.environment().clone(),
        SceneConfig {
            // Asset tags sit metres away: relax the system losses the pad
            // budget assumed so the census stays feasible, as a reader with
            // a second, room-facing antenna would.
            system_loss_db: 2.0,
            ..SceneConfig::default()
        },
    );

    // A user writes 'T' over the pad while the reader also serves the
    // asset population.
    let user = UserProfile::average();
    let writer = Writer::new(bench.deployment.pad, user.clone());
    let session = writer.write_letter('T', 1.0, &mut rng);
    let hand =
        hand_kinematics::trajectory::HandTarget::new(session.trajectory.clone(), user.hand_rcs_m2);
    let arm = hand_kinematics::trajectory::HandTarget::with_offset(
        session.trajectory.clone(),
        user.arm_rcs_m2,
        user.arm_offset,
    );
    let targets: Vec<&dyn MovingTarget> = vec![&hand, &arm];
    let duration = session.end_time() + 1.5;

    // A production reader time-multiplexes: Gen2 Select (or a second
    // antenna port) dedicates alternating dwell windows to the pad's EPC
    // prefix and to the open census. Emulate with 300 ms dwells.
    let events = experiments::run_multiplexed(
        &bench.reader,
        &[
            experiments::Port {
                scene: &bench.deployment.scene,
                targets: &targets,
            },
            experiments::Port {
                scene: &scene,
                targets: &targets,
            },
        ],
        0.3,
        -0.5,
        duration + 1.0,
        &mut rng,
    );
    let run = rfid_gen2::reader::ReaderRun {
        events,
        stats: Default::default(),
    };

    // Route the mixed stream.
    let mut dispatcher = PadDispatcher::new();
    let pad = dispatcher
        .register(bench.recognizer.clone(), 1.5)
        .expect("pad registers");
    let mut letter = None;
    let mut pad_reads = 0usize;
    let mut asset_reads = 0usize;
    let mut assets_seen: HashSet<TagId> = HashSet::new();
    for event in &run.events {
        for routed in dispatcher.push(*event) {
            match routed {
                PadEvent::Recognition { pad: p, event } => {
                    assert_eq!(p, pad);
                    if let PipelineEvent::LetterRecognized { letter: l, .. } = event {
                        letter = l;
                    }
                }
                PadEvent::Unassigned(obs) => {
                    assets_seen.insert(obs.tag);
                }
            }
        }
        if event.tag.0 >= 1000 {
            asset_reads += 1;
        } else {
            pad_reads += 1;
        }
    }
    for routed in dispatcher.finish() {
        if let PadEvent::Recognition {
            event: PipelineEvent::LetterRecognized { letter: l, .. },
            ..
        } = routed
        {
            letter = l;
        }
    }

    println!("== Coexistence: RFIPad + identification on one reader ==");
    println!(
        "scene: 25 pad tags + {ASSETS} asset tags, {:.1} s of inventory",
        duration + 1.0
    );
    println!(
        "total reads: {} ({} pad / {} asset)",
        run.events.len(),
        pad_reads,
        asset_reads
    );
    println!(
        "asset census: {}/{ASSETS} unique asset tags identified",
        assets_seen.len()
    );
    println!("letter written: T   recognized: {letter:?}");
    println!(
        "\nWith 300 ms Select-multiplexed dwells the pad keeps ~{:.1} Hz per tag —\n\
         enough for recognition — while the census proceeds in the other dwells:\n\
         the paper's cost-efficient-extension claim holds with no dedicated reader.",
        pad_reads as f64 / (duration + 1.0) / 25.0
    );
    assert_eq!(letter, Some('T'), "recognition must survive asset traffic");
    assert!(
        assets_seen.len() as u64 >= ASSETS * 9 / 10,
        "identification must keep working"
    );
}
