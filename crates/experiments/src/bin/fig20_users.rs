//! Fig. 20 — detection accuracy across ten volunteers.
//!
//! The paper balances gender, age, height, and arm length: most volunteers
//! land above 90%, while the two fast movers (#6 and #9) dip to ≈85% —
//! which motivates the speed study.

use experiments::report::{print_table, rate};
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    let mut rows = Vec::new();
    let mut accuracies = Vec::new();
    for i in 1..=10usize {
        let user = UserProfile::volunteer(i);
        let batch = bench.run_motion_batch(&user, reps, 2000 + i as u64 * 53);
        accuracies.push(batch.accuracy());
        rows.push(vec![
            format!("#{i}"),
            format!("{:.2}×", user.speed_scale),
            rate(batch.accuracy()),
            rate(batch.shape_accuracy()),
        ]);
    }
    print_table(
        &format!(
            "Fig. 20 — accuracy per volunteer ({} motions each)",
            13 * reps
        ),
        &["user", "speed", "accuracy", "shape-only"],
        &rows,
    );
    let mut sorted = accuracies.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!(
        "\nmedian accuracy: {:.3}; fast movers #6/#9: {:.3}/{:.3}",
        sorted[5], accuracies[5], accuracies[8]
    );
    println!(
        "Paper: median above 0.90; volunteers #6 and #9 (fast hands) dip to ≈0.85\n\
         but stay usable — RFIPad scales across diverse users."
    );
}
