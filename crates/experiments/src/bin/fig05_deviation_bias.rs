//! Fig. 5 — standard deviation of static phase per tag (deviation bias).
//!
//! The paper measures each tag's phase jitter in the static scene and finds
//! it varies strongly across the array (location diversity), motivating the
//! Eq. 9 weighting.

use experiments::report::print_series;
use experiments::{Deployment, DeploymentSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rfid_gen2::reader::Gen2Reader;
use rfipad::{ArrayLayout, Calibration, RfipadConfig};

fn main() {
    // Location 4 (wall corner) has the richest multipath — the clearest
    // deviation-bias spread.
    let deployment = Deployment::build(
        DeploymentSpec {
            location: 4,
            ..DeploymentSpec::default()
        },
        42,
    );
    let reader = Gen2Reader::default();
    let mut rng = StdRng::seed_from_u64(5);
    let run = reader.run(&deployment.scene, &[], 0.0, 13.0, &mut rng);
    let observations = &run.events;
    let layout = ArrayLayout::new(
        deployment.array.rows(),
        deployment.array.cols(),
        deployment.array.tags().iter().map(|t| t.id).collect(),
    );
    let cal = Calibration::from_observations(&layout, observations, &RfipadConfig::default())
        .expect("calibration");

    let mut points = Vec::new();
    let mut biases = Vec::new();
    for (i, &id) in layout.tags().iter().enumerate() {
        let b = cal.tag(id).expect("calibrated").deviation_bias;
        biases.push(b);
        points.push((i + 1, format!("{b:.4} rad")));
    }
    print_series(
        "Fig. 5 — deviation bias (static phase std) per tag, location 4",
        "tag #",
        "std dev",
        &points,
    );
    let lo = biases.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = biases.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "\nBias range {lo:.4}..{hi:.4} rad (ratio {:.1}×): tags vibrate at different\n\
         levels depending on their location — the paper's deviation bias.",
        hi / lo.max(1e-12)
    );
}
