//! Fig. 3 / Eq. 1–5 — the theoretical model behind RFIPad: as the hand
//! moves from A to Z over tag T1, the accumulated phase difference of T1
//! exceeds that of its neighbours T2 (same row) and T6 (same column).
//!
//! We compute the noiseless channel of each tag while the hand traverses
//! the plate and print the per-tag accumulated |Δθ| — the argmax of Eq. 5
//! must be the crossed tag, monotonically decaying with distance.

use experiments::report::print_series;
use experiments::{Deployment, DeploymentSpec};
use rf_sim::environment::Environment;
use rf_sim::geometry::Vec3;
use rf_sim::scene::{Scene, SceneConfig};
use rf_sim::tags::TagId;
use rf_sim::targets::StaticTarget;

fn main() {
    // Free space, no noise: the pure Eq. 1–4 geometry.
    let base = Deployment::build(DeploymentSpec::default(), 42);
    let scene = Scene::new(
        *base.scene.antenna(),
        base.scene.tags().to_vec(),
        Environment::free_space(),
        SceneConfig::default(),
    );

    // The hand sweeps along the x axis over tag T1 (row 2, col 2) at 3 cm
    // height — the paper's Fig. 3(a) trajectory from A to Z, centred on T1
    // with ±7 cm of travel.
    let y = -0.12;
    let accumulate = |tag_id: TagId| -> f64 {
        let tag = scene.tag(tag_id).expect("tag");
        let mut total = 0.0;
        let mut prev: Option<f64> = None;
        for i in 0..=200 {
            let x = 0.05 + 0.14 * i as f64 / 200.0;
            let hand = StaticTarget::new(Vec3::new(x, y, 0.03), 0.02);
            let phase = -scene.response(tag, 0.0, &[&hand]).arg();
            if let Some(p) = prev {
                let mut d = (phase - p).rem_euclid(std::f64::consts::TAU);
                if d > std::f64::consts::PI {
                    d -= std::f64::consts::TAU;
                }
                total += d.abs();
            }
            prev = Some(phase);
        }
        total
    };

    // T1 = the crossed row's tags; T6 = one row up (the paper's labels).
    let mut rows = Vec::new();
    for (label, id) in [
        ("T1 (row 2, col 2 — crossed)", TagId(12)),
        ("T2 (row 2, col 3 — next col)", TagId(13)),
        ("T3 (row 2, col 4)", TagId(14)),
        ("T6 (row 1, col 2 — next row)", TagId(7)),
        ("T11 (row 0, col 2)", TagId(2)),
    ] {
        rows.push((label, format!("{:.2} rad", accumulate(id))));
    }
    print_series(
        "Fig. 3 / Eq. 1–5 — accumulated |Δθ| as the hand sweeps the middle row",
        "tag",
        "Σ|Δθ|",
        &rows,
    );

    let crossed = accumulate(TagId(12));
    let col_neighbour = accumulate(TagId(13));
    let row_neighbour = accumulate(TagId(7));
    println!("\nEq. 5 hypothesis: ΣΔθ(T1) > ΣΔθ(T2) along x and ΣΔθ(T1) > ΣΔθ(T6) along y.");
    println!(
        "measured: {:.2} > {:.2} ({}) and {:.2} > {:.2} ({})",
        crossed,
        col_neighbour,
        crossed > col_neighbour,
        crossed,
        row_neighbour,
        crossed > row_neighbour
    );
    assert!(crossed > col_neighbour && crossed > row_neighbour);
    println!(
        "\nNote: every tag in the crossed ROW accumulates strongly (the hand passes\n\
         over each); the argmax-per-time-slice over the whole sweep outlines the\n\
         stroke, which is exactly what the gray-map image does."
    );
}
