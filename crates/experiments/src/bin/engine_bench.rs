//! Multi-session ingest benchmark: N concurrent sessions replay the
//! golden trace through `rfipad::engine` and every one of them must
//! reproduce the single-stream replay bit for bit.
//!
//! The check is the whole point: the engine's per-session single-consumer
//! scheduling plus [`rfipad::engine::Backpressure::Block`] (lossless)
//! means concurrency must not change recognition — only wall-clock
//! metadata, which [`rfipad::engine::normalize_events`] strips before the
//! comparison. On success the run merges a `multi_session` entry into
//! `BENCH_pipeline.json` next to the other perf-trajectory probes.
//!
//! The replay runs twice — once ingesting one report per
//! `SessionHandle::ingest` (the `multi_session` entry) and once ingesting
//! `--batch`-sized batches per `SessionHandle::ingest_batch` (the
//! `ingest_batch` entry) — and both modes must reproduce the serial
//! replay bit for bit.
//!
//! Usage: `cargo run --release -p experiments --bin engine_bench [-- \
//!   --sessions N] [--jobs N] [--capacity N] [--batch N]`
//!
//! Defaults: 8 sessions, one worker per core, 1024-item queues, 64-report
//! batches. The golden trace is read from
//! `tests/data/golden_session.rftrace` when run from the repo root; a
//! missing trace falls back to re-recording the golden session live
//! (bit-identical by construction — it is seeded).

use experiments::golden::{golden_bench, golden_trial, GOLDEN_LETTER};
use rfid_gen2::report::TagReport;
use rfid_gen2::source::{ReportSource, TraceSource};
use rfipad::engine::{normalize_events, Backpressure, Engine, LatencySnapshot};
use rfipad::{OnlinePipeline, PipelineEvent, Recognizer};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const TRACE_PATH: &str = "tests/data/golden_session.rftrace";

struct Args {
    sessions: usize,
    jobs: usize,
    capacity: usize,
    batch: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 8,
        jobs: 0,
        capacity: 1024,
        batch: 64,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut grab = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--sessions" => args.sessions = grab("--sessions")?,
            "--jobs" => args.jobs = grab("--jobs")?,
            "--capacity" => args.capacity = grab("--capacity")?,
            "--batch" => args.batch = grab("--batch")?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.sessions == 0 {
        return Err("--sessions must be at least 1".into());
    }
    if args.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    Ok(args)
}

/// The golden report stream: decoded from the committed trace when it is
/// reachable, otherwise re-recorded live (same bits — the session is
/// seeded).
fn golden_reports(recognizer_bench: &experiments::Bench) -> Vec<TagReport> {
    match TraceSource::open(TRACE_PATH) {
        Ok(mut source) => match source.try_collect_reports() {
            Ok(reports) if !reports.is_empty() => {
                obs::info!("replaying recorded trace"; path = TRACE_PATH, reports = reports.len());
                return reports;
            }
            Ok(_) => {
                obs::warn!("trace is empty; re-recording the golden session"; path = TRACE_PATH)
            }
            Err(e) => obs::warn!("{e}; re-recording the golden session"; path = TRACE_PATH),
        },
        Err(e) => obs::warn!("{e}; re-recording the golden session"; path = TRACE_PATH),
    }
    golden_trial(recognizer_bench).reports
}

fn session_pipeline(recognizer: &Recognizer) -> OnlinePipeline {
    OnlinePipeline::builder()
        .recognizer(recognizer.clone())
        .letter_gap_s(1.5)
        .build()
        .expect("valid pipeline")
}

/// The single-stream reference replay every engine session must match.
fn serial_replay(recognizer: &Recognizer, reports: &[TagReport]) -> Vec<PipelineEvent> {
    let mut pipeline = session_pipeline(recognizer);
    let mut events = Vec::new();
    for r in reports {
        events.extend(pipeline.push(*r));
    }
    events.extend(pipeline.finish());
    normalize_events(&mut events);
    events
}

/// Outcome of one multi-session replay: wall time, throughput, worst
/// per-session push latencies.
struct ReplayStats {
    wall_s: f64,
    reports_per_s: f64,
    worst_p50: u64,
    worst_p99: u64,
    workers: usize,
}

/// Replays the golden trace through `sessions` concurrent engine sessions
/// and checks every one against the serial reference. `batch` selects the
/// ingest mode: `None` ingests one report per `ingest`, `Some(n)` ingests
/// `n`-report batches per `ingest_batch`. Either way the recognitions
/// must be bit-identical to the serial replay.
fn run_replay(
    bench: &experiments::Bench,
    reports: &Arc<Vec<TagReport>>,
    expected: &Arc<Vec<PipelineEvent>>,
    args: &Args,
    batch: Option<usize>,
) -> Result<ReplayStats, String> {
    let engine = Arc::new(
        Engine::builder()
            .workers(args.jobs)
            .queue_capacity(args.capacity)
            .backpressure(Backpressure::Block)
            .build()
            .map_err(|e| e.to_string())?,
    );
    let workers = engine.config().workers;
    obs::info!("streaming sessions"; sessions = args.sessions, reports = reports.len(),
        workers = workers, queue_capacity = args.capacity,
        batch = batch.unwrap_or(1));

    let start = Instant::now();
    let feeders: Vec<_> = (0..args.sessions)
        .map(|i| {
            let engine = Arc::clone(&engine);
            let reports = Arc::clone(reports);
            let expected = Arc::clone(expected);
            let pipeline = session_pipeline(&bench.recognizer);
            let capacity = args.capacity;
            std::thread::spawn(move || -> Result<LatencySnapshot, String> {
                let session = engine
                    .open_session(format!("replay-{i}"), pipeline)
                    .map_err(|e| e.to_string())?;
                let mut receipt = rfipad::IngestReceipt::default();
                match batch {
                    None => {
                        for r in reports.iter() {
                            receipt += session.ingest(*r).map_err(|e| e.to_string())?;
                        }
                    }
                    Some(n) => {
                        for chunk in reports.chunks(n) {
                            receipt += session
                                .ingest_batch(chunk.iter().copied().collect())
                                .map_err(|e| e.to_string())?;
                        }
                    }
                }
                if receipt.accepted != reports.len() as u64 || receipt.dropped != 0 {
                    return Err(format!(
                        "session {i}: receipt {} accepted / {} dropped, expected {} / 0",
                        receipt.accepted,
                        receipt.dropped,
                        reports.len()
                    ));
                }
                let stats = session.stats();
                if stats.queue_depth > capacity {
                    return Err(format!(
                        "session {i}: queue depth {} exceeds capacity {}",
                        stats.queue_depth, capacity
                    ));
                }
                // Final counters come from close_with_stats: a stats() taken
                // here races the worker's drain and can miss every latency
                // sample of a short batched replay (p50 = p99 = 0).
                let (mut events, stats) = session.close_with_stats().map_err(|e| e.to_string())?;
                normalize_events(&mut events);
                if events != *expected {
                    return Err(format!(
                        "session {i}: engine replay diverged from the single-stream replay \
                         ({} events vs {})",
                        events.len(),
                        expected.len()
                    ));
                }
                Ok(stats.push_latency)
            })
        })
        .collect();

    let mut worst_p50 = 0u64;
    let mut worst_p99 = 0u64;
    for feeder in feeders {
        let latency = feeder.join().map_err(|_| "feeder panicked".to_string())??;
        if latency.count == 0 || latency.p50_ns == 0 {
            return Err(format!(
                "push latency empty after drain ({} samples, p50 {} ns) — \
                 final session stats must include every push",
                latency.count, latency.p50_ns
            ));
        }
        worst_p50 = worst_p50.max(latency.p50_ns);
        worst_p99 = worst_p99.max(latency.p99_ns);
    }
    let wall_s = start.elapsed().as_secs_f64();

    let stats = engine.stats();
    let total_reports = args.sessions * reports.len();
    if stats.reports_in != total_reports as u64 || stats.reports_dropped != 0 {
        return Err(format!(
            "engine counted {} in / {} dropped, expected {total_reports} / 0",
            stats.reports_in, stats.reports_dropped
        ));
    }
    Ok(ReplayStats {
        wall_s,
        reports_per_s: total_reports as f64 / wall_s,
        worst_p50,
        worst_p99,
        workers,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    obs::info!("calibrating golden bench");
    let bench = golden_bench();
    let reports = Arc::new(golden_reports(&bench));
    let expected = Arc::new(serial_replay(&bench.recognizer, &reports));
    let letters: Vec<_> = expected
        .iter()
        .filter_map(|e| match e {
            PipelineEvent::LetterRecognized { letter, .. } => Some(*letter),
            _ => None,
        })
        .collect();
    if letters != vec![Some(GOLDEN_LETTER)] {
        return Err(format!(
            "serial replay must recognize '{GOLDEN_LETTER}', got {letters:?}"
        ));
    }

    let per_report = run_replay(&bench, &reports, &expected, &args, None)?;
    println!(
        "{} sessions replayed '{GOLDEN_LETTER}' identically in {:.3} s \
         ({:.0} reports/s; worst per-session push p50 {} ns, p99 {} ns)",
        args.sessions,
        per_report.wall_s,
        per_report.reports_per_s,
        per_report.worst_p50,
        per_report.worst_p99,
    );
    let entry = format!(
        "{{ \"sessions\": {}, \"workers\": {}, \"cores\": {cores}, \"queue_capacity\": {}, \
         \"reports_per_session\": {}, \"wall_s\": {:.3}, \
         \"reports_per_s\": {:.0}, \"push_p50_ns\": {}, \
         \"push_p99_ns\": {}, \"events_per_session\": {}, \
         \"identical_to_serial\": true }}",
        args.sessions,
        per_report.workers,
        args.capacity,
        reports.len(),
        per_report.wall_s,
        per_report.reports_per_s,
        per_report.worst_p50,
        per_report.worst_p99,
        expected.len(),
    );
    experiments::benchjson::merge_entry("multi_session", &entry)
        .map_err(|e| format!("BENCH_pipeline.json: {e}"))?;

    let batched = run_replay(&bench, &reports, &expected, &args, Some(args.batch))?;
    println!(
        "{} sessions replayed '{GOLDEN_LETTER}' identically in {:.3} s with \
         {}-report batches ({:.0} reports/s, {:.2}x the per-report feed)",
        args.sessions,
        batched.wall_s,
        args.batch,
        batched.reports_per_s,
        batched.reports_per_s / per_report.reports_per_s,
    );
    let entry = format!(
        "{{ \"sessions\": {}, \"workers\": {}, \"cores\": {cores}, \"queue_capacity\": {}, \
         \"batch\": {}, \"reports_per_session\": {}, \"wall_s\": {:.3}, \
         \"reports_per_s\": {:.0}, \"push_p50_ns\": {}, \"push_p99_ns\": {}, \
         \"events_per_session\": {}, \"identical_to_serial\": true }}",
        args.sessions,
        batched.workers,
        args.capacity,
        args.batch,
        reports.len(),
        batched.wall_s,
        batched.reports_per_s,
        batched.worst_p50,
        batched.worst_p99,
        expected.len(),
    );
    experiments::benchjson::merge_entry("ingest_batch", &entry)
        .map_err(|e| format!("BENCH_pipeline.json: {e}"))?;
    obs::info!("merged multi_session and ingest_batch entries into BENCH_pipeline.json");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            obs::error!("{e}");
            ExitCode::FAILURE
        }
    }
}
