//! Fig. 7 — gray maps of the accumulative phase difference when a hand
//! moves down the third column: (a) without diversity suppression, (b) with
//! suppression, (c) after Otsu binarization.

use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::{PlacedStroke, Stroke, StrokeShape};
use hand_kinematics::user::UserProfile;
use rfipad::accumulate::accumulative_image;
use rfipad::streams::TagStreams;
use rfipad::RfipadConfig;

fn main() {
    // Location 4 multipath makes the suppression's effect visible, as in
    // the paper's illustration.
    let bench = Bench::calibrate(
        Deployment::build(
            DeploymentSpec {
                location: 4,
                ..DeploymentSpec::default()
            },
            42,
        ),
        RfipadConfig::default(),
        7,
    );
    let user = UserProfile::average();
    // Hand moves down the third column (col index 2 → normalized 0.5).
    let placement = PlacedStroke::new(Stroke::new(StrokeShape::VLine), (0.05, 0.5), (0.95, 0.5));
    let writer = hand_kinematics::writer::Writer::new(bench.deployment.pad, user.clone());
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(11);
    let session = writer.write_stroke(placement, 1.0, &mut rng);
    let observations = bench.record_session(&session, &user, &mut rng);
    let span = (session.strokes[0].start, session.strokes[0].end);

    let layout = &bench.deployment.layout;
    let cal = bench.recognizer.calibration();

    // (a) raw: no suppression (raw unwrapped phases, no weighting).
    let raw_streams = TagStreams::build(layout, None, &observations);
    let img_raw = accumulative_image(layout, &raw_streams, None, span.0, span.1).unwrap();
    // (b) suppressed: Eq. 8 centring + Eq. 10 weighting + noise floor.
    let sup_streams = TagStreams::build(layout, Some(cal), &observations);
    let img_sup = accumulative_image(layout, &sup_streams, Some(cal), span.0, span.1).unwrap();
    // (c) Otsu binarization of (b).
    let binary = img_sup.otsu_binarize();

    println!("\n== Fig. 7(a) — without diversity suppression (gray map) ==");
    print!("{}", img_raw.to_ascii());
    println!("\n== Fig. 7(b) — with diversity suppression (gray map) ==");
    print!("{}", img_sup.to_ascii());
    println!("\n== Fig. 7(c) — after Otsu's algorithm (binary) ==");
    print!("{}", binary.to_ascii());

    // Contrast metric: hot-column mean vs rest.
    let contrast = |img: &sigproc::grid::GridImage| {
        let mut col2 = 0.0;
        let mut rest = 0.0;
        for r in 0..5 {
            for c in 0..5 {
                if c == 2 {
                    col2 += img.get(r, c);
                } else {
                    rest += img.get(r, c);
                }
            }
        }
        (col2 / 5.0) / (rest / 20.0).max(1e-9)
    };
    println!(
        "\ncolumn-3 contrast: raw {:.1}×, suppressed {:.1}× — the hand-movement area\n\
         is explicitly outlined once the diversities are suppressed.",
        contrast(&img_raw),
        contrast(&img_sup)
    );
}
