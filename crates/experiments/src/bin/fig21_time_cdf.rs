//! Fig. 21 — CDF of the time needed to (write and) recognize each stroke.
//!
//! The paper records, per successfully recognized stroke, the time spent —
//! 90% of click/−/|// recognitions complete within 2 s, while `⊂` takes
//! longer (a longer trail to draw). RFIPad prefers slow motions because
//! fast ones get undersampled by the Gen2 MAC.

use experiments::report::print_series;
use experiments::{Bench, Deployment, DeploymentSpec};
use hand_kinematics::stroke::Stroke;
use hand_kinematics::user::UserProfile;
use rfipad::RfipadConfig;
use sigproc::stats::Ecdf;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let bench = Bench::calibrate(
        Deployment::build(DeploymentSpec::default(), 42),
        RfipadConfig::default(),
        1,
    );
    // A spread of users (including the fast movers) — 300 rounds per
    // volunteer in the paper; we pool across users per motion.
    let users: Vec<UserProfile> = (1..=10).map(UserProfile::volunteer).collect();

    for stroke in Stroke::all_thirteen().into_iter().filter(|s| !s.reversed) {
        let mut times = Vec::new();
        for (u, user) in users.iter().enumerate() {
            for rep in 0..reps {
                let seed =
                    2100 + u as u64 * 997 + rep as u64 * 31 + stroke.shape.motion_number() as u64;
                let trial = bench.run_stroke_trial(stroke, user, seed);
                if trial.correct() {
                    // Time to complete recognition: detected span duration
                    // (the writing) plus the end-confirmation delay.
                    let span = trial.result.strokes[0].span;
                    times.push(span.duration() + 0.5);
                }
            }
        }
        if times.is_empty() {
            continue;
        }
        let cdf = Ecdf::new(times);
        let points: Vec<(String, String)> = [0.25, 0.5, 0.75, 0.9, 0.99]
            .iter()
            .map(|&q| {
                (
                    format!("p{:.0}", q * 100.0),
                    format!("{:.2} s", cdf.quantile(q)),
                )
            })
            .collect();
        print_series(
            &format!(
                "Fig. 21 — recognition-time CDF, motion #{} ({})",
                stroke.shape.motion_number(),
                stroke.shape
            ),
            "quantile",
            "time",
            &points,
        );
    }
    println!(
        "\nPaper: 90% of click/−/|// within 2 s; ⊂ takes longer (longer trail).\n\
         Shape check: the p90 of arcs should exceed the p90 of clicks/lines."
    );
}
